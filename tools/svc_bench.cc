/**
 * @file
 * Multi-threaded throughput driver for the concurrent cache
 * service (src/svc).
 *
 * For each requested thread count the driver builds a fresh
 * CacheService, opens one session per client thread, pre-generates
 * per-thread uniform-random op streams (a --probe-frac slice of
 * read-only probes that exercise the seqlock fast path, the rest
 * access ops with a --write-frac dirty share), replays them
 * concurrently and reports ops/sec, speedup over the single-thread
 * row, hit rate and seqlock behavior (optimistic share, retries,
 * locked fallbacks).
 *
 *   svc_bench --threads=1,2,4,8 --ops=200000
 *   svc_bench --threads=1,4 --verify          # + history replay
 *   svc_bench --stripes=1                     # one global lock
 *   svc_bench --require-scaling --min-speedup=3
 *
 * With admission control enabled (--quota-rate / --quota-burst /
 * --max-inflight / --shed-policy) clients go through the full
 * overload path — Session::request() with per-request --deadline
 * propagation — and retry shed requests with seeded-jitter
 * exponential backoff (util/backoff.h, --retry-attempts). The
 * admission summary line prints the deterministic shed counters
 * (bit-identical across same-seed reruns when retries are driven
 * only by quota verdicts, i.e. --max-inflight=0):
 *
 *   svc_bench --quota-rate=1/2 --quota-burst=16 --flood-tenant=8
 *   svc_bench --quota-rate=1/3 --shed-policy=degrade-reads \
 *             --deadline=50ms --fail-overloaded
 *   svc_bench --chaos --chaos-cases=250        # chaos campaign
 *
 * --flood-tenant=K multiplies tenant 0's stream by K (the noisy
 * neighbor); --fail-overloaded turns any shed into exit code 5 for
 * scripted overload probes. --chaos runs the seeded service chaos
 * campaign (check/svc_chaos.h: lock-holder stall, tenant flood,
 * budget squeeze, deadline storm; every case executed twice and
 * diffed) instead of the throughput bench.
 *
 * --verify records per-session histories and replays them through
 * the serializability checker after each run (see docs/SERVICE.md);
 * violations exit 1. --require-scaling turns the speedup of the
 * largest thread count into a gate: it needs real cores, so it is
 * opt-in rather than part of the default run (CI machines with one
 * core would fail spuriously).
 *
 * --csv=PATH writes the table as CSV — atomically (temp + fsync +
 * rename), so a killed run never leaves a torn file; PATH "-"
 * streams CSV to stdout.
 *
 * Exit codes: 0 ok, 1 usage / failed verification or scaling gate /
 * failed chaos campaign, 4 budget exceeded, 5 overloaded
 * (--fail-overloaded with sheds observed), 130/143 interrupted.
 */

#include <chrono>
#include <iostream>
#include <thread>
#include <vector>

#include "check/svc_chaos.h"
#include "check/svc_check.h"
#include "svc/service.h"
#include "util/argparse.h"
#include "util/atomic_file.h"
#include "util/backoff.h"
#include "util/cancel.h"
#include "util/error.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/table.h"

namespace {

using namespace assoc;

mem::ReplPolicy
policyFromString(const std::string &s)
{
    if (s == "lru")
        return mem::ReplPolicy::Lru;
    if (s == "fifo")
        return mem::ReplPolicy::Fifo;
    if (s == "tree-plru")
        return mem::ReplPolicy::TreePlru;
    fatal("unknown --policy '" + s +
          "' (expected lru|fifo|tree-plru)");
}

std::vector<unsigned>
parseThreadList(const std::string &s)
{
    std::vector<unsigned> out;
    std::string cur;
    for (char ch : s + ",") {
        if (ch == ',') {
            if (cur.empty())
                continue;
            int v = std::stoi(cur);
            fatalIf(v < 1 || v > 256,
                    "--threads entries must be in 1..256");
            out.push_back(static_cast<unsigned>(v));
            cur.clear();
        } else {
            fatalIf(ch < '0' || ch > '9',
                    "--threads expects a comma-separated list "
                    "of counts, e.g. 1,2,4,8");
            cur.push_back(ch);
        }
    }
    fatalIf(out.empty(), "--threads list is empty");
    return out;
}

/** Parse --quota-rate "N/D" (tokens per request tick). */
void
parseQuotaRate(const std::string &s, std::uint64_t &num,
               std::uint64_t &den)
{
    std::size_t slash = s.find('/');
    fatalIf(slash == std::string::npos || slash == 0 ||
                slash + 1 >= s.size(),
            "--quota-rate expects N/D, e.g. 1/2");
    try {
        num = std::stoull(s.substr(0, slash));
        den = std::stoull(s.substr(slash + 1));
    } catch (const std::exception &) {
        fatal("--quota-rate expects N/D, e.g. 1/2");
    }
    fatalIf(den == 0, "--quota-rate denominator must be positive");
}

/** One thread's pre-generated ops (generation excluded from the
 *  timed region). */
std::vector<check::SvcOpSpec>
makeStream(std::uint64_t seed, unsigned thread, std::uint64_t ops,
           std::uint32_t block_space, double probe_frac,
           double write_frac)
{
    Pcg32 rng(seed, 0xbe7c + thread);
    std::vector<check::SvcOpSpec> stream;
    stream.reserve(ops);
    for (std::uint64_t i = 0; i < ops; ++i) {
        check::SvcOpSpec op;
        if (rng.uniform() < probe_frac) {
            op.kind = svc::OpKind::Probe;
        } else {
            op.kind = svc::OpKind::Access;
            op.is_write = rng.chance(write_frac);
        }
        op.block = rng.below(block_space);
        stream.push_back(op);
    }
    return stream;
}

struct RunRow
{
    unsigned threads = 0;
    std::uint64_t ops = 0;
    double seconds = 0.0;
    double ops_per_sec = 0.0;
    svc::TenantStats stats;
    bool verified_ok = true;
    std::uint64_t violations = 0;
    std::uint64_t client_retries = 0;  ///< backoff re-attempts
    std::uint64_t client_gave_up = 0;  ///< ops shed to exhaustion
};

int
runChaos(const ArgParser &args)
{
    check::SvcChaosOptions opt;
    opt.seed = args.getUint("seed");
    opt.iterations = args.getUint("chaos-cases");
    opt.max_failures = 3;
    opt.log = &std::cerr;
    check::SvcChaosSummary sum = check::runSvcChaos(opt);
    std::cout << "svc_bench chaos: " << sum.cases_run << " cases x2, "
              << sum.ops << " requests, " << sum.totals.shed()
              << " shed (" << sum.totals.shed_quota << " quota, "
              << sum.totals.shed_writes << " writes, "
              << sum.totals.shed_inflight << " inflight), "
              << sum.totals.degraded << " degraded, "
              << sum.totals.failed() << " failed, "
              << sum.failures.size() << " failing case(s)\n";
    return sum.ok() ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args("svc_bench",
                   "multi-threaded throughput driver for the "
                   "concurrent cache service");
    args.addFlag("size", "65536", "cache size in bytes");
    args.addFlag("block", "32", "block size in bytes");
    args.addFlag("assoc", "8", "associativity");
    args.addFlag("policy", "lru",
                 "replacement policy: lru|fifo|tree-plru");
    args.addFlag("stripes", "0",
                 "lock-stripe cap (power of two; 0 = one per set)");
    args.addFlag("retries", "8",
                 "optimistic probe attempts before locking");
    args.addFlag("threads", "1,2,4,8",
                 "comma-separated client thread counts");
    args.addFlag("ops", "200000", "operations per thread");
    args.addFlag("working-set", "0",
                 "distinct blocks drawn (0 = 4x cache capacity)");
    args.addFlag("probe-frac", "0.6",
                 "fraction of ops that are read-only probes");
    args.addFlag("write-frac", "0.3",
                 "dirty fraction of the access ops");
    args.addFlag("seed", "1", "op-stream seed");
    args.addFlag("mem-budget", "",
                 "byte cap (e.g. 64M) charged for cache planes, "
                 "lock stripes and session shards");
    args.addSwitch("verify",
                   "record histories and replay them through the "
                   "serializability checker after each run");
    args.addSwitch("require-scaling",
                   "fail unless the largest thread count reaches "
                   "--min-speedup over one thread (needs real "
                   "cores)");
    args.addFlag("min-speedup", "3.0",
                 "speedup gate for --require-scaling");
    args.addFlag("csv", "",
                 "write the table as CSV to this path (atomic "
                 "temp+fsync+rename; \"-\" = stdout)");
    // --- overload / admission ------------------------------------
    args.addFlag("quota-rate", "",
                 "enable admission control: tokens refilled per "
                 "request tick, as N/D (e.g. 1/2)");
    args.addFlag("quota-burst", "64",
                 "token-bucket capacity in requests");
    args.addFlag("max-inflight", "0",
                 "global concurrent-request cap (0 = none; "
                 "schedule-dependent sheds)");
    args.addFlag("shed-policy", "reject-new",
                 "over-quota disposition: reject-new|"
                 "drop-writes-first|degrade-reads");
    args.addFlag("deadline", "",
                 "per-request deadline (e.g. 50ms; propagated "
                 "through Session::request)");
    args.addFlag("retry-attempts", "3",
                 "backoff client: attempts per op before giving "
                 "up (1 = no retry)");
    args.addFlag("flood-tenant", "1",
                 "multiply tenant 0's stream by this factor (the "
                 "noisy neighbor)");
    args.addSwitch("fail-overloaded",
                   "exit 5 when any request was shed (scripted "
                   "overload probes)");
    args.addSwitch("chaos",
                   "run the service chaos campaign (stall / flood "
                   "/ squeeze / storm; cases run twice and diffed) "
                   "instead of the bench");
    args.addFlag("chaos-cases", "200", "chaos campaign case count");
    if (!args.parse(argc, argv))
        return 0;

    return guardedMain("svc_bench", [&]() -> int {
        if (args.getBool("chaos"))
            return runChaos(args);

        mem::CacheGeometry geom(
            static_cast<std::uint32_t>(args.getUint("size")),
            static_cast<std::uint32_t>(args.getUint("block")),
            static_cast<std::uint32_t>(args.getUint("assoc")));

        svc::SvcConfig cfg;
        cfg.engine.policy =
            policyFromString(args.getString("policy"));
        cfg.engine.max_stripes =
            static_cast<unsigned>(args.getUint("stripes"));
        cfg.engine.optimistic_retries =
            static_cast<unsigned>(args.getUint("retries"));

        std::vector<unsigned> thread_counts =
            parseThreadList(args.getString("threads"));
        std::uint64_t ops = args.getUint("ops");
        fatalIf(ops == 0, "--ops must be positive");
        std::uint64_t seed = args.getUint("seed");
        double probe_frac = args.getDouble("probe-frac");
        double write_frac = args.getDouble("write-frac");
        fatalIf(probe_frac < 0.0 || probe_frac > 1.0 ||
                    write_frac < 0.0 || write_frac > 1.0,
                "--probe-frac/--write-frac must be in [0, 1]");

        std::uint32_t capacity = geom.sets() * geom.assoc();
        std::uint32_t working_set = static_cast<std::uint32_t>(
            args.getUint("working-set"));
        if (working_set == 0)
            working_set = capacity * 4;

        const bool admission = args.given("quota-rate");
        if (admission) {
            cfg.admission.enabled = true;
            parseQuotaRate(args.getString("quota-rate"),
                           cfg.admission.refill_num,
                           cfg.admission.refill_den);
            cfg.admission.quota_burst = args.getUint("quota-burst");
            cfg.admission.max_inflight = static_cast<std::uint32_t>(
                args.getUint("max-inflight"));
            Expected<svc::ShedPolicy> pol =
                svc::shedPolicyFromString(
                    args.getString("shed-policy"));
            if (!pol.ok())
                throwError(Error(pol.error())
                               .withContext("--shed-policy"));
            cfg.admission.policy = pol.value();
            cfg.admission.seed = seed;
        }
        std::uint64_t deadline_ns = 0;
        if (args.given("deadline")) {
            Expected<std::uint64_t> ns =
                parseDuration(args.getString("deadline"));
            if (!ns.ok())
                throwError(Error(ns.error())
                               .withContext("--deadline"));
            deadline_ns = ns.value();
        }
        unsigned retry_attempts = static_cast<unsigned>(
            args.getUint("retry-attempts"));
        if (retry_attempts == 0)
            retry_attempts = 1;
        std::uint64_t flood = args.getUint("flood-tenant");
        if (flood == 0)
            flood = 1;

        std::unique_ptr<MemBudget> budget;
        if (args.given("mem-budget")) {
            Expected<std::uint64_t> bytes =
                parseByteSize(args.getString("mem-budget"));
            if (!bytes.ok())
                throwError(Error(bytes.error())
                               .withContext("--mem-budget"));
            budget = std::make_unique<MemBudget>(bytes.value());
        }
        MemBudget *budget_ptr = budget.get();

        bool verify = args.getBool("verify");
        cfg.record_history = verify;
        cfg.history_capacity = static_cast<std::size_t>(ops * flood);

        // ^C / SIGTERM land here; request() reports them as the
        // token's structured error and guardedMain exits 128+sig.
        installSigintHandler();
        CancelToken root;
        root.watchSigint();

        std::vector<RunRow> rows;
        for (unsigned n : thread_counts) {
            Expected<std::unique_ptr<svc::CacheService>> svcE =
                svc::CacheService::create(geom, cfg, budget_ptr);
            if (!svcE.ok())
                throwError(svcE.error());
            std::unique_ptr<svc::CacheService> service =
                svcE.take();

            std::vector<svc::Session *> sessions;
            std::vector<std::vector<check::SvcOpSpec>> streams;
            for (unsigned t = 0; t < n; ++t) {
                Expected<svc::Session *> s =
                    service->openSession();
                if (!s.ok())
                    throwError(s.error());
                s.value()->bindCancel(&root);
                sessions.push_back(s.take());
                std::uint64_t len =
                    t == 0 ? ops * flood : ops;
                streams.push_back(makeStream(seed, t, len,
                                             working_set,
                                             probe_frac,
                                             write_frac));
            }

            std::vector<std::uint64_t> retries(n, 0);
            std::vector<std::uint64_t> gave_up(n, 0);
            auto t0 = std::chrono::steady_clock::now();
            std::vector<std::thread> workers;
            for (unsigned t = 0; t < n; ++t) {
                workers.emplace_back([&, t]() {
                    svc::Session *session = sessions[t];
                    if (!admission) {
                        // Raw engine path: no admission layer.
                        for (const check::SvcOpSpec &op :
                             streams[t]) {
                            if (root.signalled())
                                return;
                            session->apply(op.kind, op.block,
                                           op.is_write);
                        }
                        return;
                    }
                    // The polite overload client: every op goes
                    // through the full request() path and retries
                    // sheds with seeded-jitter backoff.
                    BackoffPolicy policy;
                    policy.initial_ns = 10 * 1000;        // 10us
                    policy.max_ns = 1000 * 1000;          // 1ms
                    policy.seed = seed ^ (0x5eedull << 8) ^ t;
                    for (const check::SvcOpSpec &op : streams[t]) {
                        RetryOutcome r = retryOverloaded(
                            [&]() -> Error {
                                Deadline dl =
                                    deadline_ns
                                        ? Deadline::after(
                                              deadline_ns)
                                        : Deadline::never();
                                Expected<svc::OpResult> res =
                                    session->request(op.kind,
                                                     op.block,
                                                     op.is_write,
                                                     dl);
                                return res.ok() ? Error()
                                                : res.error();
                            },
                            policy, retry_attempts, &root);
                        if (r.attempts > 1)
                            retries[t] += r.attempts - 1;
                        if (!r.error.ok()) {
                            if (r.error.code() ==
                                ErrorCode::Cancelled)
                                return;
                            ++gave_up[t];
                        }
                    }
                });
            }
            for (std::thread &w : workers)
                w.join();
            auto t1 = std::chrono::steady_clock::now();

            // A delivered signal unwinds with the shell-convention
            // exit code (130 / 143) via guardedMain.
            {
                Expected<void> alive = root.checkpoint();
                if (!alive.ok())
                    throwError(Error(alive.error())
                                   .withContext("svc_bench run"));
            }

            RunRow row;
            row.threads = n;
            row.ops = ops * (n - 1) + ops * flood;
            row.seconds =
                std::chrono::duration<double>(t1 - t0).count();
            row.ops_per_sec = row.seconds > 0.0
                                  ? row.ops / row.seconds
                                  : 0.0;
            row.stats = service->totalStats();
            for (unsigned t = 0; t < n; ++t) {
                row.client_retries += retries[t];
                row.client_gave_up += gave_up[t];
            }

            if (verify) {
                check::ViolationLog log;
                bool overflowed = false;
                std::vector<svc::HistoryEvent> events =
                    service->collectHistory(&overflowed);
                if (overflowed)
                    log.add("history overflowed");
                check::checkSvcHistory(
                    geom, cfg.engine.policy,
                    service->engine().stripes(), events,
                    &service->engine().cache(), log);
                check::checkAdmissionConservation(
                    row.stats.admission, "svc_bench totals", log);
                row.verified_ok = log.ok();
                row.violations = log.count();
                for (const std::string &m : log.messages())
                    std::cerr << "svc_bench: violation (threads="
                              << n << "): " << m << "\n";
            }
            rows.push_back(row);
        }

        TextTable table;
        std::vector<std::string> header = {
            "threads", "ops",      "seconds", "Mops/s",
            "speedup", "hit%",     "opt%",    "retries/probe",
        };
        if (admission) {
            header.push_back("shed%");
            header.push_back("degraded");
            header.push_back("client-retries");
        }
        if (verify)
            header.push_back("verified");
        table.setHeader(header);

        double base_ops_per_sec = 0.0;
        for (const RunRow &row : rows)
            if (row.threads == 1) {
                base_ops_per_sec = row.ops_per_sec;
                break;
            }

        for (const RunRow &row : rows) {
            const svc::TenantStats &st = row.stats;
            double hit_pct =
                st.ops ? 100.0 * st.hits() / st.ops : 0.0;
            double opt_pct =
                st.probe_ops
                    ? 100.0 * st.optimistic_reads / st.probe_ops
                    : 0.0;
            double retries_per_probe =
                st.probe_ops ? static_cast<double>(
                                   st.seqlock_retries) /
                                   st.probe_ops
                             : 0.0;
            std::vector<std::string> cells = {
                TextTable::num(std::uint64_t(row.threads)),
                TextTable::num(row.ops),
                TextTable::num(row.seconds, 3),
                TextTable::num(row.ops_per_sec / 1e6, 2),
                base_ops_per_sec > 0.0
                    ? TextTable::num(
                          row.ops_per_sec / base_ops_per_sec, 2)
                    : "-",
                TextTable::num(hit_pct, 1),
                TextTable::num(opt_pct, 1),
                TextTable::num(retries_per_probe, 4),
            };
            if (admission) {
                const svc::AdmissionStats &a = st.admission;
                double shed_pct =
                    a.admitted
                        ? 100.0 * a.shed() / a.admitted
                        : 0.0;
                cells.push_back(TextTable::num(shed_pct, 1));
                cells.push_back(TextTable::num(a.degraded));
                cells.push_back(
                    TextTable::num(row.client_retries));
            }
            if (verify)
                cells.push_back(row.verified_ok ? "ok"
                                                : "FAIL");
            table.addRow(cells);
        }

        std::string csv_path = args.getString("csv");
        if (csv_path.empty()) {
            table.print(std::cout, TextTable::Format::Text);
        } else if (csv_path == "-") {
            table.print(std::cout, TextTable::Format::Csv);
        } else {
            Expected<void> wrote = writeFileAtomic(
                csv_path, [&](std::ostream &os) {
                    table.print(os, TextTable::Format::Csv);
                });
            if (!wrote.ok())
                throwError(
                    Error(wrote.error()).withContext("--csv"));
        }

        std::uint64_t total_shed = 0;
        if (admission) {
            // The deterministic counters first (bit-identical
            // across same-seed reruns with --max-inflight=0), then
            // the schedule-dependent ones.
            for (const RunRow &row : rows) {
                const svc::AdmissionStats &a =
                    row.stats.admission;
                total_shed += a.shed();
                std::cout << "admission threads="
                          << row.threads << " deterministic:"
                          << " admitted=" << a.admitted
                          << " shed_quota=" << a.shed_quota
                          << " shed_writes=" << a.shed_writes
                          << " degraded=" << a.degraded
                          << " | scheduled:"
                          << " shed_inflight=" << a.shed_inflight
                          << " failed_timeout=" << a.failed_timeout
                          << " failed_cancelled="
                          << a.failed_cancelled
                          << " completed=" << a.completed
                          << " gave_up=" << row.client_gave_up
                          << "\n";
            }
        }
        if (budget_ptr)
            std::cout << "peak budget: "
                      << formatBytes(budget_ptr->peak()) << " of "
                      << formatBytes(budget_ptr->limit()) << "\n";

        for (const RunRow &row : rows)
            if (!row.verified_ok) {
                std::cerr << "svc_bench: verification failed ("
                          << row.violations << " violations)\n";
                return 1;
            }

        if (args.getBool("require-scaling")) {
            const RunRow &last = rows.back();
            double speedup =
                base_ops_per_sec > 0.0
                    ? last.ops_per_sec / base_ops_per_sec
                    : 0.0;
            double want = args.getDouble("min-speedup");
            if (rows.size() < 2 || base_ops_per_sec == 0.0) {
                std::cerr << "svc_bench: --require-scaling needs "
                             "a thread list containing 1 and a "
                             "larger count\n";
                return 1;
            }
            if (speedup < want) {
                std::cerr << "svc_bench: scaling gate failed: "
                          << last.threads << " threads reached "
                          << TextTable::num(speedup, 2) << "x < "
                          << TextTable::num(want, 2) << "x\n";
                return 1;
            }
        }

        if (args.getBool("fail-overloaded") && total_shed > 0) {
            std::cerr << "svc_bench: " << total_shed
                      << " request(s) shed\n";
            throwError(Error::overloaded(
                std::to_string(total_shed) +
                " request(s) shed under --fail-overloaded"));
        }
        return 0;
    });
}
