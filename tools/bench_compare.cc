/**
 * @file
 * Compare two google-benchmark JSON files and fail on regressions.
 *
 *   bench_compare <baseline.json> <current.json> [--max-ratio=2.0]
 *                 [--metric=cpu_time|real_time]
 *
 * Exit 0 when every benchmark present in both files stays within
 * max-ratio of its baseline time, 1 when any exceeds it (the CI
 * perf gate). Benchmarks only in one file are listed but never
 * fail the run: new benchmarks pass until the committed baseline
 * (BENCH_micro.json) is refreshed, and removed ones do not pin the
 * baseline forever. The default 2.0 ratio is deliberately loose —
 * shared CI runners jitter by tens of percent — so only genuine
 * hot-path regressions trip it; see docs/PERFORMANCE.md.
 */

#include <cstdio>

#include "util/argparse.h"
#include "util/benchjson.h"
#include "util/error.h"

using namespace assoc;

int
main(int argc, char **argv)
{
    return guardedMain("bench_compare", [&]() -> int {
        ArgParser args("bench_compare",
                       "diff two google-benchmark JSON files and "
                       "fail on slowdowns past --max-ratio");
        args.addFlag("max-ratio", "2.0",
                     "fail when current/baseline time exceeds this");
        args.addFlag("metric", "cpu_time",
                     "which time to compare: cpu_time | real_time");
        if (!args.parse(argc, argv))
            return 0;

        if (args.positional().size() != 2)
            throwError(Error::usage(
                "expected exactly two positional arguments: "
                "<baseline.json> <current.json>"));
        const double max_ratio = args.getDouble("max-ratio");
        if (max_ratio <= 0.0)
            throwError(Error::usage("--max-ratio must be > 0"));
        const std::string metric_name = args.getString("metric");
        BenchMetric metric;
        if (metric_name == "cpu_time")
            metric = BenchMetric::CpuTime;
        else if (metric_name == "real_time")
            metric = BenchMetric::RealTime;
        else
            throwError(Error::usage(
                "--metric must be cpu_time or real_time"));

        std::vector<BenchEntry> baseline, current;
        Error err = loadBenchJson(args.positional()[0], baseline);
        if (!err.ok())
            throwError(err);
        err = loadBenchJson(args.positional()[1], current);
        if (!err.ok())
            throwError(err);

        BenchComparison cmp =
            compareBench(baseline, current, metric);

        int regressions = 0;
        for (const BenchDelta &d : cmp.deltas) {
            const bool bad = d.ratio > max_ratio;
            std::printf("%-40s %10.1f -> %10.1f ns  x%.2f%s\n",
                        d.name.c_str(), d.baseline_ns, d.current_ns,
                        d.ratio, bad ? "  REGRESSION" : "");
            if (bad)
                ++regressions;
        }
        for (const std::string &name : cmp.missing)
            std::printf("%-40s only in baseline (skipped)\n",
                        name.c_str());
        for (const std::string &name : cmp.added)
            std::printf("%-40s new (no baseline, skipped)\n",
                        name.c_str());

        if (cmp.deltas.empty() && cmp.missing.empty() &&
            cmp.added.empty())
            throwError(Error::data("no benchmarks in either file"));

        if (regressions > 0) {
            std::printf("FAIL: %d benchmark(s) over x%.2f "
                        "(worst %s x%.2f)\n",
                        regressions, max_ratio,
                        cmp.worst_name.c_str(), cmp.worst_ratio);
            return 1;
        }
        std::printf("OK: %zu benchmark(s) within x%.2f "
                    "(worst %s x%.2f)\n",
                    cmp.deltas.size(), max_ratio,
                    cmp.worst_name.c_str(), cmp.worst_ratio);
        return 0;
    });
}
