/**
 * @file
 * Compare two google-benchmark JSON files and fail on regressions.
 *
 *   bench_compare <baseline.json> <current.json> [--max-ratio=2.0]
 *                 [--metric=cpu_time|real_time] [--filter=substr]
 *                 [--min-speedup=0]
 *
 * Exit 0 when every benchmark present in both files stays within
 * max-ratio of its baseline time, 1 when any exceeds it (the CI
 * perf gate). Benchmarks only in one file are listed but never
 * fail the run: new benchmarks pass until the committed baseline
 * (BENCH_micro.json) is refreshed, and removed ones do not pin the
 * baseline forever. The default 2.0 ratio is deliberately loose —
 * shared CI runners jitter by tens of percent — so only genuine
 * hot-path regressions trip it; see docs/PERFORMANCE.md.
 *
 * --filter narrows the comparison to benchmarks whose name contains
 * the substring. --min-speedup flips the tool into an improvement
 * gate: every compared benchmark must additionally be at least that
 * many times *faster* than its baseline, e.g.
 *   bench_compare BENCH_micro.json new.json --filter=Lookup \
 *                 --min-speedup=2
 * holds every lookup microbenchmark to a >= 2x win.
 */

#include <cstdio>

#include "util/argparse.h"
#include "util/benchjson.h"
#include "util/error.h"

using namespace assoc;

int
main(int argc, char **argv)
{
    return guardedMain("bench_compare", [&]() -> int {
        ArgParser args("bench_compare",
                       "diff two google-benchmark JSON files and "
                       "fail on slowdowns past --max-ratio");
        args.addFlag("max-ratio", "2.0",
                     "fail when current/baseline time exceeds this");
        args.addFlag("metric", "cpu_time",
                     "which time to compare: cpu_time | real_time");
        args.addFlag("filter", "",
                     "only compare benchmarks whose name contains "
                     "this substring");
        args.addFlag("min-speedup", "0",
                     "also fail unless current is at least this "
                     "many times faster (0 = off)");
        if (!args.parse(argc, argv))
            return 0;

        if (args.positional().size() != 2)
            throwError(Error::usage(
                "expected exactly two positional arguments: "
                "<baseline.json> <current.json>"));
        const double max_ratio = args.getDouble("max-ratio");
        if (max_ratio <= 0.0)
            throwError(Error::usage("--max-ratio must be > 0"));
        const double min_speedup = args.getDouble("min-speedup");
        if (min_speedup < 0.0)
            throwError(Error::usage("--min-speedup must be >= 0"));
        const std::string filter = args.getString("filter");
        const std::string metric_name = args.getString("metric");
        BenchMetric metric;
        if (metric_name == "cpu_time")
            metric = BenchMetric::CpuTime;
        else if (metric_name == "real_time")
            metric = BenchMetric::RealTime;
        else
            throwError(Error::usage(
                "--metric must be cpu_time or real_time"));

        std::vector<BenchEntry> baseline, current;
        Error err = loadBenchJson(args.positional()[0], baseline);
        if (!err.ok())
            throwError(err);
        err = loadBenchJson(args.positional()[1], current);
        if (!err.ok())
            throwError(err);

        if (!filter.empty()) {
            baseline = filterBenchEntries(baseline, filter);
            current = filterBenchEntries(current, filter);
        }

        BenchComparison cmp =
            compareBench(baseline, current, metric);

        // A delta fails past max-ratio, and (gate mode) also when
        // its speedup baseline/current falls short of min-speedup.
        int regressions = 0;
        for (const BenchDelta &d : cmp.deltas) {
            const double speedup =
                d.ratio > 0.0 ? 1.0 / d.ratio : 0.0;
            const bool slow = d.ratio > max_ratio;
            const bool short_win =
                min_speedup > 0.0 && speedup < min_speedup;
            std::printf("%-40s %10.1f -> %10.1f ns  x%.2f%s%s\n",
                        d.name.c_str(), d.baseline_ns, d.current_ns,
                        d.ratio, slow ? "  REGRESSION" : "",
                        short_win ? "  BELOW MIN SPEEDUP" : "");
            if (slow || short_win)
                ++regressions;
        }
        for (const std::string &name : cmp.missing)
            std::printf("%-40s only in baseline (skipped)\n",
                        name.c_str());
        for (const std::string &name : cmp.added)
            std::printf("%-40s new (no baseline, skipped)\n",
                        name.c_str());

        if (cmp.deltas.empty() && cmp.missing.empty() &&
            cmp.added.empty())
            throwError(Error::data("no benchmarks in either file"));

        if (regressions > 0) {
            std::printf("FAIL: %d benchmark(s) over x%.2f "
                        "(worst %s x%.2f)\n",
                        regressions, max_ratio,
                        cmp.worst_name.c_str(), cmp.worst_ratio);
            return 1;
        }
        std::printf("OK: %zu benchmark(s) within x%.2f "
                    "(worst %s x%.2f)\n",
                    cmp.deltas.size(), max_ratio,
                    cmp.worst_name.c_str(), cmp.worst_ratio);
        return 0;
    });
}
