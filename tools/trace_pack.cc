/**
 * @file
 * Framed-trace (ftr) toolbox: pack, verify, damage, and replay.
 *
 * Subcommands (first positional argument):
 *   gen <out>        generate an ATUM-like corpus straight to disk
 *                    (--refs=180M writes ~180 million references in
 *                    bounded memory; format from the extension)
 *   pack <in> <out>  re-encode any trace file as framed ftr
 *   unpack <in> <out>  decode an ftr file back to .din / .bin
 *   info <in>        print header / frame-index facts
 *   verify <in>      stream every frame, print record count + digest
 *                    (exit 3 on damage under the chosen --errors)
 *   corrupt <file>   deterministic damage: --flips, --truncate,
 *                    --tear-footer, --crash (for tests and CI
 *                    smoke runs)
 *   sweep <in>       replay the file through a small scheme sweep
 *                    (--json, --journal/--resume, --jobs,
 *                    --mem-budget, --errors) — the end-to-end
 *                    recovery path CI exercises on damaged corpora
 *
 *   $ trace_pack gen /tmp/big.ftr --refs=8M --frame-records=64K
 *   $ trace_pack corrupt /tmp/big.ftr --flips=16 --seed=9
 *   $ trace_pack sweep /tmp/big.ftr --errors=skip --mem-budget=256M
 */

#include <cstdio>
#include <fstream>
#include <iostream>

#include "exec/fault.h"
#include "exec/journal.h"
#include "exec/sweep.h"
#include "trace/atum_like.h"
#include "trace/bin_io.h"
#include "trace/din_io.h"
#include "trace/ftr_reader.h"
#include "trace/ftr_writer.h"
#include "trace/trace_file.h"
#include "util/argparse.h"
#include "util/error.h"
#include "util/logging.h"

using namespace assoc;
using namespace assoc::trace;

namespace {

/** FNV-1a over the raw record fields: a cheap replay digest that is
 *  bit-identical across readers iff the streams are. */
class TraceDigest
{
  public:
    void
    add(const MemRef &r)
    {
        step(r.addr & 0xff);
        step((r.addr >> 8) & 0xff);
        step((r.addr >> 16) & 0xff);
        step((r.addr >> 24) & 0xff);
        step(static_cast<std::uint8_t>(r.type));
        step(r.pid);
        ++n_;
    }

    std::uint64_t value() const { return h_; }
    std::uint64_t records() const { return n_; }

  private:
    void
    step(std::uint8_t b)
    {
        h_ = (h_ ^ b) * 0x100000001b3ULL;
    }

    std::uint64_t h_ = 0xcbf29ce484222325ULL;
    std::uint64_t n_ = 0;
};

std::uint64_t
fnvString(const std::string &s)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (unsigned char c : s)
        h = (h ^ c) * 0x100000001b3ULL;
    return h;
}

ErrorPolicy
policyFromArgs(const ArgParser &args)
{
    ErrorPolicy policy;
    Expected<ErrorMode> mode =
        errorModeFromString(args.getString("errors"));
    if (!mode.ok())
        throwError(Error(mode.error()).withContext("--errors"));
    policy.mode = mode.value();
    policy.max_skips = args.getUint("max-skips");
    return policy;
}

/** Counts with size suffixes: --refs=8M, --frame-records=64K. */
std::uint64_t
countArg(const ArgParser &args, const std::string &name)
{
    Expected<std::uint64_t> n = parseByteSize(args.getString(name));
    if (!n.ok())
        throwError(Error(n.error()).withContext("--" + name));
    return n.value();
}

void
writeAnyFormat(TraceSource &src, const std::string &path,
               std::uint32_t frame_records)
{
    switch (detectTraceFormat(path)) {
      case TraceFormat::Din:
        writeDin(src, path);
        break;
      case TraceFormat::Bin:
        writeBin(src, path);
        break;
      case TraceFormat::Ftr: {
        FtrWriter::Options wopt;
        wopt.frame_records = frame_records;
        Expected<std::uint64_t> n = writeFtr(src, path, wopt);
        if (!n.ok())
            throwError(Error(n.error()));
        break;
      }
    }
}

/** The small fixed sweep the `sweep` subcommand replays: three
 *  associativities, three lookup schemes each — big enough to be a
 *  real multi-job workload, small enough that the trace stream (not
 *  the cache planes) dominates memory. */
std::vector<sim::RunSpec>
sweepSpecs()
{
    std::vector<sim::RunSpec> specs;
    for (unsigned a : {2u, 4u, 8u}) {
        sim::RunSpec spec;
        spec.hier = {mem::CacheGeometry(4096, 16, 1),
                     mem::CacheGeometry(65536, 32, a), true};
        core::SchemeSpec s;
        s.kind = core::SchemeKind::Naive;
        spec.schemes.push_back(s);
        s.kind = core::SchemeKind::Mru;
        spec.schemes.push_back(s);
        spec.schemes.push_back(core::SchemeSpec::paperPartial(a));
        specs.push_back(spec);
    }
    return specs;
}

int
cmdSweep(const ArgParser &args, const std::string &path)
{
    ErrorPolicy policy = policyFromArgs(args);
    std::vector<sim::RunSpec> specs = sweepSpecs();

    exec::SweepOptions opts;
    opts.jobs = static_cast<unsigned>(args.getUint("jobs"));
    opts.journal_path = args.getString("journal");
    opts.resume_path = args.getString("resume");
    opts.spec_hash = exec::hashSpecs(specs, fnvString(path));
    if (args.given("mem-budget"))
        opts.mem_budget = countArg(args, "mem-budget");
    if (args.given("job-mem-budget"))
        opts.job_mem_budget = countArg(args, "job-mem-budget");

    // ^C (or a driver's SIGINT) drains in-flight jobs, checkpoints
    // the journal, and exits 130; --resume then completes the rest.
    CancelToken token;
    token.watchSigint();
    installSigintHandler();
    opts.cancel = &token;

    exec::FaultPlan plan;
    if (args.given("cancel-after"))
        plan.cancel_after =
            static_cast<std::int64_t>(args.getUint("cancel-after"));
    exec::FaultInjector inject(plan, &token);
    if (plan.cancel_after >= 0)
        opts.inject = &inject;

    exec::SweepResult result = exec::runSweepChecked(
        specs, exec::fileTraceFactory(path, policy), opts);

    std::uint64_t skipped = 0;
    std::size_t ok = 0;
    for (const exec::JobResult &job : result.jobs) {
        if (job.ok()) {
            ++ok;
            skipped += job.output.skipped_records;
        }
    }
    std::fprintf(stderr,
                 "trace_pack: %zu/%zu jobs ok, %llu records skipped "
                 "as damaged, %zu resumed from journal\n",
                 ok, result.jobs.size(),
                 static_cast<unsigned long long>(skipped),
                 static_cast<std::size_t>(result.resumed));

    if (args.given("json")) {
        std::string out = args.getString("json");
        Expected<void> wrote = {};
        if (ok == result.jobs.size()) {
            // Status-free form: byte-identical whether the sweep ran
            // clean or was killed and resumed — what the recovery
            // tests diff.
            std::vector<sim::RunOutput> outs;
            outs.reserve(result.jobs.size());
            for (const exec::JobResult &job : result.jobs)
                outs.push_back(job.output);
            wrote = exec::writeSweepJsonFile(out, specs, outs);
        } else {
            wrote = exec::writeSweepJsonFile(out, specs, result);
        }
        if (!wrote.ok())
            throwError(wrote.takeError().withContext("--json"));
    }

    if (result.interrupted)
        throwError(Error::cancelled(
            "sweep interrupted (" +
            std::to_string(result.cancelled()) +
            " jobs not run; resume with --resume=<journal>)"));
    if (ok != result.jobs.size()) {
        const exec::JobResult *bad = nullptr;
        for (const exec::JobResult &job : result.jobs)
            if (!job.ok())
                bad = &job;
        throwError(Error(bad->error)
                       .withContext(std::to_string(result.jobs.size() -
                                                   ok) +
                                    " of " +
                                    std::to_string(result.jobs.size()) +
                                    " jobs failed"));
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args("trace_pack",
                   "pack, damage, verify, and replay framed traces");
    args.addFlag("refs", "1M", "gen: total references (k/M suffixes)");
    args.addFlag("segments", "4", "gen: flush-delimited segments");
    args.addFlag("seed", "0", "gen/corrupt: deterministic seed");
    args.addFlag("frame-records", "64K",
                 "pack/gen: records per ftr frame");
    args.addFlag("errors", "fail-fast",
                 "damage policy: fail-fast|skip|strict");
    args.addFlag("max-skips", "100",
                 "skip mode: tolerated damaged regions");
    args.addFlag("flips", "8", "corrupt: random byte flips");
    args.addFlag("truncate", "",
                 "corrupt: cut the file to this many bytes");
    args.addSwitch("tear-footer",
                   "corrupt: rip off the ftr frame index");
    args.addSwitch("crash",
                   "corrupt: tear the index AND zero the header "
                   "total — a writer killed before finish()");
    args.addSwitch("no-prefetch",
                   "verify/unpack: disable the double-buffered "
                   "prefetch thread");
    args.addFlag("jobs", "0", "sweep: worker threads (0 = all)");
    args.addFlag("json", "", "sweep: write results here ('-' stdout)");
    args.addFlag("journal", "", "sweep: checkpoint journal path");
    args.addFlag("resume", "", "sweep: resume from this journal");
    args.addFlag("mem-budget", "",
                 "sweep: global memory budget (e.g. 256M)");
    args.addFlag("job-mem-budget", "",
                 "sweep: per-job memory budget");
    args.addFlag("cancel-after", "",
                 "sweep: trip the cancel token after N completed "
                 "jobs (deterministic kill for recovery tests)");
    if (!args.parse(argc, argv))
        return 0;

    return guardedMain("trace_pack", [&]() -> int {
        const auto &pos = args.positional();
        fatalIf(pos.empty(),
                "usage: trace_pack "
                "gen|pack|unpack|info|verify|corrupt|sweep <files>");
        const std::string &cmd = pos[0];
        std::uint32_t frame_records = static_cast<std::uint32_t>(
            countArg(args, "frame-records"));

        if (cmd == "gen") {
            fatalIf(pos.size() != 2, "usage: trace_pack gen <out>");
            AtumLikeConfig cfg;
            cfg.segments =
                static_cast<unsigned>(args.getUint("segments"));
            if (cfg.segments == 0)
                cfg.segments = 1;
            if (args.getUint("seed") != 0)
                cfg.seed = args.getUint("seed");
            cfg.refs_per_segment =
                std::max<std::uint64_t>(1, countArg(args, "refs") /
                                               cfg.segments);
            AtumLikeGenerator gen(cfg);
            writeAnyFormat(gen, pos[1], frame_records);
            std::printf("wrote %llu references to %s\n",
                        static_cast<unsigned long long>(
                            gen.totalRefs()),
                        pos[1].c_str());
        } else if (cmd == "pack" || cmd == "unpack") {
            fatalIf(pos.size() != 3,
                    "usage: trace_pack " + cmd + " <in> <out>");
            ErrorPolicy policy = policyFromArgs(args);
            std::unique_ptr<TraceSource> in =
                openTraceFile(pos[1], policy);
            writeAnyFormat(*in, pos[2], frame_records);
            throwIfFailed(*in);
            if (in->skippedRecords() > 0)
                std::fprintf(stderr,
                             "trace_pack: skipped %llu damaged "
                             "record(s) in %s\n",
                             static_cast<unsigned long long>(
                                 in->skippedRecords()),
                             pos[1].c_str());
            std::printf("%s -> %s\n", pos[1].c_str(), pos[2].c_str());
        } else if (cmd == "info") {
            fatalIf(pos.size() != 2, "usage: trace_pack info <in>");
            TraceFormat fmt = detectTraceFormat(pos[1]);
            std::printf("format: %s\n", traceFormatName(fmt));
            if (fmt == TraceFormat::Ftr) {
                ErrorPolicy policy = policyFromArgs(args);
                FtrTraceSource src(pos[1], policy);
                throwIfFailed(src);
                std::printf("records: %llu\n",
                            static_cast<unsigned long long>(
                                src.totalRecords()));
                std::printf("frames: %zu\n", src.frameIndex().size());
                std::printf("frame-records hint: %u\n",
                            src.frameRecords());
                std::printf("index: %s\n",
                            src.indexRebuilt() ? "rebuilt by scan"
                                               : "footer");
            }
        } else if (cmd == "verify") {
            fatalIf(pos.size() != 2, "usage: trace_pack verify <in>");
            ErrorPolicy policy = policyFromArgs(args);
            std::unique_ptr<TraceSource> in;
            if (detectTraceFormat(pos[1]) == TraceFormat::Ftr) {
                FtrOptions fopt;
                fopt.prefetch = !args.getBool("no-prefetch");
                in = std::make_unique<FtrTraceSource>(pos[1], policy,
                                                      fopt);
            } else {
                in = openTraceFile(pos[1], policy);
            }
            TraceDigest digest;
            MemRef r;
            while (in->next(r))
                digest.add(r);
            throwIfFailed(*in);
            std::printf("records: %llu\nskipped: %llu\ndigest: "
                        "%016llx\n",
                        static_cast<unsigned long long>(
                            digest.records()),
                        static_cast<unsigned long long>(
                            in->skippedRecords()),
                        static_cast<unsigned long long>(
                            digest.value()));
        } else if (cmd == "corrupt") {
            fatalIf(pos.size() != 2,
                    "usage: trace_pack corrupt <file>");
            std::uint64_t seed = args.getUint("seed");
            if (args.getBool("crash")) {
                std::uint64_t cut =
                    exec::FaultInjector::tearFooter(pos[1]);
                fatalIf(cut == 0,
                        "'" + pos[1] + "' has no valid ftr footer "
                        "to tear off");
                fatalIf(!exec::FaultInjector::unpatchHeader(pos[1]),
                        "'" + pos[1] + "' has no valid ftr header "
                        "to unpatch");
                std::printf("crash shape: tore %llu footer bytes "
                            "off %s and zeroed its header total\n",
                            static_cast<unsigned long long>(cut),
                            pos[1].c_str());
            } else if (args.getBool("tear-footer")) {
                std::uint64_t cut =
                    exec::FaultInjector::tearFooter(pos[1]);
                fatalIf(cut == 0,
                        "'" + pos[1] + "' has no valid ftr footer "
                        "to tear off");
                std::printf("tore %llu footer bytes off %s\n",
                            static_cast<unsigned long long>(cut),
                            pos[1].c_str());
            } else if (args.given("truncate")) {
                std::uint64_t keep = countArg(args, "truncate");
                exec::FaultInjector::truncateFile(pos[1], keep);
                std::printf("truncated %s to %llu bytes\n",
                            pos[1].c_str(),
                            static_cast<unsigned long long>(keep));
            } else {
                unsigned flips = static_cast<unsigned>(
                    args.getUint("flips"));
                // Protect the 32-byte file header: damage recovery
                // is frame-level; a destroyed header is a different
                // (and separately tested) failure.
                std::uint64_t flipped =
                    exec::FaultInjector::corruptBytes(
                        pos[1], seed ^ 0xf7f, flips,
                        /*skip=*/ftr::kHeaderBytes);
                std::printf("flipped %llu byte(s) of %s\n",
                            static_cast<unsigned long long>(flipped),
                            pos[1].c_str());
            }
        } else if (cmd == "sweep") {
            fatalIf(pos.size() != 2, "usage: trace_pack sweep <in>");
            return cmdSweep(args, pos[1]);
        } else {
            fatal("unknown subcommand '" + cmd + "'");
        }
        return 0;
    });
}
