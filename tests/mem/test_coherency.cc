#include <gtest/gtest.h>

#include "mem/coherency.h"
#include "trace/atum_like.h"
#include "util/logging.h"

namespace assoc {
namespace mem {
namespace {

using trace::MemRef;
using trace::RefType;

HierarchyConfig
smallConfig()
{
    return HierarchyConfig{CacheGeometry(256, 16, 1),
                           CacheGeometry(1024, 32, 4), true};
}

TEST(RemoteInvalidate, DropsL2AndL1Copies)
{
    TwoLevelHierarchy h(smallConfig());
    h.access({0x100, RefType::Read, 0});
    BlockAddr b = h.config().l2.blockAddrOf(0x100);
    ASSERT_GE(h.l2().findWay(b), 0);

    EXPECT_TRUE(h.remoteInvalidate(b));
    EXPECT_EQ(h.l2().findWay(b), -1);
    // The L1 copy died too: the next touch misses both levels.
    std::uint64_t misses = h.stats().read_in_misses;
    h.access({0x100, RefType::Read, 0});
    EXPECT_EQ(h.stats().read_in_misses, misses + 1);
    EXPECT_EQ(h.stats().coherency_invalidations, 1u);
}

TEST(RemoteInvalidate, MissReturnsFalse)
{
    TwoLevelHierarchy h(smallConfig());
    EXPECT_FALSE(h.remoteInvalidate(0x1234));
    EXPECT_EQ(h.stats().coherency_invalidations, 0u);
}

TEST(RemoteInvalidate, DirtyL1CopyIsDiscarded)
{
    TwoLevelHierarchy h(smallConfig());
    h.access({0x100, RefType::Write, 0});
    BlockAddr b = h.config().l2.blockAddrOf(0x100);
    EXPECT_TRUE(h.remoteInvalidate(b));
    // No write-back should be issued for the (now stale) line when
    // its frame is reused.
    std::uint64_t wbs = h.stats().write_backs;
    h.access({0x100 + 256, RefType::Read, 0}); // same L1 set
    EXPECT_EQ(h.stats().write_backs, wbs);
}

TEST(CoherencyTraffic, ZeroRateDoesNothing)
{
    TwoLevelHierarchy h(smallConfig());
    h.access({0x100, RefType::Read, 0});
    CoherencyTraffic remote(0.0);
    for (int i = 0; i < 1000; ++i)
        remote.step(h);
    EXPECT_EQ(remote.invalidations(), 0u);
    EXPECT_EQ(h.stats().coherency_invalidations, 0u);
}

TEST(CoherencyTraffic, RateOneInvalidatesEveryStepWhenResident)
{
    TwoLevelHierarchy h(smallConfig());
    // Fill a decent fraction of the small L2.
    for (trace::Addr a = 0; a < 1024; a += 16)
        h.access({a, RefType::Read, 0});
    CoherencyTraffic remote(1.0);
    for (int i = 0; i < 8; ++i)
        remote.step(h);
    EXPECT_GT(remote.invalidations(), 0u);
    EXPECT_EQ(remote.invalidations() + remote.misses(), 8u);
}

TEST(CoherencyTraffic, RejectsBadRate)
{
    EXPECT_THROW(CoherencyTraffic(-0.1), FatalError);
    EXPECT_THROW(CoherencyTraffic(1.1), FatalError);
}

TEST(L2ValidFraction, TracksOccupancy)
{
    TwoLevelHierarchy h(smallConfig());
    EXPECT_DOUBLE_EQ(l2ValidFraction(h), 0.0);
    // 1024B / 32B = 32 frames; fill 8 distinct L2 blocks.
    for (trace::Addr a = 0; a < 8 * 32; a += 32)
        h.access({a, RefType::Read, 0});
    EXPECT_NEAR(l2ValidFraction(h), 8.0 / 32.0, 1e-12);
    h.flushAll();
    EXPECT_DOUBLE_EQ(l2ValidFraction(h), 0.0);
}

TEST(Coherency, AssociativityImprovesOccupancyUnderInvalidations)
{
    // Footnote 1's claim, in miniature.
    trace::AtumLikeConfig tcfg;
    tcfg.segments = 1;
    tcfg.refs_per_segment = 150000;

    auto occupancy = [&](unsigned assoc) {
        trace::AtumLikeGenerator gen(tcfg);
        HierarchyConfig cfg{CacheGeometry(16384, 16, 1),
                            CacheGeometry(262144, 32, assoc), true};
        TwoLevelHierarchy h(cfg);
        CoherencyTraffic remote(0.01, 99);
        trace::MemRef r;
        double sum = 0.0;
        std::uint64_t n = 0, samples = 0;
        while (gen.next(r)) {
            h.access(r);
            remote.step(h);
            if (++n % 10000 == 0) {
                sum += l2ValidFraction(h);
                ++samples;
            }
        }
        return sum / samples;
    };
    EXPECT_GT(occupancy(8), occupancy(1));
}

} // namespace
} // namespace mem
} // namespace assoc
