#include <gtest/gtest.h>

#include "mem/hierarchy.h"
#include "trace/atum_like.h"

namespace assoc {
namespace mem {
namespace {

using trace::MemRef;
using trace::RefType;

HierarchyConfig
inclusiveConfig()
{
    // L1 bigger than the L2: inclusion violations are easy to
    // provoke. L1 4096B/16B (256 sets, index bits 4-11); L2
    // 1024B/32B 2-way (16 sets, index bits 5-8).
    HierarchyConfig cfg{CacheGeometry(4096, 16, 1),
                        CacheGeometry(1024, 32, 2), true};
    cfg.enforce_inclusion = true;
    return cfg;
}

TEST(Inclusion, L2EvictionInvalidatesL1Copies)
{
    HierarchyConfig cfg = inclusiveConfig();
    TwoLevelHierarchy h(cfg);
    // Three blocks sharing L2 set 0 (same address bits 5-8) in
    // distinct L1 sets (bits 9-10 differ): the third fill evicts
    // the 2-way L2 set's LRU line, block 0x0000's.
    h.access({0x0000, RefType::Read, 0});
    h.access({0x0200, RefType::Read, 0});
    h.access({0x0400, RefType::Read, 0});
    // The L2 evicted block 0x0000's line (LRU). With inclusion
    // enforcement the L1 copy must be gone.
    const HierarchyStats &s = h.stats();
    EXPECT_GE(s.inclusion_invalidations, 1u);
    // Re-touching 0x0000 misses L1 (it was invalidated).
    std::uint64_t misses_before = s.l1_misses;
    h.access({0x0000, RefType::Read, 0});
    EXPECT_EQ(h.stats().l1_misses, misses_before + 1);
}

TEST(Inclusion, WriteBacksAlwaysHitWhenEnforced)
{
    // With inclusion enforced, a dirty L1 line's L2 copy can never
    // have been replaced, so write-backs always hit.
    HierarchyConfig cfg{CacheGeometry(4096, 16, 1),
                        CacheGeometry(16384, 32, 4), true};
    cfg.enforce_inclusion = true;
    TwoLevelHierarchy h(cfg);

    trace::AtumLikeConfig tcfg;
    tcfg.segments = 2;
    tcfg.refs_per_segment = 50000;
    trace::AtumLikeGenerator gen(tcfg);
    h.run(gen);

    const HierarchyStats &s = h.stats();
    EXPECT_GT(s.write_backs, 0u);
    EXPECT_EQ(s.write_back_misses, 0u);
    EXPECT_DOUBLE_EQ(s.hintAccuracy(), 1.0);
    EXPECT_GT(s.inclusion_invalidations, 0u);
}

TEST(Inclusion, DirtyInvalidationsAreCounted)
{
    HierarchyConfig cfg{CacheGeometry(4096, 16, 1),
                        CacheGeometry(8192, 32, 2), true};
    cfg.enforce_inclusion = true;
    TwoLevelHierarchy h(cfg);
    trace::AtumLikeConfig tcfg;
    tcfg.segments = 1;
    tcfg.refs_per_segment = 50000;
    trace::AtumLikeGenerator gen(tcfg);
    h.run(gen);
    const HierarchyStats &s = h.stats();
    EXPECT_GT(s.inclusion_invalidations, 0u);
    EXPECT_GT(s.inclusion_dirty_invalidations, 0u);
    EXPECT_LE(s.inclusion_dirty_invalidations,
              s.inclusion_invalidations);
}

TEST(Inclusion, EffectOnMissRatioIsSmallForPaperConfigs)
{
    // The paper extrapolated that maintaining inclusion would have
    // "a very small effect (in most configurations studied, no
    // effect)" on the L2 miss ratio for its 64:1 size ratios.
    trace::AtumLikeConfig tcfg;
    tcfg.segments = 3;

    auto run = [&](bool enforce) {
        trace::AtumLikeGenerator gen(tcfg);
        HierarchyConfig cfg{CacheGeometry(4096, 16, 1),
                            CacheGeometry(262144, 32, 4), true};
        cfg.enforce_inclusion = enforce;
        TwoLevelHierarchy h(cfg);
        h.run(gen);
        return h.stats();
    };
    HierarchyStats off = run(false);
    HierarchyStats on = run(true);
    EXPECT_NEAR(on.localMissRatio(), off.localMissRatio(), 0.01);
    EXPECT_NEAR(on.l1MissRatio(), off.l1MissRatio(), 0.005);
}

TEST(Inclusion, DisabledByDefault)
{
    HierarchyConfig cfg{CacheGeometry(512, 16, 1),
                        CacheGeometry(1024, 32, 2), true};
    EXPECT_FALSE(cfg.enforce_inclusion);
    TwoLevelHierarchy h(cfg);
    h.access({0x0000, RefType::Read, 0});
    h.access({0x8010, RefType::Read, 0});
    h.access({0x10020, RefType::Read, 0});
    EXPECT_EQ(h.stats().inclusion_invalidations, 0u);
}

TEST(WriteThrough, WritesPropagateImmediately)
{
    HierarchyConfig cfg{CacheGeometry(512, 16, 1),
                        CacheGeometry(2048, 32, 2), true};
    cfg.write_policy = L1WritePolicy::WriteThrough;
    TwoLevelHierarchy h(cfg);

    h.access({0x100, RefType::Read, 0});  // read-in, no store
    EXPECT_EQ(h.stats().write_backs, 0u);
    h.access({0x104, RefType::Write, 0}); // L1 hit, store to L2
    EXPECT_EQ(h.stats().write_backs, 1u);
    EXPECT_EQ(h.stats().write_back_hits, 1u);
    h.access({0x200, RefType::Write, 0}); // L1 miss: read-in + store
    EXPECT_EQ(h.stats().write_backs, 2u);
}

TEST(WriteThrough, LinesNeverDirtySoEvictionsAreSilent)
{
    HierarchyConfig cfg{CacheGeometry(256, 16, 1),
                        CacheGeometry(2048, 32, 2), true};
    cfg.write_policy = L1WritePolicy::WriteThrough;
    TwoLevelHierarchy h(cfg);

    h.access({0x0000, RefType::Write, 0});
    std::uint64_t wb_after_store = h.stats().write_backs;
    h.access({0x4000, RefType::Read, 0}); // evicts the written line
    // No *additional* L2 traffic from the eviction.
    EXPECT_EQ(h.stats().write_backs, wb_after_store);
}

TEST(WriteThrough, GeneratesMoreL2TrafficThanWriteBack)
{
    // [Shor88]'s conclusion, reproduced: write-through multiplies
    // level-two traffic relative to write-back.
    trace::AtumLikeConfig tcfg;
    tcfg.segments = 2;
    tcfg.refs_per_segment = 50000;

    auto traffic = [&](L1WritePolicy policy) {
        trace::AtumLikeGenerator gen(tcfg);
        HierarchyConfig cfg{CacheGeometry(16384, 16, 1),
                            CacheGeometry(262144, 32, 4), true};
        cfg.write_policy = policy;
        TwoLevelHierarchy h(cfg);
        h.run(gen);
        return h.stats().read_ins + h.stats().write_backs;
    };
    double wb = static_cast<double>(traffic(L1WritePolicy::WriteBack));
    double wt =
        static_cast<double>(traffic(L1WritePolicy::WriteThrough));
    EXPECT_GT(wt, 1.5 * wb);
}

} // namespace
} // namespace mem
} // namespace assoc
