#include <gtest/gtest.h>

#include <algorithm>
#include <list>
#include <map>
#include <vector>

#include "mem/cache.h"
#include "util/logging.h"
#include "util/rng.h"

namespace assoc {
namespace mem {
namespace {

WriteBackCache
makeCache(std::uint32_t size = 1024, std::uint32_t block = 16,
          std::uint32_t assoc = 4)
{
    return WriteBackCache(CacheGeometry(size, block, assoc));
}

TEST(WriteBackCache, StartsEmpty)
{
    WriteBackCache c = makeCache();
    for (std::uint32_t set = 0; set < c.geom().sets(); ++set) {
        EXPECT_EQ(c.validCount(set), 0u);
        for (std::uint32_t w = 0; w < c.geom().assoc(); ++w)
            EXPECT_FALSE(c.line(set, static_cast<int>(w)).valid);
    }
}

TEST(WriteBackCache, FillThenFind)
{
    WriteBackCache c = makeCache();
    BlockAddr b = c.geom().blockAddrOf(0x1234);
    EXPECT_EQ(c.findWay(b), -1);
    FillResult fr = c.fill(b, false);
    EXPECT_FALSE(fr.evicted);
    EXPECT_EQ(c.findWay(b), fr.way);
}

TEST(WriteBackCache, DoubleFillPanics)
{
    WriteBackCache c = makeCache();
    c.fill(5, false);
    EXPECT_THROW(c.fill(5, false), PanicError);
}

TEST(WriteBackCache, FillsUseEmptyFramesFirst)
{
    WriteBackCache c = makeCache(1024, 16, 4);
    std::uint32_t sets = c.geom().sets();
    // Four blocks mapping to set 0.
    for (std::uint32_t i = 0; i < 4; ++i) {
        FillResult fr = c.fill(i * sets, false);
        EXPECT_FALSE(fr.evicted) << "eviction before the set filled";
    }
    EXPECT_EQ(c.validCount(0), 4u);
}

TEST(WriteBackCache, LruEvictionOrder)
{
    WriteBackCache c = makeCache(1024, 16, 4);
    std::uint32_t sets = c.geom().sets();
    for (std::uint32_t i = 0; i < 4; ++i)
        c.fill(i * sets, false);
    // Touch block 0 to make block 1*sets the LRU.
    c.touch(0, c.findWay(0));
    FillResult fr = c.fill(4 * sets, false);
    EXPECT_TRUE(fr.evicted);
    EXPECT_EQ(fr.victim_block, 1 * sets);
    EXPECT_FALSE(fr.victim_dirty);
    EXPECT_EQ(c.findWay(1 * sets), -1);
}

TEST(WriteBackCache, DirtyVictimReported)
{
    WriteBackCache c = makeCache(64, 16, 4); // one set
    for (std::uint32_t i = 0; i < 4; ++i)
        c.fill(i, i == 0);
    FillResult fr = c.fill(4, false);
    EXPECT_TRUE(fr.evicted);
    EXPECT_EQ(fr.victim_block, 0u);
    EXPECT_TRUE(fr.victim_dirty);
    EXPECT_EQ(c.dirtyEvictions(), 1u);
}

TEST(WriteBackCache, SetDirtyMarksLine)
{
    WriteBackCache c = makeCache();
    FillResult fr = c.fill(7, false);
    std::uint32_t set = c.geom().setOf(7);
    EXPECT_FALSE(c.line(set, fr.way).dirty);
    c.setDirty(set, fr.way);
    EXPECT_TRUE(c.line(set, fr.way).dirty);
}

TEST(WriteBackCache, SetDirtyOnInvalidPanics)
{
    WriteBackCache c = makeCache();
    EXPECT_THROW(c.setDirty(0, 0), PanicError);
}

TEST(WriteBackCache, MruOrderTracksTouches)
{
    WriteBackCache c = makeCache(64, 16, 4);
    for (std::uint32_t i = 0; i < 4; ++i)
        c.fill(i, false);
    // Fill order 0,1,2,3: MRU order should be 3,2,1,0 by way of
    // the fill promotions (block i went to way i).
    auto order = c.mruOrder(0);
    int w3 = c.findWay(3), w0 = c.findWay(0);
    EXPECT_EQ(order.front(), static_cast<std::uint8_t>(w3));
    EXPECT_EQ(order.back(), static_cast<std::uint8_t>(w0));

    c.touch(0, w0);
    order = c.mruOrder(0);
    EXPECT_EQ(order.front(), static_cast<std::uint8_t>(w0));
}

TEST(WriteBackCache, MruOrderIsAlwaysAPermutation)
{
    WriteBackCache c = makeCache(64, 16, 4);
    Pcg32 rng(3);
    for (int i = 0; i < 500; ++i) {
        BlockAddr b = rng.below(12);
        int way = c.findWay(b);
        if (way >= 0)
            c.touch(0, way);
        else
            c.fill(b, rng.chance(0.5));
        auto order = c.mruOrder(0);
        std::vector<std::uint8_t> sorted(order.begin(), order.end());
        std::sort(sorted.begin(), sorted.end());
        for (std::uint8_t w = 0; w < 4; ++w)
            ASSERT_EQ(sorted[w], w);
    }
}

TEST(WriteBackCache, InvalidateRemovesAndReportsDirty)
{
    WriteBackCache c = makeCache();
    c.fill(9, true);
    EXPECT_TRUE(c.invalidate(9));
    EXPECT_EQ(c.findWay(9), -1);
    EXPECT_FALSE(c.invalidate(9)); // already gone
    c.fill(10, false);
    EXPECT_FALSE(c.invalidate(10)); // clean
}

TEST(WriteBackCache, InvalidatedFrameIsReusedFirst)
{
    WriteBackCache c = makeCache(64, 16, 4);
    for (std::uint32_t i = 0; i < 4; ++i)
        c.fill(i, false);
    int freed = c.findWay(2);
    c.invalidate(2);
    FillResult fr = c.fill(4, false);
    EXPECT_EQ(fr.way, freed);
    EXPECT_FALSE(fr.evicted);
}

TEST(WriteBackCache, FlushEmptiesEverything)
{
    WriteBackCache c = makeCache();
    for (BlockAddr b = 0; b < 32; ++b)
        c.fill(b, b % 2 == 0);
    c.flush();
    for (BlockAddr b = 0; b < 32; ++b)
        EXPECT_EQ(c.findWay(b), -1);
    for (std::uint32_t set = 0; set < c.geom().sets(); ++set)
        EXPECT_EQ(c.validCount(set), 0u);
}

TEST(WriteBackCache, CountersAccumulate)
{
    WriteBackCache c = makeCache(32, 16, 2); // one set, 2 ways
    c.fill(0, false);
    c.fill(1, true);
    c.fill(2, false); // evicts block 0 (LRU, clean)
    c.fill(3, false); // evicts block 1 (dirty)
    EXPECT_EQ(c.fills(), 4u);
    EXPECT_EQ(c.evictions(), 2u);
    EXPECT_EQ(c.dirtyEvictions(), 1u);
}

TEST(WriteBackCache, DirectMappedBehaviour)
{
    WriteBackCache c = makeCache(256, 16, 1);
    std::uint32_t sets = c.geom().sets();
    c.fill(0, false);
    FillResult fr = c.fill(sets, false); // same set, conflicts
    EXPECT_TRUE(fr.evicted);
    EXPECT_EQ(fr.victim_block, 0u);
    EXPECT_EQ(fr.way, 0);
}

/**
 * Property test: the cache agrees with a simple reference model
 * (per-set std::list LRU) over a long random workload.
 */
TEST(WriteBackCache, MatchesReferenceLruModel)
{
    const std::uint32_t assoc = 4;
    WriteBackCache c = makeCache(1024, 16, assoc);
    const std::uint32_t sets = c.geom().sets();

    // Reference model: per set, list of blocks MRU-first.
    std::vector<std::list<BlockAddr>> model(sets);

    Pcg32 rng(77);
    for (int i = 0; i < 50000; ++i) {
        BlockAddr b = rng.below(8 * 1024 / 16); // 8 KB footprint
        std::uint32_t set = c.geom().setOf(b);
        auto &lst = model[set];
        auto it = std::find(lst.begin(), lst.end(), b);

        int way = c.findWay(b);
        if (it != lst.end()) {
            ASSERT_GE(way, 0) << "model hit but cache missed";
            lst.erase(it);
            lst.push_front(b);
            c.touch(set, way);
        } else {
            ASSERT_EQ(way, -1) << "cache hit but model missed";
            FillResult fr = c.fill(b, false);
            if (lst.size() == assoc) {
                ASSERT_TRUE(fr.evicted);
                ASSERT_EQ(fr.victim_block, lst.back());
                lst.pop_back();
            } else {
                ASSERT_FALSE(fr.evicted);
            }
            lst.push_front(b);
        }
    }
}

} // namespace
} // namespace mem
} // namespace assoc
