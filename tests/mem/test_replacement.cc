#include <gtest/gtest.h>

#include "mem/cache.h"
#include "mem/hierarchy.h"
#include "trace/atum_like.h"
#include "trace/synthetic.h"

namespace assoc {
namespace mem {
namespace {

TEST(ReplPolicy, Names)
{
    EXPECT_STREQ(replPolicyName(ReplPolicy::Lru), "LRU");
    EXPECT_STREQ(replPolicyName(ReplPolicy::Fifo), "FIFO");
    EXPECT_STREQ(replPolicyName(ReplPolicy::Random), "Random");
}

TEST(ReplPolicy, DefaultIsLru)
{
    WriteBackCache c(CacheGeometry(64, 16, 4));
    EXPECT_EQ(c.policy(), ReplPolicy::Lru);
    HierarchyConfig cfg{CacheGeometry(64, 16, 1),
                        CacheGeometry(256, 16, 4), true};
    EXPECT_EQ(cfg.l2_replacement, ReplPolicy::Lru);
}

TEST(ReplPolicy, AllPoliciesPreferEmptyFrames)
{
    for (ReplPolicy p :
         {ReplPolicy::Lru, ReplPolicy::Fifo, ReplPolicy::Random}) {
        WriteBackCache c(CacheGeometry(64, 16, 4), p);
        // One set of 4 frames: no eviction until the set fills.
        for (std::uint32_t i = 0; i < 4; ++i) {
            FillResult fr = c.fill(i * c.geom().sets(), false);
            EXPECT_FALSE(fr.evicted) << replPolicyName(p);
        }
        FillResult fr = c.fill(4 * c.geom().sets(), false);
        EXPECT_TRUE(fr.evicted) << replPolicyName(p);
    }
}

TEST(ReplPolicy, FifoIgnoresTouches)
{
    // Fill 0,1,2,3, then touch block 0 heavily: FIFO still evicts
    // block 0 (the oldest fill), where LRU would evict block 1.
    WriteBackCache fifo(CacheGeometry(64, 16, 4), ReplPolicy::Fifo);
    WriteBackCache lru(CacheGeometry(64, 16, 4), ReplPolicy::Lru);
    std::uint32_t sets = fifo.geom().sets();
    for (std::uint32_t i = 0; i < 4; ++i) {
        fifo.fill(i * sets, false);
        lru.fill(i * sets, false);
    }
    for (int t = 0; t < 5; ++t) {
        fifo.touch(0, fifo.findWay(0));
        lru.touch(0, lru.findWay(0));
    }
    FillResult f_fifo = fifo.fill(4 * sets, false);
    FillResult f_lru = lru.fill(4 * sets, false);
    EXPECT_EQ(f_fifo.victim_block, 0u);
    EXPECT_EQ(f_lru.victim_block, 1u * sets);
}

TEST(ReplPolicy, FifoEvictsInFillOrder)
{
    WriteBackCache c(CacheGeometry(64, 16, 4), ReplPolicy::Fifo);
    std::uint32_t sets = c.geom().sets();
    for (std::uint32_t i = 0; i < 4; ++i)
        c.fill(i * sets, false);
    for (std::uint32_t i = 4; i < 8; ++i) {
        FillResult fr = c.fill(i * sets, false);
        EXPECT_EQ(fr.victim_block, (i - 4) * sets);
    }
}

TEST(ReplPolicy, RandomVictimsSpreadOverWays)
{
    WriteBackCache c(CacheGeometry(64, 16, 4), ReplPolicy::Random, 7);
    std::uint32_t sets = c.geom().sets();
    for (std::uint32_t i = 0; i < 4; ++i)
        c.fill(i * sets, false);
    std::vector<int> victims(4, 0);
    for (std::uint32_t i = 4; i < 404; ++i) {
        FillResult fr = c.fill(i * sets, false);
        ++victims[fr.way];
    }
    for (int v : victims)
        EXPECT_GT(v, 50); // every way gets victimized regularly
}

TEST(ReplPolicy, RecencyOrderMaintainedUnderAllPolicies)
{
    // The lookup-cost observers need the recency order regardless
    // of the victim-selection policy.
    for (ReplPolicy p :
         {ReplPolicy::Lru, ReplPolicy::Fifo, ReplPolicy::Random}) {
        WriteBackCache c(CacheGeometry(64, 16, 4), p);
        std::uint32_t sets = c.geom().sets();
        for (std::uint32_t i = 0; i < 4; ++i)
            c.fill(i * sets, false);
        c.touch(0, c.findWay(2 * sets));
        EXPECT_EQ(c.mruOrder(0).front(),
                  static_cast<std::uint8_t>(c.findWay(2 * sets)))
            << replPolicyName(p);
    }
}

TEST(ReplPolicy, TreePlruMatchesLruOnTwoWaySets)
{
    // With two ways the PLRU tree is one bit: exactly LRU.
    WriteBackCache plru(CacheGeometry(32, 16, 2),
                        ReplPolicy::TreePlru);
    WriteBackCache lru(CacheGeometry(32, 16, 2), ReplPolicy::Lru);
    Pcg32 rng(23);
    for (int i = 0; i < 5000; ++i) {
        BlockAddr b = rng.below(6);
        for (WriteBackCache *c : {&plru, &lru}) {
            int way = c->findWay(b);
            if (way >= 0)
                c->touch(0, way);
            else
                c->fill(b, false);
        }
        // Identical contents at every step.
        for (BlockAddr x = 0; x < 6; ++x)
            ASSERT_EQ(plru.findWay(x) >= 0, lru.findWay(x) >= 0)
                << "step " << i;
    }
}

TEST(ReplPolicy, TreePlruProtectsTheMostRecentLine)
{
    // The PLRU invariant every hardware manual states: the victim
    // is never the line touched most recently.
    WriteBackCache c(CacheGeometry(128, 16, 8), ReplPolicy::TreePlru);
    std::uint32_t sets = c.geom().sets();
    for (std::uint32_t i = 0; i < 8; ++i)
        c.fill(i * sets, false);
    Pcg32 rng(29);
    for (int i = 0; i < 2000; ++i) {
        BlockAddr b = rng.below(8) * sets;
        int way = c.findWay(b);
        ASSERT_GE(way, 0);
        c.touch(0, way);
        ASSERT_NE(c.victimWay(0), way) << "victimized the MRU line";
    }
}

TEST(ReplPolicy, TreePlruApproximatesLruOnRealTrace)
{
    // Tree PLRU's miss ratio sits between LRU's and Random's on a
    // locality-heavy workload (the reason it is the usual hardware
    // compromise).
    trace::AtumLikeConfig tcfg;
    tcfg.segments = 2;
    tcfg.refs_per_segment = 80000;

    auto local = [&](ReplPolicy p) {
        trace::AtumLikeGenerator gen(tcfg);
        HierarchyConfig cfg{CacheGeometry(16384, 16, 1),
                            CacheGeometry(65536, 32, 8), true};
        cfg.l2_replacement = p;
        TwoLevelHierarchy h(cfg);
        h.run(gen);
        return h.stats().localMissRatio();
    };
    double lru = local(ReplPolicy::Lru);
    double plru = local(ReplPolicy::TreePlru);
    double rnd = local(ReplPolicy::Random);
    EXPECT_LE(lru, plru + 0.003);
    EXPECT_LE(plru, rnd + 0.003);
}

TEST(ReplPolicy, TreePlruRejectsHugeAssociativity)
{
    EXPECT_THROW(WriteBackCache(CacheGeometry(16384, 16, 128),
                                ReplPolicy::TreePlru),
                 FatalError);
}

TEST(ReplPolicy, LruBeatsFifoAndRandomOnLoopyWorkload)
{
    // On the locality-heavy ATUM-like trace, LRU should have the
    // lowest level-two miss ratio, as the cache literature (and the
    // paper's choice of LRU) predicts.
    trace::AtumLikeConfig tcfg;
    tcfg.segments = 2;
    tcfg.refs_per_segment = 80000;

    auto local = [&](ReplPolicy p) {
        trace::AtumLikeGenerator gen(tcfg);
        HierarchyConfig cfg{CacheGeometry(16384, 16, 1),
                            CacheGeometry(65536, 32, 4), true};
        cfg.l2_replacement = p;
        TwoLevelHierarchy h(cfg);
        h.run(gen);
        return h.stats().localMissRatio();
    };
    double lru = local(ReplPolicy::Lru);
    double fifo = local(ReplPolicy::Fifo);
    double rnd = local(ReplPolicy::Random);
    EXPECT_LE(lru, fifo + 0.003);
    EXPECT_LE(lru, rnd + 0.003);
}

TEST(ReplPolicy, LruSuffersOnCyclicSweep)
{
    // The flip side: on a loop one block larger than the set, LRU
    // misses every time while Random retains part of the loop.
    auto missRatio = [](ReplPolicy p) {
        WriteBackCache c(CacheGeometry(64, 16, 4), p, 11);
        trace::LoopTrace loop(0, 16 * c.geom().sets(), 5, 4000);
        trace::MemRef r;
        std::uint64_t misses = 0, total = 0;
        while (loop.next(r)) {
            BlockAddr b = c.geom().blockAddrOf(r.addr);
            int way = c.findWay(b);
            ++total;
            if (way >= 0) {
                c.touch(c.geom().setOf(b), way);
            } else {
                ++misses;
                c.fill(b, false);
            }
        }
        return static_cast<double>(misses) / total;
    };
    EXPECT_GT(missRatio(ReplPolicy::Lru), 0.99);
    EXPECT_LT(missRatio(ReplPolicy::Random), 0.8);
}

} // namespace
} // namespace mem
} // namespace assoc
