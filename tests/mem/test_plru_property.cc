/**
 * @file
 * Property tests for the Tree-PLRU replacement policy, driven
 * through the public cache API (fill to warm a set, touch to update
 * the tree, victimWay to read the policy's choice):
 *
 *  - the just-touched way is never the next victim (the defining
 *    pseudo-LRU guarantee, for every associativity >= 2);
 *  - repeatedly victimizing + touching the victim cycles fairly
 *    through all a ways before repeating any (the tree has no
 *    starvation corner).
 */

#include <cstdint>
#include <memory>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "mem/cache.h"
#include "util/rng.h"

using namespace assoc;
using namespace assoc::mem;

namespace {

/** One-set TreePlru cache with every way valid. The cache holds
 * atomic lifetime counters and cannot be moved, so the fixture
 * owns it behind a unique_ptr. */
std::unique_ptr<WriteBackCache>
warmPlruCache(unsigned a)
{
    const std::uint32_t block = 16;
    auto cache = std::make_unique<WriteBackCache>(
        CacheGeometry(block * a, block, a), ReplPolicy::TreePlru);
    for (unsigned i = 0; i < a; ++i)
        cache->fill(static_cast<BlockAddr>(i), false);
    EXPECT_EQ(cache->validCount(0), a);
    return cache;
}

class PlruProperty : public ::testing::TestWithParam<unsigned>
{};

TEST_P(PlruProperty, JustTouchedWayIsNeverTheVictim)
{
    const unsigned a = GetParam();
    std::unique_ptr<WriteBackCache> cache = warmPlruCache(a);
    Pcg32 rng(0x91u + a);
    for (int step = 0; step < 2000; ++step) {
        const int way = static_cast<int>(rng.below(a));
        cache->touch(0, way);
        EXPECT_NE(cache->victimWay(0), way)
            << "assoc " << a << " step " << step;
    }
}

TEST_P(PlruProperty, VictimsCycleThroughAllWaysFairly)
{
    const unsigned a = GetParam();
    std::unique_ptr<WriteBackCache> cache = warmPlruCache(a);
    // Touching the victim flips every tree node on its root-to-leaf
    // path, so successive victims must sweep all a ways before any
    // repeats — for several consecutive sweeps.
    for (int round = 0; round < 4; ++round) {
        std::set<int> seen;
        for (unsigned i = 0; i < a; ++i) {
            int v = cache->victimWay(0);
            ASSERT_GE(v, 0);
            ASSERT_LT(v, static_cast<int>(a));
            EXPECT_TRUE(seen.insert(v).second)
                << "victim " << v << " repeated before all " << a
                << " ways were cycled (round " << round << ")";
            cache->touch(0, v);
        }
        EXPECT_EQ(seen.size(), a);
    }
}

TEST_P(PlruProperty, VictimIsStableWithoutIntermediateTouches)
{
    // victimWay() is const: asking twice must answer the same.
    const unsigned a = GetParam();
    std::unique_ptr<WriteBackCache> cache = warmPlruCache(a);
    Pcg32 rng(0x7eu + a);
    for (int step = 0; step < 100; ++step) {
        cache->touch(0, static_cast<int>(rng.below(a)));
        EXPECT_EQ(cache->victimWay(0), cache->victimWay(0));
    }
}

INSTANTIATE_TEST_SUITE_P(Assoc, PlruProperty,
                         ::testing::Values(2u, 4u, 8u, 16u, 32u,
                                           64u));

TEST(PlruProperty, InvalidFramesAreVictimizedFirst)
{
    // With an invalid frame present the policy must not even be
    // consulted: fills take the empty frame (inexpensive, and what
    // the packed-order suffix invariant guarantees is available).
    std::unique_ptr<WriteBackCache> cache = warmPlruCache(8);
    ASSERT_GE(cache->findWay(3), 0);
    cache->invalidate(3); // clean line: returns false, still drops it
    ASSERT_LT(cache->findWay(3), 0);
    EXPECT_EQ(cache->victimWay(0), cache->mruOrder(0).back());
    FillResult fr = cache->fill(100, false);
    EXPECT_FALSE(fr.evicted);
    EXPECT_EQ(cache->validCount(0), 8u);
}

} // namespace
