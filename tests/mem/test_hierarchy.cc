#include <gtest/gtest.h>

#include <vector>

#include "mem/hierarchy.h"
#include "trace/atum_like.h"
#include "util/logging.h"

namespace assoc {
namespace mem {
namespace {

using trace::MemRef;
using trace::RefType;

HierarchyConfig
smallConfig()
{
    return HierarchyConfig{CacheGeometry(256, 16, 1),
                           CacheGeometry(1024, 32, 4), true};
}

/** Observer that records every level-two access it sees. */
class RecordingObserver : public L2Observer
{
  public:
    struct Record
    {
        L2ReqType type;
        BlockAddr block;
        int hit_way;
        int hint_way;
        unsigned valid_before;
    };

    void
    observe(const L2AccessView &view) override
    {
        records.push_back(Record{view.type, view.block, view.hit_way,
                                 view.hint_way,
                                 view.cache->validCount(view.set)});
    }

    void onFlush() override { ++flushes; }

    std::vector<Record> records;
    int flushes = 0;
};

TEST(TwoLevelHierarchy, FirstTouchMissesBothLevels)
{
    TwoLevelHierarchy h(smallConfig());
    h.access({0x1000, RefType::Read, 0});
    const HierarchyStats &s = h.stats();
    EXPECT_EQ(s.proc_refs, 1u);
    EXPECT_EQ(s.l1_misses, 1u);
    EXPECT_EQ(s.read_ins, 1u);
    EXPECT_EQ(s.read_in_misses, 1u);
    EXPECT_EQ(s.write_backs, 0u);
}

TEST(TwoLevelHierarchy, RereferenceHitsL1Silently)
{
    TwoLevelHierarchy h(smallConfig());
    h.access({0x1000, RefType::Read, 0});
    h.access({0x1004, RefType::Read, 0}); // same 16B L1 block
    const HierarchyStats &s = h.stats();
    EXPECT_EQ(s.l1_hits, 1u);
    EXPECT_EQ(s.read_ins, 1u); // no second request to L2
}

TEST(TwoLevelHierarchy, L1ConflictMissHitsL2)
{
    HierarchyConfig cfg = smallConfig();
    TwoLevelHierarchy h(cfg);
    // Two blocks that conflict in the 16-set L1 but live in a
    // 4-way L2 set: L1 block stride = sets*block = 256 bytes.
    h.access({0x0000, RefType::Read, 0});
    h.access({0x4000, RefType::Read, 0}); // conflicts in L1, far in L2
    h.access({0x0000, RefType::Read, 0}); // L1 miss again, L2 hit
    const HierarchyStats &s = h.stats();
    EXPECT_EQ(s.l1_misses, 3u);
    EXPECT_EQ(s.read_ins, 3u);
    EXPECT_EQ(s.read_in_hits, 1u);
}

TEST(TwoLevelHierarchy, CleanEvictionCausesNoWriteBack)
{
    TwoLevelHierarchy h(smallConfig());
    h.access({0x0000, RefType::Read, 0});
    h.access({0x4000, RefType::Read, 0}); // evicts clean block
    EXPECT_EQ(h.stats().write_backs, 0u);
}

TEST(TwoLevelHierarchy, DirtyEvictionIssuesReadInThenWriteBack)
{
    TwoLevelHierarchy h(smallConfig());
    RecordingObserver obs;
    h.addObserver(&obs);
    h.access({0x0000, RefType::Write, 0}); // dirty in L1
    h.access({0x4000, RefType::Read, 0});  // displaces dirty block
    const HierarchyStats &s = h.stats();
    EXPECT_EQ(s.write_backs, 1u);
    ASSERT_EQ(obs.records.size(), 3u);
    // Order: read-in(0x0000 miss), read-in(0x4000), write-back(0x0000).
    EXPECT_EQ(obs.records[1].type, L2ReqType::ReadIn);
    EXPECT_EQ(obs.records[2].type, L2ReqType::WriteBack);
    EXPECT_EQ(obs.records[2].block,
              h.config().l2.blockAddrOf(0x0000));
}

TEST(TwoLevelHierarchy, WriteBackHitsL2AndMarksDirty)
{
    TwoLevelHierarchy h(smallConfig());
    h.access({0x0000, RefType::Write, 0});
    h.access({0x4000, RefType::Read, 0}); // write-back of 0x0000
    const HierarchyStats &s = h.stats();
    EXPECT_EQ(s.write_back_hits, 1u);
    EXPECT_EQ(s.write_back_misses, 0u);
    // The L2 line for 0x0000 must now be dirty.
    BlockAddr b = h.config().l2.blockAddrOf(0x0000);
    int way = h.l2().findWay(b);
    ASSERT_GE(way, 0);
    EXPECT_TRUE(h.l2().line(h.config().l2.setOf(b), way).dirty);
}

TEST(TwoLevelHierarchy, WriteBackHintIsCorrectWhenInclusionHolds)
{
    TwoLevelHierarchy h(smallConfig());
    RecordingObserver obs;
    h.addObserver(&obs);
    h.access({0x0000, RefType::Write, 0});
    h.access({0x4000, RefType::Read, 0});
    const HierarchyStats &s = h.stats();
    EXPECT_EQ(s.hint_correct, 1u);
    EXPECT_EQ(s.hint_wrong, 0u);
    EXPECT_DOUBLE_EQ(s.hintAccuracy(), 1.0);
    // The observer's write-back view carried a valid hint equal to
    // the true hit way.
    const auto &wb = obs.records.back();
    EXPECT_EQ(wb.type, L2ReqType::WriteBack);
    EXPECT_GE(wb.hint_way, 0);
    EXPECT_EQ(wb.hint_way, wb.hit_way);
}

TEST(TwoLevelHierarchy, ObserverSeesPreAccessState)
{
    TwoLevelHierarchy h(smallConfig());
    RecordingObserver obs;
    h.addObserver(&obs);
    h.access({0x0000, RefType::Read, 0});
    // At observation time the set had no valid lines yet.
    ASSERT_EQ(obs.records.size(), 1u);
    EXPECT_EQ(obs.records[0].valid_before, 0u);
    EXPECT_EQ(obs.records[0].hit_way, -1);
}

TEST(TwoLevelHierarchy, FlushMarkerColdsBothLevelsAndNotifies)
{
    TwoLevelHierarchy h(smallConfig());
    RecordingObserver obs;
    h.addObserver(&obs);
    h.access({0x0000, RefType::Read, 0});
    h.access(MemRef::flush());
    EXPECT_EQ(obs.flushes, 1);
    EXPECT_EQ(h.stats().flushes, 1u);
    // Same reference misses both levels again.
    h.access({0x0000, RefType::Read, 0});
    EXPECT_EQ(h.stats().read_in_misses, 2u);
}

TEST(TwoLevelHierarchy, GlobalAndLocalMissRatios)
{
    TwoLevelHierarchy h(smallConfig());
    h.access({0x0000, RefType::Read, 0}); // miss both
    h.access({0x0000, RefType::Read, 0}); // L1 hit
    h.access({0x4000, RefType::Read, 0}); // miss both
    h.access({0x0000, RefType::Read, 0}); // L1 miss, L2 hit
    const HierarchyStats &s = h.stats();
    EXPECT_DOUBLE_EQ(s.l1MissRatio(), 0.75);
    EXPECT_DOUBLE_EQ(s.globalMissRatio(), 0.5);
    EXPECT_DOUBLE_EQ(s.localMissRatio(), 2.0 / 3.0);
}

TEST(TwoLevelHierarchy, LargerL2BlocksCoalesceReadIns)
{
    // L1 16B blocks, L2 32B blocks: the two halves of one L2 block
    // are distinct L1 blocks but one L2 read-in makes the second a
    // level-two hit.
    TwoLevelHierarchy h(smallConfig());
    h.access({0x0000, RefType::Read, 0});
    h.access({0x0010, RefType::Read, 0});
    const HierarchyStats &s = h.stats();
    EXPECT_EQ(s.read_ins, 2u);
    EXPECT_EQ(s.read_in_misses, 1u);
    EXPECT_EQ(s.read_in_hits, 1u);
}

TEST(TwoLevelHierarchy, RejectsL1BlockLargerThanL2Block)
{
    HierarchyConfig cfg{CacheGeometry(256, 32, 1),
                        CacheGeometry(1024, 16, 4), true};
    EXPECT_THROW(TwoLevelHierarchy{cfg}, FatalError);
}

TEST(TwoLevelHierarchy, RunStreamsWholeTrace)
{
    trace::AtumLikeConfig tcfg;
    tcfg.segments = 2;
    tcfg.refs_per_segment = 20000;
    tcfg.processes = 2;
    trace::AtumLikeGenerator gen(tcfg);

    TwoLevelHierarchy h(smallConfig());
    h.run(gen);
    const HierarchyStats &s = h.stats();
    EXPECT_EQ(s.proc_refs, 40000u);
    EXPECT_EQ(s.flushes, 1u);
    EXPECT_EQ(s.l1_hits + s.l1_misses, s.proc_refs);
    EXPECT_EQ(s.read_ins, s.l1_misses);
    EXPECT_EQ(s.read_in_hits + s.read_in_misses, s.read_ins);
    EXPECT_EQ(s.write_back_hits + s.write_back_misses,
              s.write_backs);
    EXPECT_GT(s.write_backs, 0u);
}

TEST(TwoLevelHierarchy, InclusionViolationsAreDetected)
{
    // A tiny L2 with a big L1 forces inclusion violations: blocks
    // live in L1 long after the L2 replaced them, so their
    // write-backs miss.
    HierarchyConfig cfg{CacheGeometry(4096, 16, 1),
                        CacheGeometry(512, 16, 2), true};
    TwoLevelHierarchy h(cfg);
    trace::AtumLikeConfig tcfg;
    tcfg.segments = 1;
    tcfg.refs_per_segment = 50000;
    tcfg.processes = 2;
    trace::AtumLikeGenerator gen(tcfg);
    h.run(gen);
    EXPECT_GT(h.stats().write_back_misses, 0u);
    EXPECT_LT(h.stats().hintAccuracy(), 1.0);
}

TEST(TwoLevelHierarchy, WbMissAllocationRespectsConfig)
{
    HierarchyConfig cfg{CacheGeometry(4096, 16, 1),
                        CacheGeometry(512, 16, 2), false};
    TwoLevelHierarchy h(cfg);
    trace::AtumLikeConfig tcfg;
    tcfg.segments = 1;
    tcfg.refs_per_segment = 30000;
    tcfg.processes = 2;
    trace::AtumLikeGenerator gen(tcfg);
    // Just exercises the no-allocate path; invariants still hold.
    h.run(gen);
    const HierarchyStats &s = h.stats();
    EXPECT_EQ(s.write_back_hits + s.write_back_misses,
              s.write_backs);
}

TEST(HierarchyStats, ZeroDivisionGuards)
{
    HierarchyStats s;
    EXPECT_DOUBLE_EQ(s.l1MissRatio(), 0.0);
    EXPECT_DOUBLE_EQ(s.globalMissRatio(), 0.0);
    EXPECT_DOUBLE_EQ(s.localMissRatio(), 0.0);
    EXPECT_DOUBLE_EQ(s.writeBackFraction(), 0.0);
    EXPECT_DOUBLE_EQ(s.hintAccuracy(), 0.0);
}

TEST(TwoLevelHierarchy, ReadOnlyStreamNeverWritesBack)
{
    TwoLevelHierarchy h(smallConfig());
    for (trace::Addr a = 0; a < 0x8000; a += 256)
        h.access({a, RefType::Read, 0});
    EXPECT_EQ(h.stats().write_backs, 0u);
    EXPECT_DOUBLE_EQ(h.stats().writeBackFraction(), 0.0);
}

TEST(TwoLevelHierarchy, IfetchesBehaveLikeReads)
{
    TwoLevelHierarchy h1(smallConfig()), h2(smallConfig());
    for (trace::Addr a = 0; a < 0x4000; a += 64) {
        h1.access({a, RefType::Read, 0});
        h2.access({a, RefType::Ifetch, 0});
    }
    EXPECT_EQ(h1.stats().l1_misses, h2.stats().l1_misses);
    EXPECT_EQ(h1.stats().read_in_misses, h2.stats().read_in_misses);
}

TEST(TwoLevelHierarchy, NullObserverPanics)
{
    TwoLevelHierarchy h(smallConfig());
    EXPECT_THROW(h.addObserver(nullptr), PanicError);
}

} // namespace
} // namespace mem
} // namespace assoc
