#include <gtest/gtest.h>

#include "mem/geometry.h"
#include "util/logging.h"

namespace assoc {
namespace mem {
namespace {

TEST(CacheGeometry, PaperConfigurations)
{
    // The level-one caches of Table 3.
    CacheGeometry l1_4k(4096, 16, 1);
    EXPECT_EQ(l1_4k.sets(), 256u);
    EXPECT_EQ(l1_4k.offsetBits(), 4u);
    EXPECT_EQ(l1_4k.indexBits(), 8u);

    CacheGeometry l1_16k(16384, 32, 1);
    EXPECT_EQ(l1_16k.sets(), 512u);

    // A level-two cache: 256K-32, 4-way.
    CacheGeometry l2(256 * 1024, 32, 4);
    EXPECT_EQ(l2.sets(), 2048u);
    EXPECT_EQ(l2.offsetBits(), 5u);
    EXPECT_EQ(l2.indexBits(), 11u);
    EXPECT_EQ(l2.fullTagBits(), 16u);
}

TEST(CacheGeometry, AddressRoundTrip)
{
    CacheGeometry g(64 * 1024, 16, 4);
    trace::Addr a = 0xdeadbeef;
    BlockAddr b = g.blockAddrOf(a);
    std::uint32_t set = g.setOf(b);
    std::uint32_t tag = g.fullTagOf(b);
    EXPECT_EQ(g.blockAddrFrom(tag, set), b);
    EXPECT_EQ(g.byteAddrOf(b), a & ~trace::Addr{15});
}

TEST(CacheGeometry, SetIndexCoversAllSets)
{
    CacheGeometry g(1024, 16, 2);
    ASSERT_EQ(g.sets(), 32u);
    std::vector<bool> seen(g.sets(), false);
    for (trace::Addr a = 0; a < 1024; a += 16)
        seen[g.setOf(g.blockAddrOf(a))] = true;
    for (bool s : seen)
        EXPECT_TRUE(s);
}

TEST(CacheGeometry, SameBlockSameSet)
{
    CacheGeometry g(8192, 32, 4);
    EXPECT_EQ(g.blockAddrOf(0x1000), g.blockAddrOf(0x101f));
    EXPECT_NE(g.blockAddrOf(0x1000), g.blockAddrOf(0x1020));
}

TEST(CacheGeometry, FullyAssociativeAllowed)
{
    CacheGeometry g(1024, 64, 16);
    EXPECT_EQ(g.sets(), 1u);
    EXPECT_EQ(g.indexBits(), 0u);
    EXPECT_EQ(g.setOf(g.blockAddrOf(0xabcdef)), 0u);
}

TEST(CacheGeometry, Names)
{
    EXPECT_EQ(CacheGeometry(256 * 1024, 32, 1).name(), "256K-32");
    EXPECT_EQ(CacheGeometry(256 * 1024, 32, 4).name(),
              "256K-32 4-way");
    EXPECT_EQ(CacheGeometry(4096, 16, 1).name(), "4K-16");
    EXPECT_EQ(CacheGeometry(2 * 1024 * 1024, 64, 8).name(),
              "2M-64 8-way");
}

TEST(CacheGeometry, RejectsInvalidShapes)
{
    EXPECT_THROW(CacheGeometry(1000, 16, 1), FatalError);  // size
    EXPECT_THROW(CacheGeometry(1024, 24, 1), FatalError);  // block
    EXPECT_THROW(CacheGeometry(1024, 16, 3), FatalError);  // assoc
    EXPECT_THROW(CacheGeometry(1024, 2, 1), FatalError);   // tiny block
    EXPECT_THROW(CacheGeometry(64, 16, 16), FatalError);   // too small
}

TEST(CacheGeometry, Equality)
{
    EXPECT_TRUE(CacheGeometry(1024, 16, 2) ==
                CacheGeometry(1024, 16, 2));
    EXPECT_FALSE(CacheGeometry(1024, 16, 2) ==
                 CacheGeometry(1024, 16, 4));
}

} // namespace
} // namespace mem
} // namespace assoc
