#include <gtest/gtest.h>

#include <memory>

#include "core/probe_meter.h"
#include "core/scheme.h"
#include "mem/third_level.h"
#include "trace/atum_like.h"

namespace assoc {
namespace mem {
namespace {

using trace::MemRef;
using trace::RefType;

struct Stack
{
    HierarchyConfig cfg{CacheGeometry(256, 16, 1),
                        CacheGeometry(1024, 32, 2), true};
    TwoLevelHierarchy hier{cfg};
    ThirdLevelCache l3{CacheGeometry(8192, 64, 4), cfg.l2};

    Stack() { hier.setMemorySide(&l3); }
};

TEST(ThirdLevel, L2MissBecomesL3ReadIn)
{
    Stack s;
    s.hier.access({0x1000, RefType::Read, 0});
    EXPECT_EQ(s.l3.stats().read_ins, 1u);
    EXPECT_EQ(s.l3.stats().read_in_misses, 1u);
}

TEST(ThirdLevel, L2HitIsInvisibleToL3)
{
    Stack s;
    s.hier.access({0x1000, RefType::Read, 0});
    s.hier.access({0x5000, RefType::Read, 0}); // L1 conflict
    s.hier.access({0x1000, RefType::Read, 0}); // L2 hit
    EXPECT_EQ(s.hier.stats().read_in_hits, 1u);
    EXPECT_EQ(s.l3.stats().read_ins, 2u); // only the two misses
}

TEST(ThirdLevel, L3HitOnReuseBeyondL2)
{
    Stack s;
    // Three L2-conflicting blocks (1024B/32B 2-way -> 16 sets;
    // 512-byte stride shares an L2 set) that the larger L3 retains.
    s.hier.access({0x0000, RefType::Read, 0});
    s.hier.access({0x4000, RefType::Read, 0});
    s.hier.access({0x8000, RefType::Read, 0}); // evicts 0x0000 in L2
    s.hier.access({0x0000, RefType::Read, 0}); // L2 miss, L3 hit
    EXPECT_EQ(s.l3.stats().read_ins, 4u);
    EXPECT_EQ(s.l3.stats().read_in_hits, 1u);
}

TEST(ThirdLevel, DirtyL2EvictionArrivesAsWriteBack)
{
    Stack s;
    s.hier.access({0x0000, RefType::Write, 0}); // dirty in L1
    s.hier.access({0x4000, RefType::Read, 0});  // L1 evict -> L2 dirty
    // Force the L2 to evict the dirty 0x0000 line: two more blocks
    // in its set.
    s.hier.access({0x8000, RefType::Read, 0});
    s.hier.access({0xC000, RefType::Read, 0});
    EXPECT_GE(s.l3.stats().write_backs, 1u);
}

TEST(ThirdLevel, LargerL3BlocksCoalesce)
{
    Stack s;
    // Two adjacent 32B L2 blocks share one 64B L3 block.
    s.hier.access({0x0000, RefType::Read, 0});
    s.hier.access({0x0020, RefType::Read, 0});
    EXPECT_EQ(s.l3.stats().read_ins, 2u);
    EXPECT_EQ(s.l3.stats().read_in_hits, 1u);
}

TEST(ThirdLevel, FlushPropagates)
{
    Stack s;
    s.hier.access({0x1000, RefType::Read, 0});
    s.hier.access(MemRef::flush());
    s.hier.access({0x1000, RefType::Read, 0});
    EXPECT_EQ(s.l3.stats().read_in_misses, 2u);
}

TEST(ThirdLevel, RejectsBlockSmallerThanL2)
{
    CacheGeometry l2(1024, 32, 2);
    EXPECT_THROW(ThirdLevelCache(CacheGeometry(8192, 16, 4), l2),
                 FatalError);
}

TEST(ThirdLevel, ObserversPriceL3Lookups)
{
    // The same probe meters attach at the third level.
    trace::AtumLikeConfig tcfg;
    tcfg.segments = 2;
    tcfg.refs_per_segment = 60000;
    trace::AtumLikeGenerator gen(tcfg);

    HierarchyConfig cfg{CacheGeometry(4096, 16, 1),
                        CacheGeometry(65536, 32, 4), true};
    TwoLevelHierarchy hier(cfg);
    ThirdLevelCache l3(CacheGeometry(262144, 64, 8), cfg.l2);
    hier.setMemorySide(&l3);

    core::SchemeSpec naive, mru;
    naive.kind = core::SchemeKind::Naive;
    mru.kind = core::SchemeKind::Mru;
    auto m_naive = naive.makeMeter();
    auto m_mru = mru.makeMeter();
    auto m_part = core::SchemeSpec::paperPartial(8).makeMeter();
    l3.addObserver(m_naive.get());
    l3.addObserver(m_mru.get());
    l3.addObserver(m_part.get());
    hier.run(gen);

    const ThirdLevelStats &ts = l3.stats();
    ASSERT_GT(ts.read_ins, 1000u);
    EXPECT_EQ(ts.read_in_hits + ts.read_in_misses, ts.read_ins);

    // Meter accounting matches the level's own counters.
    EXPECT_EQ(m_naive->stats().read_in_hits.count(),
              ts.read_in_hits);
    EXPECT_EQ(m_naive->stats().read_in_misses.count(),
              ts.read_in_misses);
    // Paper-shape orderings hold at the third level too.
    EXPECT_DOUBLE_EQ(m_naive->stats().read_in_misses.mean(), 8.0);
    EXPECT_DOUBLE_EQ(m_mru->stats().read_in_misses.mean(), 9.0);
    EXPECT_LT(m_part->stats().read_in_misses.mean(), 4.0);
    EXPECT_LT(m_mru->stats().read_in_hits.mean(),
              m_naive->stats().read_in_hits.mean());
}

TEST(ThirdLevel, WorksWithWriteThroughL1)
{
    HierarchyConfig cfg{CacheGeometry(256, 16, 1),
                        CacheGeometry(1024, 32, 2), true};
    cfg.write_policy = L1WritePolicy::WriteThrough;
    TwoLevelHierarchy hier(cfg);
    ThirdLevelCache l3(CacheGeometry(8192, 64, 4), cfg.l2);
    hier.setMemorySide(&l3);

    hier.access({0x100, RefType::Write, 0});
    // The write-through store dirtied the L2 line; only its
    // eventual eviction reaches the L3 (stores stop at the first
    // write-back level).
    EXPECT_EQ(l3.stats().read_ins, 1u);
    EXPECT_EQ(l3.stats().write_backs, 0u);
}

TEST(ThirdLevel, WorksWithInclusionEnforcement)
{
    HierarchyConfig cfg{CacheGeometry(4096, 16, 1),
                        CacheGeometry(8192, 32, 2), true};
    cfg.enforce_inclusion = true;
    TwoLevelHierarchy hier(cfg);
    ThirdLevelCache l3(CacheGeometry(65536, 64, 4), cfg.l2);
    hier.setMemorySide(&l3);

    trace::AtumLikeConfig tcfg;
    tcfg.segments = 1;
    tcfg.refs_per_segment = 40000;
    trace::AtumLikeGenerator gen(tcfg);
    hier.run(gen);

    const HierarchyStats &hs = hier.stats();
    EXPECT_GT(hs.inclusion_invalidations, 0u);
    EXPECT_EQ(hs.write_back_misses, 0u);
    // Conservation at the third level.
    const ThirdLevelStats &ts = l3.stats();
    EXPECT_EQ(ts.read_in_hits + ts.read_in_misses, ts.read_ins);
    EXPECT_EQ(ts.write_back_hits + ts.write_back_misses,
              ts.write_backs);
}

TEST(ThirdLevel, FifoPolicyPropagates)
{
    CacheGeometry l2(1024, 32, 2);
    ThirdLevelCache l3(CacheGeometry(8192, 64, 4), l2,
                       ReplPolicy::Fifo);
    EXPECT_EQ(l3.cache().policy(), ReplPolicy::Fifo);
}

TEST(ThirdLevel, NullObserverPanics)
{
    Stack s;
    EXPECT_THROW(s.l3.addObserver(nullptr), PanicError);
}

TEST(TwoLevelHierarchy, NullMemorySidePanics)
{
    Stack s;
    EXPECT_THROW(s.hier.setMemorySide(nullptr), PanicError);
}

} // namespace
} // namespace mem
} // namespace assoc
