/**
 * @file
 * Randomized equivalence tests for the packed recency orders: the
 * 4-bit-slot uint64 representation (and the wide byte fallback)
 * must evolve exactly like a straightforward reference vector under
 * every operation the cache performs — promote on touch/fill,
 * demote on invalidate, rotation reset on flush.
 */

#include <algorithm>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "mem/cache.h"
#include "util/rng.h"

using namespace assoc;
using namespace assoc::mem;

namespace {

/** Reference model: one vector per order, explicit list surgery. */
struct RefOrders
{
    std::vector<std::uint8_t> mru;  ///< front = most recent
    std::vector<std::uint8_t> fifo; ///< front = youngest fill

    explicit RefOrders(unsigned a, std::uint32_t set)
    {
        // Matches the cache's cold-start rotation: way (i + set) % a
        // at position i of both orders.
        for (unsigned i = 0; i < a; ++i) {
            auto w = static_cast<std::uint8_t>((i + set) % a);
            mru.push_back(w);
            fifo.push_back(w);
        }
    }

    static void
    promote(std::vector<std::uint8_t> &order, std::uint8_t way)
    {
        auto it = std::find(order.begin(), order.end(), way);
        ASSERT_NE(it, order.end());
        order.erase(it);
        order.insert(order.begin(), way);
    }

    static void
    demote(std::vector<std::uint8_t> &order, std::uint8_t way)
    {
        auto it = std::find(order.begin(), order.end(), way);
        ASSERT_NE(it, order.end());
        order.erase(it);
        order.push_back(way);
    }
};

/**
 * Drive one single-set cache and the reference model through the
 * same random operation sequence and compare decoded orders after
 * every step. A one-set geometry (sets == 1 via size == block * a)
 * keeps every operation in set 0 without loss of generality: order
 * state is strictly per-set.
 */
void
runEquivalence(unsigned a, std::uint64_t seed)
{
    const std::uint32_t block = 16;
    WriteBackCache cache(CacheGeometry(block * a, block, a));
    RefOrders ref(a, 0);
    Pcg32 rng(seed);

    // block-aligned addresses all mapping to set 0
    auto blockOf = [&](unsigned i) {
        return static_cast<BlockAddr>(i);
    };
    std::vector<int> way_of(2 * a, -1); // block -> way or -1

    for (int step = 0; step < 4000; ++step) {
        const unsigned b = rng.below(2 * a);
        const double roll = rng.uniform();
        if (roll < 0.45) {
            // touch (hit path) if present, else fill
            if (way_of[b] >= 0) {
                cache.touch(0, way_of[b]);
                RefOrders::promote(ref.mru,
                                   static_cast<std::uint8_t>(
                                       way_of[b]));
            } else {
                int victim = cache.victimWay(0);
                FillResult fr = cache.fill(blockOf(b), false);
                ASSERT_EQ(fr.way, victim);
                for (auto &w : way_of)
                    if (w == fr.way)
                        w = -1; // displaced (or same frame reused)
                way_of[b] = fr.way;
                auto w8 = static_cast<std::uint8_t>(fr.way);
                RefOrders::promote(ref.mru, w8);
                RefOrders::promote(ref.fifo, w8);
            }
        } else if (roll < 0.75) {
            // invalidate (possibly absent): demotes in BOTH orders
            cache.invalidate(blockOf(b));
            if (way_of[b] >= 0) {
                auto w8 = static_cast<std::uint8_t>(way_of[b]);
                RefOrders::demote(ref.mru, w8);
                RefOrders::demote(ref.fifo, w8);
                way_of[b] = -1;
            }
        } else if (roll < 0.80) {
            cache.flush();
            ref = RefOrders(a, 0);
            std::fill(way_of.begin(), way_of.end(), -1);
        } else {
            // pure lookup must not disturb either order
            (void)cache.findWay(blockOf(b));
        }

        ASSERT_EQ(cache.mruOrder(0), ref.mru)
            << "assoc " << a << " step " << step;
        ASSERT_EQ(cache.fifoOrder(0), ref.fifo)
            << "assoc " << a << " step " << step;
    }
}

class RecencyEquivalence
    : public ::testing::TestWithParam<unsigned>
{};

TEST_P(RecencyEquivalence, MatchesReferenceVectors)
{
    runEquivalence(GetParam(), 0xc0ffee + GetParam());
}

// 2..16 exercises the packed 4-bit representation (including the
// full 16-slot word); 32 exercises the wide byte fallback.
// (CacheGeometry only admits power-of-two associativities.)
INSTANTIATE_TEST_SUITE_P(Assoc, RecencyEquivalence,
                         ::testing::Values(2u, 4u, 8u, 16u, 32u));

TEST(RecencyPacked, ColdStartRotationVariesBySet)
{
    // The initial orders are a per-set rotation (not identical
    // lists), so cold misses spread across ways — decoded state
    // must reproduce exactly that rotation.
    WriteBackCache cache(CacheGeometry(4096, 16, 4));
    const unsigned a = 4;
    for (std::uint32_t set : {0u, 1u, 5u, cache.geom().sets() - 1}) {
        std::vector<std::uint8_t> want;
        for (unsigned i = 0; i < a; ++i)
            want.push_back(static_cast<std::uint8_t>((i + set) % a));
        EXPECT_EQ(cache.mruOrder(set), want) << "set " << set;
        EXPECT_EQ(cache.fifoOrder(set), want) << "set " << set;
    }
}

TEST(RecencyPacked, SnapshotMatchesPerLineReads)
{
    WriteBackCache cache(CacheGeometry(2048, 16, 8));
    Pcg32 rng(11);
    for (int i = 0; i < 500; ++i) {
        BlockAddr b = rng.below(256);
        int way = cache.findWay(b);
        if (way < 0)
            cache.fill(b, rng.chance(0.3));
        else
            cache.touch(cache.geom().setOf(b), way);
    }
    const unsigned a = cache.geom().assoc();
    std::vector<std::uint32_t> tags(a);
    std::vector<std::uint8_t> valid(a), order(a);
    for (std::uint32_t set = 0; set < cache.geom().sets(); ++set) {
        cache.snapshotSet(set, tags.data(), valid.data(),
                          order.data());
        std::vector<std::uint8_t> mru = cache.mruOrder(set);
        for (unsigned w = 0; w < a; ++w) {
            Line l = cache.line(set, static_cast<int>(w));
            EXPECT_EQ(valid[w], l.valid ? 1 : 0);
            EXPECT_EQ(tags[w], cache.geom().fullTagOf(l.block));
            EXPECT_EQ(order[w], mru[w]);
        }
    }
}

} // namespace
