#include <gtest/gtest.h>

#include "trace/trace_source.h"

namespace assoc {
namespace trace {
namespace {

TEST(MemRef, FlushMarker)
{
    MemRef f = MemRef::flush();
    EXPECT_TRUE(f.isFlush());
    EXPECT_FALSE(f.isWrite());
    EXPECT_FALSE(f.isInstruction());
}

TEST(MemRef, TypePredicates)
{
    MemRef r{0x100, RefType::Write, 3};
    EXPECT_TRUE(r.isWrite());
    EXPECT_FALSE(r.isFlush());
    MemRef i{0x200, RefType::Ifetch, 1};
    EXPECT_TRUE(i.isInstruction());
}

TEST(MemRef, TypeNames)
{
    EXPECT_STREQ(refTypeName(RefType::Read), "read");
    EXPECT_STREQ(refTypeName(RefType::Write), "write");
    EXPECT_STREQ(refTypeName(RefType::Ifetch), "ifetch");
    EXPECT_STREQ(refTypeName(RefType::Flush), "flush");
}

TEST(VectorTraceSource, EmptySourceEndsImmediately)
{
    VectorTraceSource src;
    MemRef r;
    EXPECT_FALSE(src.next(r));
}

TEST(VectorTraceSource, StreamsInOrder)
{
    VectorTraceSource src;
    src.push({0x10, RefType::Read, 1});
    src.push({0x20, RefType::Write, 2});
    MemRef r;
    ASSERT_TRUE(src.next(r));
    EXPECT_EQ(r.addr, 0x10u);
    ASSERT_TRUE(src.next(r));
    EXPECT_EQ(r.addr, 0x20u);
    EXPECT_FALSE(src.next(r));
}

TEST(VectorTraceSource, ResetReplaysIdentically)
{
    VectorTraceSource src({{0x1, RefType::Read, 0},
                           {0x2, RefType::Ifetch, 0}});
    MemRef a, b;
    ASSERT_TRUE(src.next(a));
    src.reset();
    ASSERT_TRUE(src.next(b));
    EXPECT_EQ(a, b);
}

TEST(LimitedTraceSource, TruncatesStream)
{
    VectorTraceSource inner({{1, RefType::Read, 0},
                             {2, RefType::Read, 0},
                             {3, RefType::Read, 0}});
    LimitedTraceSource lim(inner, 2);
    MemRef r;
    EXPECT_TRUE(lim.next(r));
    EXPECT_TRUE(lim.next(r));
    EXPECT_FALSE(lim.next(r));
}

TEST(LimitedTraceSource, ResetResetsBothLayers)
{
    VectorTraceSource inner({{1, RefType::Read, 0},
                             {2, RefType::Read, 0}});
    LimitedTraceSource lim(inner, 1);
    MemRef r;
    EXPECT_TRUE(lim.next(r));
    EXPECT_FALSE(lim.next(r));
    lim.reset();
    ASSERT_TRUE(lim.next(r));
    EXPECT_EQ(r.addr, 1u);
}

TEST(LimitedTraceSource, LimitBeyondLengthIsHarmless)
{
    VectorTraceSource inner({{1, RefType::Read, 0}});
    LimitedTraceSource lim(inner, 100);
    MemRef r;
    EXPECT_TRUE(lim.next(r));
    EXPECT_FALSE(lim.next(r));
}

} // namespace
} // namespace trace
} // namespace assoc
