#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "trace/bin_io.h"
#include "util/logging.h"

namespace assoc {
namespace trace {
namespace {

class BinIoTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        path_ = ::testing::TempDir() + "bin_io_test_" +
                std::to_string(::testing::UnitTest::GetInstance()
                                   ->random_seed()) +
                ".bin";
    }

    void TearDown() override { std::remove(path_.c_str()); }

    std::string path_;
};

TEST_F(BinIoTest, RoundTripPreservesEverything)
{
    VectorTraceSource src({{0xdeadbeef, RefType::Read, 1},
                           {0x00000000, RefType::Write, 0},
                           {0xffffffff, RefType::Ifetch, 255},
                           MemRef::flush(),
                           {0x1234, RefType::Read, 2}});
    std::uint64_t n = writeBin(src, path_);
    EXPECT_EQ(n, 5u);

    BinTraceSource in(path_);
    EXPECT_EQ(in.count(), 5u);
    MemRef r;
    for (const MemRef &expect : src.refs()) {
        ASSERT_TRUE(in.next(r));
        EXPECT_EQ(r, expect);
    }
    EXPECT_FALSE(in.next(r));
}

TEST_F(BinIoTest, EmptyTraceRoundTrips)
{
    VectorTraceSource src;
    EXPECT_EQ(writeBin(src, path_), 0u);
    BinTraceSource in(path_);
    EXPECT_EQ(in.count(), 0u);
    MemRef r;
    EXPECT_FALSE(in.next(r));
}

TEST_F(BinIoTest, ResetRereadsFromTheTop)
{
    VectorTraceSource src({{0x10, RefType::Read, 1},
                           {0x20, RefType::Write, 2}});
    writeBin(src, path_);
    BinTraceSource in(path_);
    MemRef a, b;
    ASSERT_TRUE(in.next(a));
    ASSERT_TRUE(in.next(b));
    in.reset();
    MemRef c;
    ASSERT_TRUE(in.next(c));
    EXPECT_EQ(a, c);
}

TEST_F(BinIoTest, BadMagicIsAnError)
{
    std::ofstream out(path_, std::ios::binary);
    out << "JUNKJUNKJUNKJUNK";
    out.close();
    BinTraceSource in(path_);
    ASSERT_TRUE(in.failed());
    EXPECT_EQ(in.error().code(), ErrorCode::Data);
    MemRef r;
    EXPECT_FALSE(in.next(r));
}

TEST_F(BinIoTest, TruncatedHeaderIsAnError)
{
    std::ofstream out(path_, std::ios::binary);
    out << "AST";
    out.close();
    BinTraceSource in(path_);
    ASSERT_TRUE(in.failed());
    MemRef r;
    EXPECT_FALSE(in.next(r));
}

class TruncatedBinTest : public BinIoTest
{
  protected:
    void
    truncateLastRecord()
    {
        VectorTraceSource src({{0x10, RefType::Read, 1},
                               {0x20, RefType::Write, 2}});
        writeBin(src, path_);
        // Chop 3 bytes off the last record.
        std::ifstream in(path_, std::ios::binary);
        std::string data((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
        in.close();
        std::ofstream out(path_,
                          std::ios::binary | std::ios::trunc);
        out.write(data.data(),
                  static_cast<std::streamsize>(data.size() - 3));
        out.close();
    }
};

TEST_F(TruncatedBinTest, DetectedAtOpenUnderFailFast)
{
    truncateLastRecord();
    // The header claims 2 records but the file only holds 1.5:
    // validated against the file size before any record streams.
    BinTraceSource bts(path_);
    ASSERT_TRUE(bts.failed());
    EXPECT_EQ(bts.error().code(), ErrorCode::Data);
    EXPECT_NE(bts.error().text().find("truncated"),
              std::string::npos)
        << bts.error().text();
    MemRef r;
    EXPECT_FALSE(bts.next(r));
}

TEST_F(TruncatedBinTest, ClampedToWholeRecordsUnderSkip)
{
    truncateLastRecord();
    ErrorPolicy policy;
    policy.mode = ErrorMode::Skip;
    BinTraceSource bts(path_, policy);
    EXPECT_FALSE(bts.failed());
    EXPECT_EQ(bts.claimedCount(), 2u);
    EXPECT_EQ(bts.count(), 1u);
    MemRef r;
    ASSERT_TRUE(bts.next(r));
    EXPECT_EQ(r.addr, 0x10u);
    EXPECT_FALSE(bts.next(r));
    EXPECT_EQ(bts.skippedRecords(), 1u);
}

TEST_F(TruncatedBinTest, HeaderErrorSurvivesReset)
{
    truncateLastRecord();
    BinTraceSource bts(path_);
    ASSERT_TRUE(bts.failed());
    bts.reset();
    ASSERT_TRUE(bts.failed()); // the file is still truncated
    MemRef r;
    EXPECT_FALSE(bts.next(r));
}

TEST_F(BinIoTest, StrictModeRejectsTrailingBytes)
{
    VectorTraceSource src({{0x10, RefType::Read, 1}});
    writeBin(src, path_);
    std::ofstream out(path_, std::ios::binary | std::ios::app);
    out << "xx";
    out.close();

    BinTraceSource lax(path_); // fail-fast ignores trailing bytes
    EXPECT_FALSE(lax.failed());

    ErrorPolicy policy;
    policy.mode = ErrorMode::Strict;
    BinTraceSource strict(path_, policy);
    ASSERT_TRUE(strict.failed());
    EXPECT_EQ(strict.error().code(), ErrorCode::Data);
}

TEST_F(BinIoTest, BadTypeByteIsSkippableByPolicy)
{
    VectorTraceSource src({{0x10, RefType::Read, 1},
                           {0x20, RefType::Write, 2},
                           {0x30, RefType::Ifetch, 3}});
    writeBin(src, path_);
    // Corrupt the middle record's type byte (offset 16 + 6 + 4).
    std::fstream f(path_, std::ios::in | std::ios::out |
                              std::ios::binary);
    f.seekp(16 + 6 + 4);
    char bad = 0x7f;
    f.write(&bad, 1);
    f.close();

    BinTraceSource failfast(path_);
    MemRef r;
    ASSERT_TRUE(failfast.next(r));
    EXPECT_FALSE(failfast.next(r)); // stops at the bad record
    ASSERT_TRUE(failfast.failed());
    EXPECT_EQ(failfast.error().code(), ErrorCode::Data);

    ErrorPolicy policy;
    policy.mode = ErrorMode::Skip;
    BinTraceSource skip(path_, policy);
    ASSERT_TRUE(skip.next(r));
    EXPECT_EQ(r.addr, 0x10u);
    ASSERT_TRUE(skip.next(r)); // bad record dropped
    EXPECT_EQ(r.addr, 0x30u);
    EXPECT_FALSE(skip.next(r));
    EXPECT_FALSE(skip.failed());
    EXPECT_EQ(skip.skippedRecords(), 1u);
}

TEST(BinIo, MissingFileIsAnIoError)
{
    BinTraceSource in("/nonexistent/trace.bin");
    ASSERT_TRUE(in.failed());
    EXPECT_EQ(in.error().code(), ErrorCode::Io);
    MemRef r;
    EXPECT_FALSE(in.next(r));
}

} // namespace
} // namespace trace
} // namespace assoc
