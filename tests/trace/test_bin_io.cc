#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "trace/bin_io.h"
#include "util/logging.h"

namespace assoc {
namespace trace {
namespace {

class BinIoTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        path_ = ::testing::TempDir() + "bin_io_test_" +
                std::to_string(::testing::UnitTest::GetInstance()
                                   ->random_seed()) +
                ".bin";
    }

    void TearDown() override { std::remove(path_.c_str()); }

    std::string path_;
};

TEST_F(BinIoTest, RoundTripPreservesEverything)
{
    VectorTraceSource src({{0xdeadbeef, RefType::Read, 1},
                           {0x00000000, RefType::Write, 0},
                           {0xffffffff, RefType::Ifetch, 255},
                           MemRef::flush(),
                           {0x1234, RefType::Read, 2}});
    std::uint64_t n = writeBin(src, path_);
    EXPECT_EQ(n, 5u);

    BinTraceSource in(path_);
    EXPECT_EQ(in.count(), 5u);
    MemRef r;
    for (const MemRef &expect : src.refs()) {
        ASSERT_TRUE(in.next(r));
        EXPECT_EQ(r, expect);
    }
    EXPECT_FALSE(in.next(r));
}

TEST_F(BinIoTest, EmptyTraceRoundTrips)
{
    VectorTraceSource src;
    EXPECT_EQ(writeBin(src, path_), 0u);
    BinTraceSource in(path_);
    EXPECT_EQ(in.count(), 0u);
    MemRef r;
    EXPECT_FALSE(in.next(r));
}

TEST_F(BinIoTest, ResetRereadsFromTheTop)
{
    VectorTraceSource src({{0x10, RefType::Read, 1},
                           {0x20, RefType::Write, 2}});
    writeBin(src, path_);
    BinTraceSource in(path_);
    MemRef a, b;
    ASSERT_TRUE(in.next(a));
    ASSERT_TRUE(in.next(b));
    in.reset();
    MemRef c;
    ASSERT_TRUE(in.next(c));
    EXPECT_EQ(a, c);
}

TEST_F(BinIoTest, BadMagicIsFatal)
{
    std::ofstream out(path_, std::ios::binary);
    out << "JUNKJUNKJUNKJUNK";
    out.close();
    EXPECT_THROW(BinTraceSource{path_}, FatalError);
}

TEST_F(BinIoTest, TruncatedHeaderIsFatal)
{
    std::ofstream out(path_, std::ios::binary);
    out << "AST";
    out.close();
    EXPECT_THROW(BinTraceSource{path_}, FatalError);
}

TEST_F(BinIoTest, TruncatedBodyIsFatal)
{
    VectorTraceSource src({{0x10, RefType::Read, 1},
                           {0x20, RefType::Write, 2}});
    writeBin(src, path_);
    // Chop off the last record.
    std::ifstream in(path_, std::ios::binary);
    std::string data((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    in.close();
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out.write(data.data(),
              static_cast<std::streamsize>(data.size() - 3));
    out.close();

    BinTraceSource bts(path_);
    MemRef r;
    ASSERT_TRUE(bts.next(r));
    EXPECT_THROW(bts.next(r), FatalError);
}

TEST(BinIo, MissingFileIsFatal)
{
    EXPECT_THROW(BinTraceSource("/nonexistent/trace.bin"), FatalError);
}

} // namespace
} // namespace trace
} // namespace assoc
