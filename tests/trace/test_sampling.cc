#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "mem/hierarchy.h"
#include "trace/atum_like.h"
#include "trace/ftr_reader.h"
#include "trace/ftr_writer.h"
#include "trace/sampling.h"
#include "trace/synthetic.h"
#include "util/cancel.h"
#include "util/logging.h"

namespace assoc {
namespace trace {
namespace {

TEST(WindowSampling, PassesOnWindowsDropsOffWindows)
{
    VectorTraceSource inner;
    for (Addr a = 0; a < 10; ++a)
        inner.push({a, RefType::Read, 0});
    WindowSampledSource sampled(inner, 2, 3);
    // Period 5: positions 0,1 pass; 2,3,4 drop.
    std::vector<Addr> got;
    MemRef r;
    while (sampled.next(r))
        got.push_back(r.addr);
    EXPECT_EQ(got, (std::vector<Addr>{0, 1, 5, 6}));
}

TEST(WindowSampling, FlushMarkersAlwaysPass)
{
    VectorTraceSource inner;
    inner.push({0, RefType::Read, 0});
    inner.push({1, RefType::Read, 0});
    inner.push(MemRef::flush());
    inner.push({2, RefType::Read, 0});
    inner.push({3, RefType::Read, 0});
    WindowSampledSource sampled(inner, 1, 1);
    std::vector<MemRef> got;
    MemRef r;
    while (sampled.next(r))
        got.push_back(r);
    // Positions: 0 pass, 1 drop, flush pass, 2 pass, 3 drop.
    ASSERT_EQ(got.size(), 3u);
    EXPECT_EQ(got[0].addr, 0u);
    EXPECT_TRUE(got[1].isFlush());
    EXPECT_EQ(got[2].addr, 2u);
}

TEST(WindowSampling, ZeroOnWindowIsFatal)
{
    VectorTraceSource inner;
    EXPECT_THROW(WindowSampledSource(inner, 0, 1), FatalError);
}

TEST(WindowSampling, ResetReplays)
{
    VectorTraceSource inner({{1, RefType::Read, 0},
                             {2, RefType::Read, 0}});
    WindowSampledSource sampled(inner, 1, 1);
    MemRef a, b;
    ASSERT_TRUE(sampled.next(a));
    sampled.reset();
    ASSERT_TRUE(sampled.next(b));
    EXPECT_EQ(a, b);
}

TEST(WindowSampling, MissRatioApproximatesFullTrace)
{
    // Time sampling keeps within-window locality: the L1 miss
    // ratio on a half-length sampled trace lands near the full
    // trace's (cold-start bias makes it slightly higher).
    AtumLikeConfig cfg;
    cfg.segments = 2;
    cfg.refs_per_segment = 100000;

    auto missRatio = [&](bool sample) {
        AtumLikeGenerator gen(cfg);
        WindowSampledSource sampled(gen, 10000, 10000);
        TraceSource &src =
            sample ? static_cast<TraceSource &>(sampled) : gen;
        mem::HierarchyConfig hcfg{mem::CacheGeometry(16384, 16, 1),
                                  mem::CacheGeometry(262144, 32, 4),
                                  true};
        mem::TwoLevelHierarchy h(hcfg);
        h.run(src);
        return h.stats().l1MissRatio();
    };
    double full = missRatio(false);
    double sampled = missRatio(true);
    EXPECT_NEAR(sampled, full, 0.25 * full + 0.01);
}

TEST(SetSampling, KeepsOnlyChosenSets)
{
    mem::CacheGeometry geom(1024, 16, 1); // 64 sets
    SequentialScan scan(0, 16, 1024);
    SetSampledSource sampled(scan, geom.blockBytes(),
                             geom.sets(), 8, 4); // sets 8..11
    MemRef r;
    std::uint64_t n = 0;
    while (sampled.next(r)) {
        std::uint32_t set = geom.setOf(geom.blockAddrOf(r.addr));
        EXPECT_GE(set, 8u);
        EXPECT_LT(set, 12u);
        ++n;
    }
    // 4 of 64 sets of a uniform sweep: exactly 1/16 survives.
    EXPECT_EQ(n, 1024u / 16);
    EXPECT_EQ(sampled.consumed(), 1024u);
}

TEST(SetSampling, RangeValidation)
{
    mem::CacheGeometry geom(1024, 16, 1); // 64 sets
    VectorTraceSource inner;
    EXPECT_THROW(SetSampledSource(inner, 16, 64, 0, 0), FatalError);
    EXPECT_THROW(SetSampledSource(inner, 16, 64, 64, 1), FatalError);
    EXPECT_THROW(SetSampledSource(inner, 16, 64, 60, 8), FatalError);
    EXPECT_THROW(SetSampledSource(inner, 24, 64, 0, 1), FatalError);
    EXPECT_THROW(SetSampledSource(inner, 16, 63, 0, 1), FatalError);
}

TEST(SetSampling, MissRatioNearlyUnbiased)
{
    // Per-set behaviour is exact, so the local miss ratio measured
    // on a quarter of the sets approximates the full ratio.
    AtumLikeConfig cfg;
    cfg.segments = 2;
    cfg.refs_per_segment = 100000;
    mem::CacheGeometry l1(16384, 16, 1);

    auto l1Miss = [&](bool sample) {
        AtumLikeGenerator gen(cfg);
        SetSampledSource sampled(gen, l1.blockBytes(), l1.sets(),
                                 0, l1.sets() / 4);
        TraceSource &src =
            sample ? static_cast<TraceSource &>(sampled) : gen;
        mem::HierarchyConfig hcfg{l1,
                                  mem::CacheGeometry(262144, 32, 4),
                                  true};
        mem::TwoLevelHierarchy h(hcfg);
        h.run(src);
        return h.stats().l1MissRatio();
    };
    double full = l1Miss(false);
    double sampled = l1Miss(true);
    EXPECT_NEAR(sampled, full, 0.2 * full + 0.01);
}

TEST(SamplingFactories, BadGeometryIsAStructuredUsageError)
{
    // The make() factories return the same validation the throwing
    // constructors enforce, as an Expected a sweep job can report
    // as a failed JobResult instead of aborting the process.
    VectorTraceSource inner;
    Expected<WindowSampledSource> w =
        WindowSampledSource::make(inner, 0, 1);
    ASSERT_FALSE(w.ok());
    EXPECT_EQ(w.error().code(), ErrorCode::Usage);

    Expected<SetSampledSource> s =
        SetSampledSource::make(inner, 16, 64, 60, 8);
    ASSERT_FALSE(s.ok());
    EXPECT_EQ(s.error().code(), ErrorCode::Usage);

    EXPECT_EQ(WindowSampledSource::validate(0, 1).code(),
              ErrorCode::Usage);
    EXPECT_TRUE(WindowSampledSource::validate(1, 1).ok());
    EXPECT_EQ(SetSampledSource::validate(24, 64, 0, 1).code(),
              ErrorCode::Usage);
    EXPECT_TRUE(SetSampledSource::validate(16, 64, 0, 16).ok());
}

TEST(SamplingFactories, GoodGeometryYieldsAWorkingSource)
{
    VectorTraceSource inner({{0x00, RefType::Read, 0},
                             {0x10, RefType::Read, 0},
                             {0x20, RefType::Read, 0}});
    Expected<WindowSampledSource> w =
        WindowSampledSource::make(inner, 1, 1);
    ASSERT_TRUE(w.ok());
    WindowSampledSource src = w.take();
    MemRef r;
    ASSERT_TRUE(src.next(r));
    EXPECT_EQ(r.addr, 0x00u);
    ASSERT_TRUE(src.next(r));
    EXPECT_EQ(r.addr, 0x20u);
}

// -----------------------------------------------------------------
// Wrapper transparency over a real file-backed source: a sampled
// view of a damaged ftr trace must report the reader's structured
// error, its exact skip accounting, and honor attachments made on
// the wrapper (docs/TRACES.md, "Transparent wrappers").
// -----------------------------------------------------------------

class SampledFtrTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        path_ = ::testing::TempDir() + "sampling_ftr_" +
                ::testing::UnitTest::GetInstance()
                    ->current_test_info()
                    ->name() +
                ".ftr";
    }

    void TearDown() override { std::remove(path_.c_str()); }

    /** Write @p n sequential records in frames of @p frame_records. */
    void
    writeTrace(std::size_t n, std::uint32_t frame_records)
    {
        VectorTraceSource src;
        for (std::size_t i = 0; i < n; ++i)
            src.push({static_cast<Addr>(i * 32), RefType::Read, 0});
        FtrWriter::Options opt;
        opt.frame_records = frame_records;
        Expected<std::uint64_t> w = writeFtr(src, path_, opt);
        ASSERT_TRUE(w.ok()) << w.error().text();
    }

    /** Flip one byte in the middle of the frame data. */
    void
    corruptMidFile()
    {
        std::fstream f(path_, std::ios::in | std::ios::out |
                                  std::ios::binary);
        ASSERT_TRUE(f.is_open());
        f.seekg(0, std::ios::end);
        std::streampos size = f.tellg();
        std::streampos at = size / 2;
        f.seekg(at);
        char b = 0;
        f.read(&b, 1);
        b = static_cast<char>(b ^ 0xff);
        f.seekp(at);
        f.write(&b, 1);
    }

    std::string path_;
};

TEST_F(SampledFtrTest, InnerFailurePropagatesThroughEveryWrapper)
{
    // A FailFast reader over a corrupt file stops with a Data
    // error; each wrapper must surface it, so throwIfFailed throws
    // the inner structured error instead of treating the stop as a
    // clean end-of-trace.
    writeTrace(4096, 256);
    corruptMidFile();
    ErrorPolicy policy; // FailFast

    {
        FtrTraceSource inner(path_, policy);
        WindowSampledSource wrapped(inner, 1, 1);
        MemRef r;
        while (wrapped.next(r)) {
        }
        ASSERT_TRUE(wrapped.failed());
        EXPECT_EQ(wrapped.error().code(), ErrorCode::Data);
        EXPECT_EQ(wrapped.error().message(),
                  inner.error().message());
        EXPECT_THROW(throwIfFailed(wrapped), ErrorException);
    }
    {
        FtrTraceSource inner(path_, policy);
        SetSampledSource wrapped(inner, 32, 8, 0, 8);
        MemRef r;
        while (wrapped.next(r)) {
        }
        ASSERT_TRUE(wrapped.failed());
        EXPECT_EQ(wrapped.error().code(), ErrorCode::Data);
        EXPECT_THROW(throwIfFailed(wrapped), ErrorException);
    }
    {
        FtrTraceSource inner(path_, policy);
        LimitedTraceSource wrapped(inner, 1u << 20);
        MemRef r;
        while (wrapped.next(r)) {
        }
        ASSERT_TRUE(wrapped.failed());
        EXPECT_EQ(wrapped.error().code(), ErrorCode::Data);
        EXPECT_THROW(throwIfFailed(wrapped), ErrorException);
    }
}

TEST_F(SampledFtrTest, SkipAccountingIsRecordExactThroughWrappers)
{
    // Skip mode loses exactly the one damaged frame; the wrapper
    // reports the same record-exact number the reader does.
    writeTrace(4096, 256);
    corruptMidFile();
    ErrorPolicy policy;
    policy.mode = ErrorMode::Skip;

    FtrTraceSource inner(path_, policy);
    WindowSampledSource wrapped(inner, 1, 0); // pass-through
    MemRef r;
    std::uint64_t delivered = 0;
    while (wrapped.next(r))
        ++delivered;
    EXPECT_FALSE(wrapped.failed());
    EXPECT_EQ(wrapped.skippedRecords(), 256u);
    EXPECT_EQ(wrapped.skippedRecords(), inner.skippedRecords());
    EXPECT_EQ(delivered, 4096u - 256u);
}

TEST_F(SampledFtrTest, CancelTokenAttachedToWrapperReachesReader)
{
    // setCancelToken on the wrapper must reach the reader that
    // actually polls it: a cancelled sampled run stops mid-stream
    // with the reader's structured Cancelled error.
    writeTrace(8192, 64);
    FtrTraceSource inner(path_);
    SetSampledSource wrapped(inner, 32, 8, 0, 8);
    CancelToken token;
    wrapped.setCancelToken(&token);
    token.cancel();

    MemRef r;
    std::uint64_t delivered = 0;
    while (wrapped.next(r))
        ++delivered;
    ASSERT_TRUE(wrapped.failed());
    EXPECT_EQ(wrapped.error().code(), ErrorCode::Cancelled);
    EXPECT_LT(delivered, 8192u);
}

TEST_F(SampledFtrTest, NextBatchMatchesNextThroughSampling)
{
    // The nextBatch contract (identical stream to repeated next())
    // must survive wrapping: batched pulls through a sampled view
    // of a file reader see the byte-identical sampled stream.
    writeTrace(1000, 128);

    std::vector<MemRef> one_by_one;
    {
        FtrTraceSource inner(path_);
        WindowSampledSource wrapped(inner, 3, 2);
        MemRef r;
        while (wrapped.next(r))
            one_by_one.push_back(r);
    }
    std::vector<MemRef> batched;
    {
        FtrTraceSource inner(path_);
        WindowSampledSource wrapped(inner, 3, 2);
        MemRef buf[7];
        std::size_t n;
        while ((n = wrapped.nextBatch(buf, 7)) > 0)
            batched.insert(batched.end(), buf, buf + n);
    }
    ASSERT_EQ(one_by_one.size(), batched.size());
    EXPECT_TRUE(std::equal(one_by_one.begin(), one_by_one.end(),
                           batched.begin()));
    EXPECT_EQ(one_by_one.size(), 600u); // 3 of every 5
}

TEST(SetSampling, FlushMarkersPass)
{
    mem::CacheGeometry geom(1024, 16, 1);
    VectorTraceSource inner;
    inner.push(MemRef::flush());
    SetSampledSource sampled(inner, geom.blockBytes(),
                             geom.sets(), 0, 1);
    MemRef r;
    ASSERT_TRUE(sampled.next(r));
    EXPECT_TRUE(r.isFlush());
}

} // namespace
} // namespace trace
} // namespace assoc
