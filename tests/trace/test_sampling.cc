#include <gtest/gtest.h>

#include "mem/hierarchy.h"
#include "trace/atum_like.h"
#include "trace/sampling.h"
#include "trace/synthetic.h"
#include "util/logging.h"

namespace assoc {
namespace trace {
namespace {

TEST(WindowSampling, PassesOnWindowsDropsOffWindows)
{
    VectorTraceSource inner;
    for (Addr a = 0; a < 10; ++a)
        inner.push({a, RefType::Read, 0});
    WindowSampledSource sampled(inner, 2, 3);
    // Period 5: positions 0,1 pass; 2,3,4 drop.
    std::vector<Addr> got;
    MemRef r;
    while (sampled.next(r))
        got.push_back(r.addr);
    EXPECT_EQ(got, (std::vector<Addr>{0, 1, 5, 6}));
}

TEST(WindowSampling, FlushMarkersAlwaysPass)
{
    VectorTraceSource inner;
    inner.push({0, RefType::Read, 0});
    inner.push({1, RefType::Read, 0});
    inner.push(MemRef::flush());
    inner.push({2, RefType::Read, 0});
    inner.push({3, RefType::Read, 0});
    WindowSampledSource sampled(inner, 1, 1);
    std::vector<MemRef> got;
    MemRef r;
    while (sampled.next(r))
        got.push_back(r);
    // Positions: 0 pass, 1 drop, flush pass, 2 pass, 3 drop.
    ASSERT_EQ(got.size(), 3u);
    EXPECT_EQ(got[0].addr, 0u);
    EXPECT_TRUE(got[1].isFlush());
    EXPECT_EQ(got[2].addr, 2u);
}

TEST(WindowSampling, ZeroOnWindowIsFatal)
{
    VectorTraceSource inner;
    EXPECT_THROW(WindowSampledSource(inner, 0, 1), FatalError);
}

TEST(WindowSampling, ResetReplays)
{
    VectorTraceSource inner({{1, RefType::Read, 0},
                             {2, RefType::Read, 0}});
    WindowSampledSource sampled(inner, 1, 1);
    MemRef a, b;
    ASSERT_TRUE(sampled.next(a));
    sampled.reset();
    ASSERT_TRUE(sampled.next(b));
    EXPECT_EQ(a, b);
}

TEST(WindowSampling, MissRatioApproximatesFullTrace)
{
    // Time sampling keeps within-window locality: the L1 miss
    // ratio on a half-length sampled trace lands near the full
    // trace's (cold-start bias makes it slightly higher).
    AtumLikeConfig cfg;
    cfg.segments = 2;
    cfg.refs_per_segment = 100000;

    auto missRatio = [&](bool sample) {
        AtumLikeGenerator gen(cfg);
        WindowSampledSource sampled(gen, 10000, 10000);
        TraceSource &src =
            sample ? static_cast<TraceSource &>(sampled) : gen;
        mem::HierarchyConfig hcfg{mem::CacheGeometry(16384, 16, 1),
                                  mem::CacheGeometry(262144, 32, 4),
                                  true};
        mem::TwoLevelHierarchy h(hcfg);
        h.run(src);
        return h.stats().l1MissRatio();
    };
    double full = missRatio(false);
    double sampled = missRatio(true);
    EXPECT_NEAR(sampled, full, 0.25 * full + 0.01);
}

TEST(SetSampling, KeepsOnlyChosenSets)
{
    mem::CacheGeometry geom(1024, 16, 1); // 64 sets
    SequentialScan scan(0, 16, 1024);
    SetSampledSource sampled(scan, geom.blockBytes(),
                             geom.sets(), 8, 4); // sets 8..11
    MemRef r;
    std::uint64_t n = 0;
    while (sampled.next(r)) {
        std::uint32_t set = geom.setOf(geom.blockAddrOf(r.addr));
        EXPECT_GE(set, 8u);
        EXPECT_LT(set, 12u);
        ++n;
    }
    // 4 of 64 sets of a uniform sweep: exactly 1/16 survives.
    EXPECT_EQ(n, 1024u / 16);
    EXPECT_EQ(sampled.consumed(), 1024u);
}

TEST(SetSampling, RangeValidation)
{
    mem::CacheGeometry geom(1024, 16, 1); // 64 sets
    VectorTraceSource inner;
    EXPECT_THROW(SetSampledSource(inner, 16, 64, 0, 0), FatalError);
    EXPECT_THROW(SetSampledSource(inner, 16, 64, 64, 1), FatalError);
    EXPECT_THROW(SetSampledSource(inner, 16, 64, 60, 8), FatalError);
    EXPECT_THROW(SetSampledSource(inner, 24, 64, 0, 1), FatalError);
    EXPECT_THROW(SetSampledSource(inner, 16, 63, 0, 1), FatalError);
}

TEST(SetSampling, MissRatioNearlyUnbiased)
{
    // Per-set behaviour is exact, so the local miss ratio measured
    // on a quarter of the sets approximates the full ratio.
    AtumLikeConfig cfg;
    cfg.segments = 2;
    cfg.refs_per_segment = 100000;
    mem::CacheGeometry l1(16384, 16, 1);

    auto l1Miss = [&](bool sample) {
        AtumLikeGenerator gen(cfg);
        SetSampledSource sampled(gen, l1.blockBytes(), l1.sets(),
                                 0, l1.sets() / 4);
        TraceSource &src =
            sample ? static_cast<TraceSource &>(sampled) : gen;
        mem::HierarchyConfig hcfg{l1,
                                  mem::CacheGeometry(262144, 32, 4),
                                  true};
        mem::TwoLevelHierarchy h(hcfg);
        h.run(src);
        return h.stats().l1MissRatio();
    };
    double full = l1Miss(false);
    double sampled = l1Miss(true);
    EXPECT_NEAR(sampled, full, 0.2 * full + 0.01);
}

TEST(SetSampling, FlushMarkersPass)
{
    mem::CacheGeometry geom(1024, 16, 1);
    VectorTraceSource inner;
    inner.push(MemRef::flush());
    SetSampledSource sampled(inner, geom.blockBytes(),
                             geom.sets(), 0, 1);
    MemRef r;
    ASSERT_TRUE(sampled.next(r));
    EXPECT_TRUE(r.isFlush());
}

} // namespace
} // namespace trace
} // namespace assoc
