/**
 * @file
 * Framed-trace (ftr) round-trip and recovery tests.
 *
 * The format's whole reason to exist is surviving damage, so beyond
 * the pack -> replay property tests (bit-identical streams across
 * frame sizes from 1 to 64Ki, prefetch on or off) this suite holds
 * the reader to its documented recovery contract for each corruption
 * shape: bit flips in frame headers and payloads resync with *exact*
 * skip accounting, torn-off footers rebuild the index by scan with
 * zero record loss, torn mid-frame tails deliver the exact prefix,
 * and hard IO errors are never mistaken for end-of-file no matter
 * the ErrorPolicy. Seeks, budgets, and cancellation ride the same
 * machinery and are pinned here too.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "trace/ftr_format.h"
#include "trace/ftr_reader.h"
#include "trace/ftr_writer.h"
#include "trace/trace_file.h"
#include "util/cancel.h"
#include "util/rng.h"

namespace assoc {
namespace trace {
namespace {

class FtrIoTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        // ctest runs every case as its own process, concurrently:
        // the path must be unique per test, not just per binary.
        path_ = ::testing::TempDir() + "ftr_io_" +
                ::testing::UnitTest::GetInstance()
                    ->current_test_info()
                    ->name() +
                ".ftr";
    }

    void TearDown() override { std::remove(path_.c_str()); }

    std::string path_;
};

/** Deterministic records with small deltas, jumps, and flushes —
 *  the mix the delta+varint payload coder actually sees. */
std::vector<MemRef>
makeRecords(std::size_t n, std::uint64_t seed)
{
    Pcg32 rng(seed);
    std::vector<MemRef> recs;
    recs.reserve(n);
    Addr addr = 0x1000;
    for (std::size_t i = 0; i < n; ++i) {
        switch (rng.below(8)) {
          case 0:
            addr = rng.next(); // far jump (large delta)
            break;
          case 1:
            addr -= rng.below(256); // negative delta
            break;
          default:
            addr += rng.below(64); // the common small stride
            break;
        }
        MemRef r;
        r.addr = addr;
        r.type = (rng.below(97) == 0)
                     ? RefType::Flush
                     : static_cast<RefType>(rng.below(3));
        r.pid = static_cast<std::uint8_t>(rng.below(5));
        recs.push_back(r);
    }
    return recs;
}

std::uint64_t
writeFile(const std::vector<MemRef> &recs, const std::string &path,
          std::uint32_t frame_records)
{
    VectorTraceSource src(recs);
    FtrWriter::Options opt;
    opt.frame_records = frame_records;
    Expected<std::uint64_t> n = writeFtr(src, path, opt);
    EXPECT_TRUE(n.ok()) << n.error().text();
    return n.ok() ? n.value() : 0;
}

std::vector<MemRef>
drain(TraceSource &src)
{
    std::vector<MemRef> got;
    MemRef r;
    while (src.next(r))
        got.push_back(r);
    return got;
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
}

void
rewrite(const std::string &path, const std::string &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size()));
}

void
flipByte(const std::string &path, std::uint64_t offset)
{
    std::string bytes = slurp(path);
    ASSERT_LT(offset, bytes.size());
    bytes[offset] = static_cast<char>(bytes[offset] ^ 0x40);
    rewrite(path, bytes);
}

void
truncateTo(const std::string &path, std::uint64_t size)
{
    std::string bytes = slurp(path);
    ASSERT_LE(size, bytes.size());
    bytes.resize(size);
    rewrite(path, bytes);
}

/** Tear off footer + trailer of a *finished* file: a damaged index
 *  whose header still carries the patched record total. The true
 *  crash-before-finish() shape also has a ZERO header total — see
 *  zeroHeaderTotal() and the CrashBeforeFinish tests. */
void
tearFooter(const std::string &path)
{
    std::string bytes = slurp(path);
    ASSERT_GE(bytes.size(), ftr::kTrailerBytes);
    const std::uint8_t *tr = reinterpret_cast<const std::uint8_t *>(
        bytes.data() + bytes.size() - ftr::kTrailerBytes);
    ASSERT_EQ(ftr::getU32(tr + 4), ftr::kTrailerMagic);
    std::uint64_t cut = ftr::getU32(tr) + ftr::kTrailerBytes;
    ASSERT_LT(cut, bytes.size());
    bytes.resize(bytes.size() - cut);
    rewrite(path, bytes);
}

/** Rewrite the header with total_records = 0, re-CRC'd — what the
 *  writer's open() wrote before any finish() could patch it. */
void
zeroHeaderTotal(const std::string &path)
{
    std::string bytes = slurp(path);
    ASSERT_GE(bytes.size(), ftr::kHeaderBytes);
    Expected<ftr::FileHeader> h = ftr::decodeFileHeader(
        reinterpret_cast<const std::uint8_t *>(bytes.data()),
        bytes.size());
    ASSERT_TRUE(h.ok()) << h.error().text();
    ftr::FileHeader zeroed = h.take();
    zeroed.total_records = 0;
    ftr::encodeFileHeader(
        reinterpret_cast<std::uint8_t *>(&bytes[0]), zeroed);
    rewrite(path, bytes);
}

ErrorPolicy
skipPolicy(std::uint64_t max_skips = 100)
{
    ErrorPolicy p;
    p.mode = ErrorMode::Skip;
    p.max_skips = max_skips;
    return p;
}

/** Frame boundaries of a pristine file, from its verified index. */
std::vector<ftr::IndexEntry>
indexOf(const std::string &path)
{
    FtrTraceSource src(path);
    EXPECT_FALSE(src.failed()) << src.error().text();
    return src.frameIndex();
}

TEST_F(FtrIoTest, RoundTripsAcrossFrameSizes)
{
    const std::vector<MemRef> recs = makeRecords(5000, 0xF7A01);
    for (std::uint32_t fr : {1u, 3u, 64u, 5000u, 65536u}) {
        ASSERT_EQ(writeFile(recs, path_, fr), recs.size());
        for (bool prefetch : {true, false}) {
            FtrOptions opt;
            opt.prefetch = prefetch;
            FtrTraceSource src(path_, ErrorPolicy(), opt);
            ASSERT_FALSE(src.failed()) << src.error().text();
            EXPECT_EQ(src.totalRecords(), recs.size());
            EXPECT_EQ(drain(src), recs)
                << "frame_records=" << fr
                << " prefetch=" << prefetch;
            EXPECT_FALSE(src.failed()) << src.error().text();
            EXPECT_EQ(src.skippedRecords(), 0u);
            EXPECT_EQ(src.damageEvents(), 0u);
            // reset() replays the identical stream.
            src.reset();
            EXPECT_EQ(drain(src), recs);
        }
    }
}

TEST_F(FtrIoTest, EmptyTraceRoundTrips)
{
    ASSERT_EQ(writeFile({}, path_, 64), 0u);
    FtrTraceSource src(path_);
    ASSERT_FALSE(src.failed()) << src.error().text();
    EXPECT_EQ(src.totalRecords(), 0u);
    MemRef r;
    EXPECT_FALSE(src.next(r));
    EXPECT_FALSE(src.failed());
}

TEST_F(FtrIoTest, PartialLastFrameAndIndexShape)
{
    const std::vector<MemRef> recs = makeRecords(1000, 0xF7A02);
    ASSERT_EQ(writeFile(recs, path_, 64), recs.size());
    FtrTraceSource src(path_);
    ASSERT_FALSE(src.failed());
    // 15 full frames of 64 plus a 40-record tail.
    ASSERT_EQ(src.frameIndex().size(), 16u);
    for (std::size_t i = 0; i < src.frameIndex().size(); ++i)
        EXPECT_EQ(src.frameIndex()[i].start_index, i * 64);
    EXPECT_EQ(src.frameRecords(), 64u);
    EXPECT_EQ(drain(src), recs);
}

TEST_F(FtrIoTest, NextBatchMatchesNext)
{
    const std::vector<MemRef> recs = makeRecords(3000, 0xF7A03);
    ASSERT_EQ(writeFile(recs, path_, 256), recs.size());
    FtrTraceSource src(path_);
    std::vector<MemRef> got;
    MemRef buf[97]; // deliberately straddles frame boundaries
    for (;;) {
        std::size_t n = src.nextBatch(buf, 97);
        got.insert(got.end(), buf, buf + n);
        if (n < 97)
            break;
    }
    EXPECT_FALSE(src.failed()) << src.error().text();
    EXPECT_EQ(got, recs);
}

TEST_F(FtrIoTest, RejectsDamagedFileHeaders)
{
    const std::vector<MemRef> recs = makeRecords(100, 0xF7A04);
    ASSERT_EQ(writeFile(recs, path_, 64), recs.size());
    const std::string clean = slurp(path_);

    // Every kind of header damage must fail even in Skip mode: the
    // header's record total is what makes skip accounting exact.
    for (std::uint64_t off : {0ull, 4ull, 8ull, 28ull}) {
        rewrite(path_, clean);
        flipByte(path_, off);
        FtrTraceSource src(path_, skipPolicy());
        EXPECT_TRUE(src.failed()) << "header flip at " << off;
        EXPECT_EQ(src.error().code(), ErrorCode::Data);
        MemRef r;
        EXPECT_FALSE(src.next(r));
    }
    // Too short to even hold a header.
    rewrite(path_, clean.substr(0, ftr::kHeaderBytes - 1));
    FtrTraceSource shorty(path_, skipPolicy());
    EXPECT_TRUE(shorty.failed());
    EXPECT_EQ(shorty.error().code(), ErrorCode::Data);
}

TEST_F(FtrIoTest, FailFastStopsOnACorruptFrame)
{
    const std::vector<MemRef> recs = makeRecords(1000, 0xF7A05);
    ASSERT_EQ(writeFile(recs, path_, 64), recs.size());
    std::vector<ftr::IndexEntry> index = indexOf(path_);
    ASSERT_GT(index.size(), 3u);
    // One bit into the middle frame's payload.
    flipByte(path_,
             index[index.size() / 2].offset + ftr::kFrameHeaderBytes +
                 2);

    for (ErrorMode mode : {ErrorMode::FailFast, ErrorMode::Strict}) {
        ErrorPolicy policy;
        policy.mode = mode;
        FtrTraceSource src(path_, policy);
        ASSERT_FALSE(src.failed()); // open is fine; the frame isn't
        std::vector<MemRef> got = drain(src);
        EXPECT_TRUE(src.failed())
            << "bit-flipped payload passed CRC validation";
        EXPECT_EQ(src.error().code(), ErrorCode::Data);
        EXPECT_LT(got.size(), recs.size());
        // Everything delivered before the stop is still pristine.
        for (std::size_t i = 0; i < got.size(); ++i)
            ASSERT_EQ(got[i], recs[i]) << i;
    }
}

TEST_F(FtrIoTest, SkipResyncsWithExactAccounting)
{
    const std::vector<MemRef> recs = makeRecords(1000, 0xF7A06);
    ASSERT_EQ(writeFile(recs, path_, 64), recs.size());
    std::vector<ftr::IndexEntry> index = indexOf(path_);
    ASSERT_GT(index.size(), 4u);
    const std::size_t victim = index.size() / 2;

    // Damage the payload, then separately the frame header: the
    // resync scan must recover identically from both.
    for (std::uint64_t within : {ftr::kFrameHeaderBytes + 3,
                                 std::size_t(6)}) {
        ASSERT_EQ(writeFile(recs, path_, 64), recs.size());
        flipByte(path_, index[victim].offset + within);
        for (bool prefetch : {true, false}) {
            FtrOptions opt;
            opt.prefetch = prefetch;
            FtrTraceSource src(path_, skipPolicy(), opt);
            ASSERT_FALSE(src.failed());
            std::vector<MemRef> got = drain(src);
            EXPECT_FALSE(src.failed()) << src.error().text();
            // Exactly the victim frame's 64 records are lost, as
            // ONE damage event, and the delivered stream is the
            // original minus that frame — nothing resequenced.
            EXPECT_EQ(src.skippedRecords(), 64u);
            EXPECT_EQ(src.damageEvents(), 1u);
            std::vector<MemRef> want(recs.begin(),
                                     recs.begin() +
                                         static_cast<long>(victim * 64));
            want.insert(want.end(),
                        recs.begin() +
                            static_cast<long>((victim + 1) * 64),
                        recs.end());
            EXPECT_EQ(got, want);
        }
    }
}

TEST_F(FtrIoTest, SkipCapBoundsDamageEventsNotRecords)
{
    const std::vector<MemRef> recs = makeRecords(1000, 0xF7A07);
    ASSERT_EQ(writeFile(recs, path_, 64), recs.size());
    std::vector<ftr::IndexEntry> index = indexOf(path_);
    ASSERT_GT(index.size(), 3u);
    flipByte(path_, index[1].offset + ftr::kFrameHeaderBytes + 1);

    // One damaged region = one event: a cap of 1 tolerates it even
    // though 64 records were lost...
    {
        FtrTraceSource src(path_, skipPolicy(1));
        drain(src);
        EXPECT_FALSE(src.failed()) << src.error().text();
        EXPECT_EQ(src.skippedRecords(), 64u);
    }
    // ...and a cap of 0 means any damage is fatal.
    {
        FtrTraceSource src(path_, skipPolicy(0));
        drain(src);
        EXPECT_TRUE(src.failed());
        EXPECT_EQ(src.error().code(), ErrorCode::Data);
    }
}

TEST_F(FtrIoTest, TornFooterRebuildsTheIndexWithNoRecordLoss)
{
    const std::vector<MemRef> recs = makeRecords(1000, 0xF7A08);
    ASSERT_EQ(writeFile(recs, path_, 64), recs.size());
    tearFooter(path_);

    // FailFast reports the missing index...
    {
        FtrTraceSource src(path_);
        EXPECT_TRUE(src.failed());
        EXPECT_EQ(src.error().code(), ErrorCode::Data);
    }
    // ...Skip rebuilds it by scanning frame headers; every record
    // is still there, bit-identical, and seekable.
    FtrTraceSource src(path_, skipPolicy());
    ASSERT_FALSE(src.failed()) << src.error().text();
    EXPECT_TRUE(src.indexRebuilt());
    EXPECT_EQ(src.frameIndex().size(), 16u);
    EXPECT_EQ(drain(src), recs);
    EXPECT_EQ(src.skippedRecords(), 0u);
    EXPECT_EQ(src.damageEvents(), 0u);
}

TEST_F(FtrIoTest, CrashBeforeFinishRecoversEveryFlushedFrame)
{
    const std::vector<MemRef> recs = makeRecords(640, 0xF7A11);
    {
        // A writer killed before finish(): 10 full frames flushed,
        // no footer, header total still the zero written at open.
        FtrWriter::Options opt;
        opt.frame_records = 64;
        FtrWriter w(path_, opt);
        for (const MemRef &r : recs)
            w.add(r);
        ASSERT_FALSE(w.error().failed()) << w.error().text();
    }
    // FailFast refuses the unfinished file...
    {
        FtrTraceSource src(path_);
        EXPECT_TRUE(src.failed());
        EXPECT_EQ(src.error().code(), ErrorCode::Data);
    }
    // ...Skip rebuilds the index and derives the record total from
    // the recovered frames: zero record loss, zero damage counted.
    FtrTraceSource src(path_, skipPolicy());
    ASSERT_FALSE(src.failed()) << src.error().text();
    EXPECT_TRUE(src.indexRebuilt());
    EXPECT_EQ(src.totalRecords(), recs.size());
    EXPECT_EQ(src.frameIndex().size(), 10u);
    EXPECT_EQ(drain(src), recs);
    EXPECT_FALSE(src.failed()) << src.error().text();
    EXPECT_EQ(src.skippedRecords(), 0u);
    EXPECT_EQ(src.damageEvents(), 0u);
    // Seeks work against the derived total too.
    ASSERT_TRUE(src.seekToRecord(600).ok());
    std::vector<MemRef> tail = drain(src);
    EXPECT_FALSE(src.failed()) << src.error().text();
    EXPECT_EQ(tail, std::vector<MemRef>(recs.begin() + 600,
                                        recs.end()));
}

TEST_F(FtrIoTest, CrashLosesOnlyTheUnflushedTail)
{
    // 650 records at 64/frame: 10 frames (640 records) hit the
    // disk; 10 died in the writer's buffer. Those never existed on
    // disk, so the derived total is 640 and nothing counts as
    // skipped — the reader cannot know about records that were
    // never written.
    const std::vector<MemRef> recs = makeRecords(650, 0xF7A12);
    {
        FtrWriter::Options opt;
        opt.frame_records = 64;
        FtrWriter w(path_, opt);
        for (const MemRef &r : recs)
            w.add(r);
    }
    FtrTraceSource src(path_, skipPolicy());
    ASSERT_FALSE(src.failed()) << src.error().text();
    EXPECT_EQ(src.totalRecords(), 640u);
    std::vector<MemRef> got = drain(src);
    EXPECT_FALSE(src.failed()) << src.error().text();
    EXPECT_EQ(got, std::vector<MemRef>(recs.begin(),
                                       recs.begin() + 640));
    EXPECT_EQ(src.skippedRecords(), 0u);
    EXPECT_EQ(src.damageEvents(), 0u);
}

TEST_F(FtrIoTest, CrashBeforeAnyFrameIsAnEmptyTrace)
{
    {
        FtrWriter w(path_); // killed before a single record
    }
    FtrTraceSource src(path_, skipPolicy());
    EXPECT_FALSE(src.failed()) << src.error().text();
    EXPECT_EQ(src.totalRecords(), 0u);
    MemRef r;
    EXPECT_FALSE(src.next(r));
    EXPECT_FALSE(src.failed());
    EXPECT_EQ(src.skippedRecords(), 0u);
}

TEST_F(FtrIoTest, CrashShapeStillResyncsAroundDamage)
{
    // The crash fixture built the other way (finished file, footer
    // torn, header total re-zeroed and re-CRC'd), plus a damaged
    // frame: derived-total accounting and resync must compose.
    const std::vector<MemRef> recs = makeRecords(1000, 0xF7A13);
    ASSERT_EQ(writeFile(recs, path_, 64), recs.size());
    std::vector<ftr::IndexEntry> index = indexOf(path_);
    ASSERT_EQ(index.size(), 16u);
    tearFooter(path_);
    zeroHeaderTotal(path_);
    const std::size_t victim = 4;
    flipByte(path_, index[victim].offset + ftr::kFrameHeaderBytes + 2);

    FtrTraceSource src(path_, skipPolicy());
    ASSERT_FALSE(src.failed()) << src.error().text();
    EXPECT_TRUE(src.indexRebuilt());
    // The damaged byte is in the payload, so the scan (which trusts
    // the CRC-valid frame *headers*) still sees all 16 frames and
    // derives the full total.
    EXPECT_EQ(src.totalRecords(), recs.size());
    std::vector<MemRef> got = drain(src);
    EXPECT_FALSE(src.failed()) << src.error().text();
    EXPECT_EQ(src.skippedRecords(), 64u);
    EXPECT_EQ(src.damageEvents(), 1u);
    std::vector<MemRef> want(recs.begin(),
                             recs.begin() +
                                 static_cast<long>(victim * 64));
    want.insert(want.end(),
                recs.begin() + static_cast<long>((victim + 1) * 64),
                recs.end());
    EXPECT_EQ(got, want);
}

TEST_F(FtrIoTest, TornTailDeliversTheExactPrefix)
{
    const std::vector<MemRef> recs = makeRecords(1000, 0xF7A09);
    ASSERT_EQ(writeFile(recs, path_, 64), recs.size());
    std::vector<ftr::IndexEntry> index = indexOf(path_);
    ASSERT_EQ(index.size(), 16u);
    // Cut into the 11th frame's payload: frames 0..9 survive.
    truncateTo(path_, index[10].offset + ftr::kFrameHeaderBytes + 7);

    {
        ErrorPolicy policy; // FailFast
        FtrTraceSource src(path_, policy);
        EXPECT_TRUE(src.failed()); // the footer went with the tail
    }
    FtrTraceSource src(path_, skipPolicy());
    ASSERT_FALSE(src.failed()) << src.error().text();
    EXPECT_TRUE(src.indexRebuilt());
    std::vector<MemRef> got = drain(src);
    EXPECT_FALSE(src.failed()) << src.error().text();
    ASSERT_EQ(got.size(), 640u);
    for (std::size_t i = 0; i < got.size(); ++i)
        ASSERT_EQ(got[i], recs[i]) << i;
    // The torn tail is one damage event; the loss is exact because
    // the CRC-verified header still says 1000 records existed.
    EXPECT_EQ(src.skippedRecords(), recs.size() - 640u);
    EXPECT_EQ(src.damageEvents(), 1u);
}

TEST_F(FtrIoTest, SeekToRecordLandsExactly)
{
    const std::vector<MemRef> recs = makeRecords(1000, 0xF7A0A);
    ASSERT_EQ(writeFile(recs, path_, 64), recs.size());
    FtrTraceSource src(path_);
    ASSERT_FALSE(src.failed());

    for (std::uint64_t target : {0ull, 1ull, 63ull, 64ull, 500ull,
                                 999ull}) {
        Expected<void> ok = src.seekToRecord(target);
        ASSERT_TRUE(ok.ok()) << ok.error().text();
        std::vector<MemRef> got = drain(src);
        ASSERT_FALSE(src.failed()) << src.error().text();
        std::vector<MemRef> want(recs.begin() +
                                     static_cast<long>(target),
                                 recs.end());
        EXPECT_EQ(got, want) << "seek to " << target;
    }
    // Seeking to the end is a valid empty stream, not an error.
    ASSERT_TRUE(src.seekToRecord(recs.size()).ok());
    MemRef r;
    EXPECT_FALSE(src.next(r));
    EXPECT_FALSE(src.failed());
}

TEST_F(FtrIoTest, SeekStepsOverDamagedRecords)
{
    const std::vector<MemRef> recs = makeRecords(1000, 0xF7A0B);
    ASSERT_EQ(writeFile(recs, path_, 64), recs.size());
    std::vector<ftr::IndexEntry> index = indexOf(path_);
    const std::size_t victim = 5;
    flipByte(path_, index[victim].offset + ftr::kFrameHeaderBytes + 4);

    FtrTraceSource src(path_, skipPolicy());
    ASSERT_FALSE(src.failed());
    // A target inside the damaged frame is unreachable; streaming
    // resumes at the first intact record after it.
    ASSERT_TRUE(src.seekToRecord(victim * 64 + 10).ok());
    std::vector<MemRef> got = drain(src);
    EXPECT_FALSE(src.failed()) << src.error().text();
    std::vector<MemRef> want(recs.begin() +
                                 static_cast<long>((victim + 1) * 64),
                             recs.end());
    EXPECT_EQ(got, want);
}

TEST_F(FtrIoTest, MemBudgetBoundsDecodedFrames)
{
    const std::vector<MemRef> recs = makeRecords(20000, 0xF7A0C);
    ASSERT_EQ(writeFile(recs, path_, 4096), recs.size());

    // A budget too small for even one decoded frame is a hard,
    // structured Budget failure — never an OOM, never skippable.
    for (bool prefetch : {true, false}) {
        FtrOptions opt;
        opt.prefetch = prefetch;
        FtrTraceSource src(path_, skipPolicy(), opt);
        MemBudget tiny(1024);
        src.setMemBudget(&tiny);
        std::vector<MemRef> got = drain(src);
        EXPECT_TRUE(src.failed());
        EXPECT_EQ(src.error().code(), ErrorCode::Budget);
        EXPECT_TRUE(got.empty());
    }
    // An adequate budget streams the whole trace within bounds.
    FtrTraceSource src(path_);
    MemBudget roomy(8ull << 20);
    src.setMemBudget(&roomy);
    EXPECT_EQ(drain(src).size(), recs.size());
    EXPECT_FALSE(src.failed()) << src.error().text();
}

TEST_F(FtrIoTest, CancellationStopsTheStream)
{
    const std::vector<MemRef> recs = makeRecords(20000, 0xF7A0D);
    ASSERT_EQ(writeFile(recs, path_, 512), recs.size());
    for (bool prefetch : {true, false}) {
        FtrOptions opt;
        opt.prefetch = prefetch;
        FtrTraceSource src(path_, ErrorPolicy(), opt);
        CancelToken token;
        token.cancel();
        src.setCancelToken(&token);
        std::vector<MemRef> got = drain(src);
        EXPECT_TRUE(src.failed());
        EXPECT_EQ(src.error().code(), ErrorCode::Cancelled);
        EXPECT_LT(got.size(), recs.size());
    }
}

TEST_F(FtrIoTest, HardIoErrorsAreNeverSkippable)
{
    const std::vector<MemRef> recs = makeRecords(2000, 0xF7A0E);
    ASSERT_EQ(writeFile(recs, path_, 64), recs.size());
    IoFaultPlan plan;
    plan.io_error_at = 100; // mid-file EIO, well before the footer
    std::unique_ptr<TraceSource> src =
        openTraceFileWithFaults(path_, skipPolicy(), plan);
    std::vector<MemRef> got;
    MemRef r;
    while (src->next(r))
        got.push_back(r);
    // Skip mode tolerates *data* damage; a failing device must
    // still surface as a hard error, never as silent truncation.
    EXPECT_TRUE(src->failed());
    EXPECT_EQ(src->error().code(), ErrorCode::Io);
}

TEST_F(FtrIoTest, OpenTraceFileSniffsFtrWithoutTheExtension)
{
    const std::vector<MemRef> recs = makeRecords(300, 0xF7A0F);
    const std::string noext = path_ + ".trace";
    ASSERT_EQ(writeFile(recs, noext, 64), recs.size());
    EXPECT_EQ(detectTraceFormat(noext), TraceFormat::Ftr);
    std::unique_ptr<TraceSource> src = openTraceFile(noext);
    std::vector<MemRef> got;
    MemRef r;
    while (src->next(r))
        got.push_back(r);
    EXPECT_FALSE(src->failed()) << src->error().text();
    EXPECT_EQ(got, recs);
    std::remove(noext.c_str());
}

TEST_F(FtrIoTest, WriterReportsUnwritablePaths)
{
    VectorTraceSource src(makeRecords(10, 0xF7A10));
    Expected<std::uint64_t> n =
        writeFtr(src, "/nonexistent-dir/out.ftr");
    EXPECT_FALSE(n.ok());
    EXPECT_EQ(n.error().code(), ErrorCode::Io);
}

} // namespace
} // namespace trace
} // namespace assoc
