#include <gtest/gtest.h>

#include "mem/cache.h"
#include "trace/synthetic.h"

namespace assoc {
namespace trace {
namespace {

TEST(SequentialScan, EmitsArithmeticSequence)
{
    SequentialScan scan(0x1000, 4, 5, RefType::Ifetch);
    MemRef r;
    for (unsigned i = 0; i < 5; ++i) {
        ASSERT_TRUE(scan.next(r));
        EXPECT_EQ(r.addr, 0x1000u + 4 * i);
        EXPECT_EQ(r.type, RefType::Ifetch);
    }
    EXPECT_FALSE(scan.next(r));
}

TEST(SequentialScan, EveryNewBlockMisses)
{
    mem::WriteBackCache cache(mem::CacheGeometry(1024, 16, 4));
    SequentialScan scan(0, 16, 256); // one ref per block
    MemRef r;
    std::uint64_t misses = 0;
    while (scan.next(r)) {
        mem::BlockAddr b = cache.geom().blockAddrOf(r.addr);
        if (cache.findWay(b) < 0) {
            ++misses;
            cache.fill(b, false);
        }
    }
    EXPECT_EQ(misses, 256u); // pure cold-miss stream
}

TEST(SequentialScan, ResetReplays)
{
    SequentialScan scan(0, 8, 3);
    MemRef a, b;
    ASSERT_TRUE(scan.next(a));
    scan.reset();
    ASSERT_TRUE(scan.next(b));
    EXPECT_EQ(a, b);
}

TEST(LoopTrace, AllHitsOnceWarmWhenItFits)
{
    // 8-block loop in a 16-frame fully-associative cache.
    mem::WriteBackCache cache(mem::CacheGeometry(256, 16, 16));
    LoopTrace loop(0, 16, 8, 80);
    MemRef r;
    std::uint64_t misses = 0;
    while (loop.next(r)) {
        mem::BlockAddr b = cache.geom().blockAddrOf(r.addr);
        int way = cache.findWay(b);
        if (way < 0) {
            ++misses;
            cache.fill(b, false);
        } else {
            cache.touch(cache.geom().setOf(b), way);
        }
    }
    EXPECT_EQ(misses, 8u); // only the first lap misses
}

TEST(LoopTrace, LruPathologyWhenOneBlockTooBig)
{
    // Classic LRU worst case: a cyclic sweep over a+1 blocks in an
    // a-frame LRU set misses on every reference.
    const unsigned a = 4;
    mem::WriteBackCache cache(mem::CacheGeometry(a * 16, 16, a));
    ASSERT_EQ(cache.geom().sets(), 1u);
    LoopTrace loop(0, 16, a + 1, 200);
    MemRef r;
    std::uint64_t misses = 0;
    while (loop.next(r)) {
        mem::BlockAddr b = cache.geom().blockAddrOf(r.addr);
        int way = cache.findWay(b);
        if (way < 0) {
            ++misses;
            cache.fill(b, false);
        } else {
            cache.touch(cache.geom().setOf(b), way);
        }
    }
    EXPECT_EQ(misses, 200u);
}

TEST(UniformRandomTrace, StaysInRegionAndIsDeterministic)
{
    UniformRandomTrace t1(0x4000, 32, 64, 1000, 7);
    UniformRandomTrace t2(0x4000, 32, 64, 1000, 7);
    MemRef a, b;
    while (t1.next(a)) {
        ASSERT_TRUE(t2.next(b));
        EXPECT_EQ(a, b);
        EXPECT_GE(a.addr, 0x4000u);
        EXPECT_LT(a.addr, 0x4000u + 64 * 32);
        EXPECT_EQ(a.addr % 32, 0u);
    }
}

TEST(UniformRandomTrace, WriteFractionHonored)
{
    UniformRandomTrace t(0, 16, 16, 20000, 3, 0.25);
    MemRef r;
    int writes = 0, n = 0;
    while (t.next(r)) {
        writes += r.isWrite();
        ++n;
    }
    EXPECT_NEAR(static_cast<double>(writes) / n, 0.25, 0.02);
}

TEST(UniformRandomTrace, SteadyStateLruHitRatioIsAOverN)
{
    // Uniform iid refs over N blocks through an a-frame LRU cache:
    // P(hit) = a/N once warm.
    const unsigned a = 8, n_blocks = 64;
    mem::WriteBackCache cache(mem::CacheGeometry(a * 16, 16, a));
    UniformRandomTrace t(0, 16, n_blocks, 120000, 11);
    MemRef r;
    std::uint64_t hits = 0, total = 0;
    while (t.next(r)) {
        mem::BlockAddr b = cache.geom().blockAddrOf(r.addr);
        int way = cache.findWay(b);
        ++total;
        if (way >= 0) {
            ++hits;
            cache.touch(cache.geom().setOf(b), way);
        } else {
            cache.fill(b, false);
        }
    }
    EXPECT_NEAR(static_cast<double>(hits) / total,
                static_cast<double>(a) / n_blocks, 0.01);
}

TEST(UniformRandomTrace, ResetReplaysTheSameStream)
{
    UniformRandomTrace t(0, 16, 32, 100, 5);
    std::vector<MemRef> first;
    MemRef r;
    while (t.next(r))
        first.push_back(r);
    t.reset();
    std::size_t i = 0;
    while (t.next(r))
        ASSERT_EQ(r, first[i++]);
    EXPECT_EQ(i, first.size());
}

TEST(StrideTrace, SweepsAndRepeats)
{
    StrideTrace t(0x100, 64, 4, 2);
    MemRef r;
    for (int pass = 0; pass < 2; ++pass) {
        for (unsigned i = 0; i < 4; ++i) {
            ASSERT_TRUE(t.next(r));
            EXPECT_EQ(r.addr, 0x100u + i * 64);
        }
    }
    EXPECT_FALSE(t.next(r));
}

TEST(StrideTrace, SetConflictStride)
{
    // Stride = sets * block bytes maps every reference to set 0.
    mem::CacheGeometry g(1024, 16, 4); // 16 sets
    std::uint32_t stride = g.sets() * g.blockBytes();
    StrideTrace t(0, stride, 8, 1);
    MemRef r;
    while (t.next(r))
        EXPECT_EQ(g.setOf(g.blockAddrOf(r.addr)), 0u);
}

TEST(Synthetic, RejectBadParameters)
{
    EXPECT_THROW(SequentialScan(0, 0, 1), FatalError);
    EXPECT_THROW(LoopTrace(0, 0, 1, 1), FatalError);
    EXPECT_THROW(LoopTrace(0, 16, 0, 1), FatalError);
    EXPECT_THROW(UniformRandomTrace(0, 16, 0, 1), FatalError);
    EXPECT_THROW(UniformRandomTrace(0, 16, 4, 1, 1, 1.5), FatalError);
    EXPECT_THROW(StrideTrace(0, 0, 1, 1), FatalError);
}

} // namespace
} // namespace trace
} // namespace assoc
