#include <gtest/gtest.h>

#include <vector>

#include "trace/process_model.h"
#include "util/logging.h"

namespace assoc {
namespace trace {
namespace {

ProcessModel
makeProc(std::uint8_t pid = 1, std::uint64_t seed = 42)
{
    return ProcessModel(pid, Addr{pid + 1u} << 26, ProcessParams{},
                        seed);
}

TEST(ProcessModel, DeterministicForSameSeed)
{
    ProcessModel a = makeProc(1, 7), b = makeProc(1, 7);
    for (int i = 0; i < 5000; ++i) {
        MemRef ra = a.nextRef(), rb = b.nextRef();
        ASSERT_EQ(ra, rb) << "diverged at ref " << i;
    }
}

TEST(ProcessModel, DifferentSeedsDiverge)
{
    ProcessModel a = makeProc(1, 1), b = makeProc(1, 2);
    int same = 0;
    for (int i = 0; i < 1000; ++i)
        same += a.nextRef() == b.nextRef();
    EXPECT_LT(same, 500);
}

TEST(ProcessModel, StampsItsPid)
{
    ProcessModel p = makeProc(5);
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(p.nextRef().pid, 5);
}

TEST(ProcessModel, AddressesStayInOwnSpace)
{
    const std::uint8_t pid = 3;
    ProcessModel p = makeProc(pid);
    for (int i = 0; i < 20000; ++i) {
        Addr a = p.nextRef().addr;
        EXPECT_EQ(a >> 26, static_cast<Addr>(pid + 1))
            << "address escaped the process space";
    }
}

TEST(ProcessModel, EmitsAllThreeReferenceKinds)
{
    ProcessModel p = makeProc();
    int reads = 0, writes = 0, ifetches = 0;
    for (int i = 0; i < 20000; ++i) {
        switch (p.nextRef().type) {
          case RefType::Read:
            ++reads;
            break;
          case RefType::Write:
            ++writes;
            break;
          case RefType::Ifetch:
            ++ifetches;
            break;
          default:
            FAIL() << "unexpected flush from a process";
        }
    }
    EXPECT_GT(reads, 0);
    EXPECT_GT(writes, 0);
    EXPECT_GT(ifetches, 0);
}

TEST(ProcessModel, IfetchFractionRoughlyHonored)
{
    ProcessParams params;
    params.ifetch_fraction = 0.5;
    ProcessModel p(1, Addr{2} << 26, params, 9);
    int n = 40000, ifetches = 0;
    for (int i = 0; i < n; ++i)
        ifetches += p.nextRef().isInstruction();
    EXPECT_NEAR(static_cast<double>(ifetches) / n, 0.5, 0.03);
}

TEST(ProcessModel, WriteFractionAppliesToDataRefs)
{
    ProcessParams params;
    params.ifetch_fraction = 0.0; // data only
    params.write_fraction = 0.4;
    ProcessModel p(1, Addr{2} << 26, params, 11);
    int n = 40000, writes = 0;
    for (int i = 0; i < n; ++i)
        writes += p.nextRef().isWrite();
    EXPECT_NEAR(static_cast<double>(writes) / n, 0.4, 0.03);
}

TEST(ProcessModel, FootprintGrowsWithNewBlockProb)
{
    ProcessParams grow;
    grow.ifetch_fraction = 0.0;
    grow.stack_fraction = 0.0;
    grow.new_block_prob = 0.2;
    ProcessParams stay = grow;
    stay.new_block_prob = 0.01;

    ProcessModel a(1, Addr{2} << 26, grow, 13);
    ProcessModel b(1, Addr{2} << 26, stay, 13);
    for (int i = 0; i < 20000; ++i) {
        a.nextRef();
        b.nextRef();
    }
    EXPECT_GT(a.heapFootprintBlocks(), 2 * b.heapFootprintBlocks());
}

TEST(ProcessModel, ExhibitsTemporalLocality)
{
    // A large fraction of heap references should be re-references
    // of a small recent working set.
    ProcessParams params;
    params.ifetch_fraction = 0.0;
    params.stack_fraction = 0.0;
    ProcessModel p(1, Addr{2} << 26, params, 17);

    const unsigned blk = params.heap_block_bytes;
    std::vector<Addr> recent;
    int hits = 0, n = 20000;
    for (int i = 0; i < n; ++i) {
        Addr a = p.nextRef().addr / blk;
        bool found = false;
        for (Addr r : recent)
            if (r == a) {
                found = true;
                break;
            }
        hits += found;
        recent.insert(recent.begin(), a);
        if (recent.size() > 16)
            recent.pop_back();
    }
    // With geometric short-range reuse, well over a third of
    // references should land in the 16 most recent blocks.
    EXPECT_GT(static_cast<double>(hits) / n, 0.35);
}

TEST(ProcessModel, InstructionStreamIsSequentialish)
{
    ProcessParams params;
    params.ifetch_fraction = 1.0;
    ProcessModel p(1, Addr{2} << 26, params, 19);
    Addr prev = p.nextRef().addr;
    int sequential = 0, n = 20000;
    for (int i = 0; i < n; ++i) {
        Addr cur = p.nextRef().addr;
        sequential += (cur == prev + 4);
        prev = cur;
    }
    // Most fetches advance linearly (jump_prob is small).
    EXPECT_GT(static_cast<double>(sequential) / n, 0.6);
}

TEST(ProcessModel, RejectsBadParams)
{
    ProcessParams params;
    params.functions = 0;
    EXPECT_THROW(ProcessModel(1, 0, params, 1), FatalError);
    ProcessParams params2;
    params2.heap_block_bytes = 48; // not a power of two
    EXPECT_THROW(ProcessModel(1, 0, params2, 1), FatalError);
}

} // namespace
} // namespace trace
} // namespace assoc
