/**
 * @file
 * Corrupted-trace corpus: every checked-in bad file under
 * tests/trace/corpus/ is streamed under all three ErrorPolicies.
 * Whatever the damage — bad magic, torn header, truncated body,
 * junk lines — a reader must terminate, never throw, and either
 * deliver a bounded stream or report a structured Data/Io error
 * with non-empty text.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include "trace/bin_io.h"
#include "trace/din_io.h"

#ifndef ASSOC_CORPUS_DIR
#error "build must define ASSOC_CORPUS_DIR"
#endif

namespace assoc {
namespace trace {
namespace {

namespace fs = std::filesystem;

std::vector<std::string>
corpusFiles(const std::string &ext)
{
    std::vector<std::string> files;
    for (const auto &entry : fs::directory_iterator(ASSOC_CORPUS_DIR))
        if (entry.path().extension() == ext)
            files.push_back(entry.path().string());
    std::sort(files.begin(), files.end());
    return files;
}

/** Stream @p src to the end, bounded; returns records delivered. */
std::uint64_t
drain(TraceSource &src)
{
    constexpr std::uint64_t kBound = 100000;
    MemRef r;
    std::uint64_t n = 0;
    while (n <= kBound && src.next(r))
        ++n;
    EXPECT_LE(n, kBound) << "runaway reader";
    return n;
}

void
checkContract(const TraceSource &src, const std::string &file,
              ErrorMode mode)
{
    if (src.failed()) {
        EXPECT_TRUE(src.error().code() == ErrorCode::Data ||
                    src.error().code() == ErrorCode::Io)
            << file << ": " << src.error().text();
        EXPECT_FALSE(src.error().text().empty()) << file;
    } else if (mode == ErrorMode::Skip) {
        EXPECT_LE(src.skippedRecords(), ErrorPolicy().max_skips)
            << file;
    }
    if (mode == ErrorMode::FailFast)
        EXPECT_EQ(src.skippedRecords(), 0u) << file;
}

class CorpusTest : public ::testing::TestWithParam<ErrorMode>
{};

TEST_P(CorpusTest, DinFilesNeverCrashTheReader)
{
    std::vector<std::string> files = corpusFiles(".din");
    ASSERT_FALSE(files.empty());
    ErrorPolicy policy;
    policy.mode = GetParam();
    for (const std::string &file : files) {
        DinTraceSource src(file, policy);
        drain(src);
        checkContract(src, file, policy.mode);
    }
}

TEST_P(CorpusTest, BinFilesNeverCrashTheReader)
{
    std::vector<std::string> files = corpusFiles(".bin");
    ASSERT_FALSE(files.empty());
    ErrorPolicy policy;
    policy.mode = GetParam();
    for (const std::string &file : files) {
        BinTraceSource src(file, policy);
        drain(src);
        checkContract(src, file, policy.mode);
    }
}

TEST_P(CorpusTest, FailFastAndStrictRejectEveryCorpusFile)
{
    // Every corpus entry is damaged in a way FailFast detects —
    // except the strict_-prefixed ones, whose damage only Strict
    // rejects. Skip mode is allowed to recover from anything.
    if (GetParam() == ErrorMode::Skip)
        GTEST_SKIP() << "skip mode is allowed to recover";
    auto strictOnly = [](const std::string &file) {
        return fs::path(file).filename().string().rfind(
                   "strict_", 0) == 0;
    };
    ErrorPolicy policy;
    policy.mode = GetParam();
    for (const std::string &file : corpusFiles(".din")) {
        if (policy.mode == ErrorMode::FailFast && strictOnly(file))
            continue;
        DinTraceSource src(file, policy);
        drain(src);
        EXPECT_TRUE(src.failed()) << file;
    }
    for (const std::string &file : corpusFiles(".bin")) {
        if (policy.mode == ErrorMode::FailFast && strictOnly(file))
            continue;
        BinTraceSource src(file, policy);
        drain(src);
        EXPECT_TRUE(src.failed()) << file;
    }
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, CorpusTest,
                         ::testing::Values(ErrorMode::FailFast,
                                           ErrorMode::Skip,
                                           ErrorMode::Strict),
                         [](const auto &info) {
                             switch (info.param) {
                               case ErrorMode::FailFast:
                                 return "FailFast";
                               case ErrorMode::Skip:
                                 return "Skip";
                               case ErrorMode::Strict:
                                 return "Strict";
                             }
                             return "Unknown";
                         });

} // namespace
} // namespace trace
} // namespace assoc
