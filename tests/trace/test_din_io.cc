#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "trace/din_io.h"
#include "util/logging.h"

namespace assoc {
namespace trace {
namespace {

class DinIoTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        path_ = ::testing::TempDir() + "din_io_test_" +
                std::to_string(::testing::UnitTest::GetInstance()
                                   ->random_seed()) +
                ".din";
    }

    void TearDown() override { std::remove(path_.c_str()); }

    std::string path_;
};

TEST_F(DinIoTest, RoundTripPreservesEverything)
{
    VectorTraceSource src({{0xdeadbeef, RefType::Read, 1},
                           {0x00000000, RefType::Write, 0},
                           {0xffffffff, RefType::Ifetch, 7},
                           MemRef::flush(),
                           {0x1234, RefType::Read, 2}});
    writeDin(src, path_);

    DinTraceSource in(path_);
    MemRef r;
    for (const MemRef &expect : src.refs()) {
        ASSERT_TRUE(in.next(r));
        EXPECT_EQ(r, expect);
    }
    EXPECT_FALSE(in.next(r));
}

TEST_F(DinIoTest, ResetRereadsFromTheTop)
{
    VectorTraceSource src({{0x10, RefType::Read, 1},
                           {0x20, RefType::Write, 2}});
    writeDin(src, path_);
    DinTraceSource in(path_);
    MemRef a, b;
    ASSERT_TRUE(in.next(a));
    in.reset();
    ASSERT_TRUE(in.next(b));
    EXPECT_EQ(a, b);
}

TEST_F(DinIoTest, CommentsAndBlankLinesSkipped)
{
    std::ofstream out(path_);
    out << "# comment\n\n0 100\n# another\n1 200 3\n";
    out.close();
    DinTraceSource in(path_);
    MemRef r;
    ASSERT_TRUE(in.next(r));
    EXPECT_EQ(r.addr, 0x100u);
    EXPECT_EQ(r.type, RefType::Read);
    EXPECT_EQ(r.pid, 0);
    ASSERT_TRUE(in.next(r));
    EXPECT_EQ(r.addr, 0x200u);
    EXPECT_EQ(r.type, RefType::Write);
    EXPECT_EQ(r.pid, 3);
    EXPECT_FALSE(in.next(r));
}

TEST_F(DinIoTest, PidColumnIsOptional)
{
    std::ofstream out(path_);
    out << "2 abc\n";
    out.close();
    DinTraceSource in(path_);
    MemRef r;
    ASSERT_TRUE(in.next(r));
    EXPECT_EQ(r.addr, 0xabcu);
    EXPECT_EQ(r.type, RefType::Ifetch);
    EXPECT_EQ(r.pid, 0);
}

TEST_F(DinIoTest, UnknownLabelStopsTheStreamWithAnError)
{
    std::ofstream out(path_);
    out << "0 100 1\n9 200\n";
    out.close();
    DinTraceSource in(path_);
    MemRef r;
    ASSERT_TRUE(in.next(r)); // the good line before the bad one
    EXPECT_FALSE(in.next(r));
    ASSERT_TRUE(in.failed());
    EXPECT_EQ(in.error().code(), ErrorCode::Data);
    // The report carries file:line and the offending text.
    EXPECT_NE(in.error().text().find(":2:"), std::string::npos)
        << in.error().text();
    EXPECT_NE(in.error().text().find("9 200"), std::string::npos)
        << in.error().text();
}

TEST_F(DinIoTest, UnknownLabelIsSkippableByPolicy)
{
    std::ofstream out(path_);
    out << "0 100 1\n9 200\n1 300 2\n";
    out.close();
    ErrorPolicy policy;
    policy.mode = ErrorMode::Skip;
    DinTraceSource in(path_, policy);
    MemRef r;
    ASSERT_TRUE(in.next(r));
    EXPECT_EQ(r.addr, 0x100u);
    ASSERT_TRUE(in.next(r)); // bad line skipped, stream continues
    EXPECT_EQ(r.addr, 0x300u);
    EXPECT_FALSE(in.next(r));
    EXPECT_FALSE(in.failed());
    EXPECT_EQ(in.skippedRecords(), 1u);
}

TEST_F(DinIoTest, MalformedLineStopsTheStreamWithAnError)
{
    std::ofstream out(path_);
    out << "not a trace\n";
    out.close();
    DinTraceSource in(path_);
    MemRef r;
    EXPECT_FALSE(in.next(r));
    ASSERT_TRUE(in.failed());
    EXPECT_EQ(in.error().code(), ErrorCode::Data);
}

TEST_F(DinIoTest, BadAddressStopsTheStreamWithAnError)
{
    std::ofstream out(path_);
    out << "0 zzz\n";
    out.close();
    DinTraceSource in(path_);
    MemRef r;
    EXPECT_FALSE(in.next(r));
    ASSERT_TRUE(in.failed());
    EXPECT_EQ(in.error().code(), ErrorCode::Data);
}

TEST_F(DinIoTest, SkipModeGivesUpPastTheCap)
{
    std::ofstream out(path_);
    for (int i = 0; i < 5; ++i)
        out << "junk line " << i << "\n";
    out << "0 100 1\n";
    out.close();
    ErrorPolicy policy;
    policy.mode = ErrorMode::Skip;
    policy.max_skips = 3;
    DinTraceSource in(path_, policy);
    MemRef r;
    EXPECT_FALSE(in.next(r));
    ASSERT_TRUE(in.failed());
    EXPECT_EQ(in.error().code(), ErrorCode::Data);
}

TEST_F(DinIoTest, StrictModeRejectsTrailingColumns)
{
    std::ofstream out(path_);
    out << "0 100 1 extra\n";
    out.close();

    DinTraceSource lax(path_); // fail-fast tolerates the old quirk
    MemRef r;
    ASSERT_TRUE(lax.next(r));
    EXPECT_EQ(r.addr, 0x100u);

    ErrorPolicy policy;
    policy.mode = ErrorMode::Strict;
    DinTraceSource strict(path_, policy);
    EXPECT_FALSE(strict.next(r));
    ASSERT_TRUE(strict.failed());
    EXPECT_EQ(strict.error().code(), ErrorCode::Data);
}

TEST_F(DinIoTest, ResetClearsARecoverableError)
{
    std::ofstream out(path_);
    out << "0 100 1\nnot a trace\n";
    out.close();
    DinTraceSource in(path_);
    MemRef r;
    ASSERT_TRUE(in.next(r));
    EXPECT_FALSE(in.next(r));
    ASSERT_TRUE(in.failed());
    in.reset();
    EXPECT_FALSE(in.failed());
    ASSERT_TRUE(in.next(r));
    EXPECT_EQ(r.addr, 0x100u);
}

TEST(DinIo, MissingFileIsAnIoError)
{
    DinTraceSource in("/nonexistent/trace.din");
    ASSERT_TRUE(in.failed());
    EXPECT_EQ(in.error().code(), ErrorCode::Io);
    MemRef r;
    EXPECT_FALSE(in.next(r));
}

} // namespace
} // namespace trace
} // namespace assoc
