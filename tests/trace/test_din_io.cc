#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "trace/din_io.h"
#include "util/logging.h"

namespace assoc {
namespace trace {
namespace {

class DinIoTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        path_ = ::testing::TempDir() + "din_io_test_" +
                std::to_string(::testing::UnitTest::GetInstance()
                                   ->random_seed()) +
                ".din";
    }

    void TearDown() override { std::remove(path_.c_str()); }

    std::string path_;
};

TEST_F(DinIoTest, RoundTripPreservesEverything)
{
    VectorTraceSource src({{0xdeadbeef, RefType::Read, 1},
                           {0x00000000, RefType::Write, 0},
                           {0xffffffff, RefType::Ifetch, 7},
                           MemRef::flush(),
                           {0x1234, RefType::Read, 2}});
    writeDin(src, path_);

    DinTraceSource in(path_);
    MemRef r;
    for (const MemRef &expect : src.refs()) {
        ASSERT_TRUE(in.next(r));
        EXPECT_EQ(r, expect);
    }
    EXPECT_FALSE(in.next(r));
}

TEST_F(DinIoTest, ResetRereadsFromTheTop)
{
    VectorTraceSource src({{0x10, RefType::Read, 1},
                           {0x20, RefType::Write, 2}});
    writeDin(src, path_);
    DinTraceSource in(path_);
    MemRef a, b;
    ASSERT_TRUE(in.next(a));
    in.reset();
    ASSERT_TRUE(in.next(b));
    EXPECT_EQ(a, b);
}

TEST_F(DinIoTest, CommentsAndBlankLinesSkipped)
{
    std::ofstream out(path_);
    out << "# comment\n\n0 100\n# another\n1 200 3\n";
    out.close();
    DinTraceSource in(path_);
    MemRef r;
    ASSERT_TRUE(in.next(r));
    EXPECT_EQ(r.addr, 0x100u);
    EXPECT_EQ(r.type, RefType::Read);
    EXPECT_EQ(r.pid, 0);
    ASSERT_TRUE(in.next(r));
    EXPECT_EQ(r.addr, 0x200u);
    EXPECT_EQ(r.type, RefType::Write);
    EXPECT_EQ(r.pid, 3);
    EXPECT_FALSE(in.next(r));
}

TEST_F(DinIoTest, PidColumnIsOptional)
{
    std::ofstream out(path_);
    out << "2 abc\n";
    out.close();
    DinTraceSource in(path_);
    MemRef r;
    ASSERT_TRUE(in.next(r));
    EXPECT_EQ(r.addr, 0xabcu);
    EXPECT_EQ(r.type, RefType::Ifetch);
    EXPECT_EQ(r.pid, 0);
}

TEST_F(DinIoTest, UnknownLabelIsFatal)
{
    std::ofstream out(path_);
    out << "9 100\n";
    out.close();
    DinTraceSource in(path_);
    MemRef r;
    EXPECT_THROW(in.next(r), FatalError);
}

TEST_F(DinIoTest, MalformedLineIsFatal)
{
    std::ofstream out(path_);
    out << "not a trace\n";
    out.close();
    DinTraceSource in(path_);
    MemRef r;
    EXPECT_THROW(in.next(r), FatalError);
}

TEST_F(DinIoTest, BadAddressIsFatal)
{
    std::ofstream out(path_);
    out << "0 zzz\n";
    out.close();
    DinTraceSource in(path_);
    MemRef r;
    EXPECT_THROW(in.next(r), FatalError);
}

TEST(DinIo, MissingFileIsFatal)
{
    EXPECT_THROW(DinTraceSource("/nonexistent/trace.din"), FatalError);
}

} // namespace
} // namespace trace
} // namespace assoc
