#include <gtest/gtest.h>

#include <sstream>

#include "trace/trace_stats.h"
#include "util/logging.h"

namespace assoc {
namespace trace {
namespace {

TEST(TraceStats, CountsMix)
{
    VectorTraceSource src({{0x00, RefType::Read, 1},
                           {0x20, RefType::Write, 1},
                           {0x40, RefType::Ifetch, 2},
                           {0x60, RefType::Read, 2},
                           MemRef::flush()});
    TraceStats s = collectStats(src, 32);
    EXPECT_EQ(s.refs, 4u);
    EXPECT_EQ(s.reads, 2u);
    EXPECT_EQ(s.writes, 1u);
    EXPECT_EQ(s.ifetches, 1u);
    EXPECT_EQ(s.flushes, 1u);
    EXPECT_DOUBLE_EQ(s.readFraction(), 0.5);
    EXPECT_DOUBLE_EQ(s.writeFraction(), 0.25);
    EXPECT_DOUBLE_EQ(s.ifetchFraction(), 0.25);
}

TEST(TraceStats, FootprintAtBlockGranularity)
{
    // Three references inside one 32-byte block, one outside.
    VectorTraceSource src({{0x00, RefType::Read, 0},
                           {0x04, RefType::Read, 0},
                           {0x1f, RefType::Write, 0},
                           {0x20, RefType::Read, 0}});
    TraceStats s = collectStats(src, 32);
    EXPECT_EQ(s.footprint_blocks, 2u);
    EXPECT_EQ(s.footprintBytes(), 64u);
}

TEST(TraceStats, PerPidBreakdown)
{
    VectorTraceSource src({{0x00, RefType::Read, 0},
                           {0x20, RefType::Read, 3},
                           {0x40, RefType::Read, 3}});
    TraceStats s = collectStats(src);
    EXPECT_EQ(s.per_pid.at(0), 1u);
    EXPECT_EQ(s.per_pid.at(3), 2u);
    EXPECT_EQ(s.per_pid.count(1), 0u);
}

TEST(TraceStats, EmptyTraceIsAllZero)
{
    VectorTraceSource src;
    TraceStats s = collectStats(src);
    EXPECT_EQ(s.refs, 0u);
    EXPECT_DOUBLE_EQ(s.readFraction(), 0.0);
    EXPECT_EQ(s.footprint_blocks, 0u);
}

TEST(TraceStats, NonPow2BlockIsFatal)
{
    VectorTraceSource src;
    EXPECT_THROW(collectStats(src, 48), FatalError);
}

TEST(SegmentStats, SplitsAtFlushMarkers)
{
    VectorTraceSource src({{0x00, RefType::Read, 0},
                           {0x20, RefType::Write, 0},
                           MemRef::flush(),
                           {0x40, RefType::Ifetch, 1},
                           MemRef::flush(),
                           {0x60, RefType::Read, 1}});
    auto segs = collectSegmentStats(src, 32);
    ASSERT_EQ(segs.size(), 3u);
    EXPECT_EQ(segs[0].refs, 2u);
    EXPECT_EQ(segs[0].flushes, 1u);
    EXPECT_EQ(segs[1].refs, 1u);
    EXPECT_EQ(segs[1].ifetches, 1u);
    EXPECT_EQ(segs[2].refs, 1u);
    EXPECT_EQ(segs[2].flushes, 0u);
}

TEST(SegmentStats, FootprintIsPerSegment)
{
    VectorTraceSource src({{0x00, RefType::Read, 0},
                           {0x20, RefType::Read, 0},
                           MemRef::flush(),
                           {0x00, RefType::Read, 0}});
    auto segs = collectSegmentStats(src, 32);
    ASSERT_EQ(segs.size(), 2u);
    EXPECT_EQ(segs[0].footprint_blocks, 2u);
    EXPECT_EQ(segs[1].footprint_blocks, 1u);
}

TEST(SegmentStats, NoFlushGivesOneSegment)
{
    VectorTraceSource src({{0x00, RefType::Read, 0}});
    auto segs = collectSegmentStats(src);
    ASSERT_EQ(segs.size(), 1u);
    EXPECT_EQ(segs[0].refs, 1u);
}

TEST(SegmentStats, EmptyTraceGivesOneEmptySegment)
{
    VectorTraceSource src;
    auto segs = collectSegmentStats(src);
    ASSERT_EQ(segs.size(), 1u);
    EXPECT_EQ(segs[0].refs, 0u);
}

TEST(SegmentStats, TrailingFlushDoesNotCreateEmptySegment)
{
    VectorTraceSource src({{0x00, RefType::Read, 0},
                           MemRef::flush()});
    auto segs = collectSegmentStats(src);
    ASSERT_EQ(segs.size(), 1u);
    EXPECT_EQ(segs[0].refs, 1u);
    EXPECT_EQ(segs[0].flushes, 1u);
}

TEST(SegmentStats, SegmentTotalsMatchWholeTraceStats)
{
    VectorTraceSource src({{0x00, RefType::Read, 1},
                           {0x40, RefType::Write, 2},
                           MemRef::flush(),
                           {0x80, RefType::Ifetch, 1},
                           {0xC0, RefType::Read, 3}});
    TraceStats whole = collectStats(src, 32);
    auto segs = collectSegmentStats(src, 32);
    std::uint64_t refs = 0, reads = 0, writes = 0, ifetches = 0;
    for (const auto &s : segs) {
        refs += s.refs;
        reads += s.reads;
        writes += s.writes;
        ifetches += s.ifetches;
    }
    EXPECT_EQ(refs, whole.refs);
    EXPECT_EQ(reads, whole.reads);
    EXPECT_EQ(writes, whole.writes);
    EXPECT_EQ(ifetches, whole.ifetches);
}

TEST(TraceStats, PrintMentionsKeyNumbers)
{
    VectorTraceSource src({{0x00, RefType::Read, 1}});
    TraceStats s = collectStats(src);
    std::ostringstream oss;
    s.print(oss);
    std::string out = oss.str();
    EXPECT_NE(out.find("references"), std::string::npos);
    EXPECT_NE(out.find("footprint"), std::string::npos);
    EXPECT_NE(out.find("pid 1"), std::string::npos);
}

} // namespace
} // namespace trace
} // namespace assoc
