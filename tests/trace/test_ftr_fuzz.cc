/**
 * @file
 * Randomized fuzz over the ftr frame decoders and the whole reader.
 *
 * Corruption is an expected input for this format, so the decode
 * layer is held to a fuzz contract rather than a happy path: on
 * arbitrary bytes and on bit-flipped valid encodings the decoders
 * must never crash, never read out of bounds (the CI ASan job runs
 * this suite), and never return success with inconsistent output;
 * the full reader must end every case either cleanly — with
 * streamed + skipped records exactly matching its CRC-verified
 * header total — or with a structured error, never a hang or a
 * silent short count.
 *
 * Everything is a pure function of (seed, case index). A failure
 * prints the ASSOC_FTR_FUZZ_SEED / ASSOC_FTR_FUZZ_INDEX repro pair;
 * ASSOC_FTR_FUZZ_CASES trims or extends the default 10000 cases.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "trace/ftr_format.h"
#include "trace/ftr_reader.h"
#include "util/crc32c.h"
#include "util/rng.h"

namespace assoc {
namespace trace {
namespace {

std::uint64_t
envU64(const char *name, std::uint64_t def)
{
    const char *s = std::getenv(name);
    return s ? std::strtoull(s, nullptr, 0) : def;
}

std::vector<MemRef>
randomRecords(Pcg32 &rng, std::size_t n)
{
    std::vector<MemRef> recs(n);
    Addr addr = rng.next();
    for (MemRef &r : recs) {
        addr += rng.below(512) - 200;
        r.addr = addr;
        r.type = static_cast<RefType>(rng.below(4));
        r.pid = static_cast<std::uint8_t>(rng.below(8));
    }
    return recs;
}

void
flipBits(Pcg32 &rng, std::vector<std::uint8_t> &bytes, unsigned flips)
{
    for (unsigned i = 0; i < flips && !bytes.empty(); ++i)
        bytes[rng.below(static_cast<std::uint32_t>(bytes.size()))] ^=
            static_cast<std::uint8_t>(1u << rng.below(8));
}

/** A complete, valid ftr file image built in memory. */
std::vector<std::uint8_t>
buildFile(Pcg32 &rng, const std::vector<MemRef> &recs,
          std::uint32_t frame_records)
{
    std::vector<std::uint8_t> file(ftr::kHeaderBytes);
    ftr::FileHeader fh;
    fh.total_records = recs.size();
    fh.frame_records = frame_records;
    ftr::encodeFileHeader(file.data(), fh);

    std::vector<ftr::IndexEntry> index;
    std::vector<std::uint8_t> payload;
    for (std::size_t at = 0; at < recs.size();) {
        std::size_t n =
            std::min<std::size_t>(frame_records, recs.size() - at);
        payload.clear();
        ftr::encodeFramePayload(recs.data() + at, n, payload);
        ftr::FrameHeader hdr;
        hdr.start_index = at;
        hdr.record_count = static_cast<std::uint32_t>(n);
        hdr.payload_len = static_cast<std::uint32_t>(payload.size());
        index.push_back({file.size(), at});
        std::uint8_t raw[ftr::kFrameHeaderBytes];
        ftr::encodeFrameHeader(raw, hdr);
        file.insert(file.end(), raw, raw + ftr::kFrameHeaderBytes);
        file.insert(file.end(), payload.begin(), payload.end());
        std::uint8_t crc[4];
        ftr::putU32(crc, crc32c(payload.data(), payload.size()));
        file.insert(file.end(), crc, crc + 4);
        at += n;
    }
    ftr::encodeFooter(index, recs.size(), file);
    (void)rng;
    return file;
}

/** Arbitrary bytes through every decoder: no crash, no overrun,
 *  no inconsistent success. */
void
fuzzDecodersOnGarbage(Pcg32 &rng)
{
    std::vector<std::uint8_t> bytes(rng.below(200));
    for (std::uint8_t &b : bytes)
        b = static_cast<std::uint8_t>(rng.next());
    // Occasionally seed a real magic so the CRC check is reached.
    if (!bytes.empty() && rng.below(2) == 0) {
        std::uint32_t magics[3] = {ftr::kFileMagic, ftr::kFrameMagic,
                                   ftr::kFooterMagic};
        std::uint8_t raw[4];
        ftr::putU32(raw, magics[rng.below(3)]);
        for (std::size_t i = 0; i < 4 && i < bytes.size(); ++i)
            bytes[i] = raw[i];
    }

    Expected<ftr::FileHeader> fh =
        ftr::decodeFileHeader(bytes.data(), bytes.size());
    if (!fh.ok())
        ASSERT_FALSE(fh.error().text().empty());

    if (bytes.size() >= ftr::kFrameHeaderBytes) {
        ftr::FrameHeader hdr;
        if (ftr::decodeFrameHeader(bytes.data(), hdr)) {
            ASSERT_LE(hdr.record_count, ftr::kMaxFrameRecords);
            ASSERT_LE(hdr.payload_len, ftr::kMaxFramePayload);
        }
    }

    std::uint32_t expect = rng.below(16);
    std::vector<MemRef> out;
    if (ftr::decodeFramePayload(bytes.data(), bytes.size(), expect,
                                out))
        ASSERT_EQ(out.size(), expect);

    std::vector<ftr::IndexEntry> index;
    std::uint64_t total = 0;
    ftr::decodeFooter(bytes.data(), bytes.size(), index, total);
}

/** Bit-flipped valid payloads: reject or decode consistently. */
void
fuzzMutatedPayload(Pcg32 &rng)
{
    std::vector<MemRef> recs = randomRecords(rng, 1 + rng.below(64));
    std::vector<std::uint8_t> payload;
    ftr::encodeFramePayload(recs.data(), recs.size(), payload);

    std::vector<std::uint8_t> bent = payload;
    flipBits(rng, bent, 1 + rng.below(3));
    // Sometimes also clip the tail: a torn write mid-payload.
    if (rng.below(4) == 0)
        bent.resize(rng.below(
            static_cast<std::uint32_t>(bent.size() + 1)));

    std::vector<MemRef> out;
    if (ftr::decodeFramePayload(
            bent.data(), bent.size(),
            static_cast<std::uint32_t>(recs.size()), out))
        ASSERT_EQ(out.size(), recs.size());

    // The pristine payload must always decode to the input.
    ASSERT_TRUE(ftr::decodeFramePayload(
        payload.data(), payload.size(),
        static_cast<std::uint32_t>(recs.size()), out));
    ASSERT_EQ(out.size(), recs.size());
    for (std::size_t i = 0; i < recs.size(); ++i)
        ASSERT_EQ(out[i], recs[i]);
}

/** Bit-flipped valid footers: reject or stay self-consistent. */
void
fuzzMutatedFooter(Pcg32 &rng)
{
    std::vector<ftr::IndexEntry> index;
    std::uint64_t off = ftr::kHeaderBytes;
    std::uint64_t at = 0;
    unsigned frames = rng.below(20);
    for (unsigned i = 0; i < frames; ++i) {
        index.push_back({off, at});
        off += ftr::kFrameHeaderBytes + 100 + rng.below(4000);
        at += 1 + rng.below(1000);
    }
    std::vector<std::uint8_t> bytes;
    ftr::encodeFooter(index, at, bytes);
    // Drop the 8-byte trailer; decodeFooter sees the block only.
    bytes.resize(bytes.size() - ftr::kTrailerBytes);

    std::vector<std::uint8_t> bent = bytes;
    flipBits(rng, bent, 1 + rng.below(3));
    std::vector<ftr::IndexEntry> got;
    std::uint64_t total = 0;
    if (ftr::decodeFooter(bent.data(), bent.size(), got, total))
        ASSERT_EQ(got.size(), index.size());

    got.clear();
    ASSERT_TRUE(
        ftr::decodeFooter(bytes.data(), bytes.size(), got, total));
    ASSERT_EQ(got.size(), index.size());
    ASSERT_EQ(total, at);
}

/** Whole-reader drain over a mutated file image: terminate with
 *  exact accounting or a structured error, never neither. */
void
fuzzWholeReader(Pcg32 &rng)
{
    std::uint32_t frame_records = 1 + rng.below(96);
    std::vector<MemRef> recs =
        randomRecords(rng, rng.below(1500));
    std::vector<std::uint8_t> file =
        buildFile(rng, recs, frame_records);

    std::vector<std::uint8_t> bent = file;
    flipBits(rng, bent, 1 + rng.below(3));
    if (rng.below(8) == 0)
        bent.resize(rng.below(
            static_cast<std::uint32_t>(bent.size() + 1)));

    ErrorPolicy policy;
    policy.mode = ErrorMode::Skip;
    policy.max_skips = 100;
    FtrOptions opt;
    opt.prefetch = (rng.below(2) == 0);
    auto in = std::make_unique<std::istringstream>(std::string(
        reinterpret_cast<const char *>(bent.data()), bent.size()));
    FtrTraceSource src(std::move(in), "fuzz.ftr", policy, opt);

    std::uint64_t streamed = 0;
    MemRef r;
    while (src.next(r))
        ++streamed;

    if (src.failed()) {
        ASSERT_NE(src.error().code(), ErrorCode::None);
        ASSERT_FALSE(src.error().text().empty());
    } else {
        // Clean end: the CRC-verified header total is fully
        // accounted for — delivered plus explicitly skipped.
        ASSERT_EQ(streamed + src.skippedRecords(),
                  src.totalRecords());
        ASSERT_LE(src.damageEvents(), policy.max_skips);
    }
}

TEST(FtrFuzz, DecodersSurviveArbitraryCorruption)
{
    const std::uint64_t seed =
        envU64("ASSOC_FTR_FUZZ_SEED", 0x66747231ull);
    const std::uint64_t cases =
        envU64("ASSOC_FTR_FUZZ_CASES", 10000);
    const std::uint64_t only =
        envU64("ASSOC_FTR_FUZZ_INDEX", ~0ull);

    for (std::uint64_t i = 0; i < cases; ++i) {
        if (only != ~0ull && i != only)
            continue;
        Pcg32 rng(seed, i);
        switch (rng.below(4)) {
          case 0:
            fuzzDecodersOnGarbage(rng);
            break;
          case 1:
            fuzzMutatedPayload(rng);
            break;
          case 2:
            fuzzMutatedFooter(rng);
            break;
          default:
            fuzzWholeReader(rng);
            break;
        }
        if (::testing::Test::HasFatalFailure()) {
            ADD_FAILURE() << "repro: ASSOC_FTR_FUZZ_SEED=" << seed
                          << " ASSOC_FTR_FUZZ_INDEX=" << i;
            return;
        }
    }
}

} // namespace
} // namespace trace
} // namespace assoc
