#include <gtest/gtest.h>

#include <vector>

#include "trace/atum_like.h"

namespace assoc {
namespace trace {
namespace {

AtumLikeConfig
smallConfig()
{
    AtumLikeConfig cfg;
    cfg.segments = 3;
    cfg.refs_per_segment = 5000;
    cfg.processes = 2;
    return cfg;
}

TEST(AtumLike, EmitsExactlyTotalRefs)
{
    AtumLikeGenerator gen(smallConfig());
    std::uint64_t n = 0;
    MemRef r;
    while (gen.next(r))
        ++n;
    EXPECT_EQ(n, gen.totalRefs());
    // 3 segments x 5000 refs + 2 flush markers.
    EXPECT_EQ(gen.totalRefs(), 3u * 5000u + 2u);
}

TEST(AtumLike, FlushMarkersSeparateSegments)
{
    AtumLikeGenerator gen(smallConfig());
    MemRef r;
    std::vector<std::uint64_t> flush_positions;
    std::uint64_t pos = 0;
    while (gen.next(r)) {
        if (r.isFlush())
            flush_positions.push_back(pos);
        ++pos;
    }
    ASSERT_EQ(flush_positions.size(), 2u);
    EXPECT_EQ(flush_positions[0], 5000u);
    EXPECT_EQ(flush_positions[1], 10001u);
}

TEST(AtumLike, NoFlushWhenDisabled)
{
    AtumLikeConfig cfg = smallConfig();
    cfg.flush_between_segments = false;
    AtumLikeGenerator gen(cfg);
    MemRef r;
    std::uint64_t n = 0;
    while (gen.next(r)) {
        EXPECT_FALSE(r.isFlush());
        ++n;
    }
    EXPECT_EQ(n, 3u * 5000u);
}

TEST(AtumLike, ResetReplaysBitIdentically)
{
    AtumLikeGenerator gen(smallConfig());
    std::vector<MemRef> first;
    MemRef r;
    while (gen.next(r))
        first.push_back(r);
    gen.reset();
    std::size_t i = 0;
    while (gen.next(r)) {
        ASSERT_LT(i, first.size());
        ASSERT_EQ(r, first[i]) << "diverged at ref " << i;
        ++i;
    }
    EXPECT_EQ(i, first.size());
}

TEST(AtumLike, TwoInstancesSameSeedAgree)
{
    AtumLikeGenerator a(smallConfig()), b(smallConfig());
    MemRef ra, rb;
    while (true) {
        bool ha = a.next(ra), hb = b.next(rb);
        ASSERT_EQ(ha, hb);
        if (!ha)
            break;
        ASSERT_EQ(ra, rb);
    }
}

TEST(AtumLike, DifferentSeedsProduceDifferentTraces)
{
    AtumLikeConfig c1 = smallConfig(), c2 = smallConfig();
    c2.seed = c1.seed + 1;
    AtumLikeGenerator a(c1), b(c2);
    MemRef ra, rb;
    int same = 0, n = 0;
    while (a.next(ra) && b.next(rb)) {
        same += ra == rb;
        ++n;
    }
    EXPECT_LT(same, n / 2);
}

TEST(AtumLike, MultipleProcessesAppear)
{
    AtumLikeGenerator gen(smallConfig());
    std::vector<std::uint64_t> pid_count(8, 0);
    MemRef r;
    while (gen.next(r)) {
        if (!r.isFlush())
            ++pid_count.at(r.pid);
    }
    // OS (pid 0) and both user processes (1, 2) all ran.
    EXPECT_GT(pid_count[0], 0u);
    EXPECT_GT(pid_count[1], 0u);
    EXPECT_GT(pid_count[2], 0u);
    EXPECT_EQ(pid_count[3], 0u);
}

TEST(AtumLike, OsFractionRoughlyHonored)
{
    AtumLikeConfig cfg;
    cfg.segments = 2;
    cfg.refs_per_segment = 100000;
    cfg.processes = 4;
    AtumLikeGenerator gen(cfg);
    std::uint64_t os = 0, total = 0;
    MemRef r;
    while (gen.next(r)) {
        if (r.isFlush())
            continue;
        ++total;
        os += r.pid == 0;
    }
    double frac = static_cast<double>(os) / total;
    // OS bursts are picked with probability 0.20 but are shorter
    // (1500 vs 6000 mean refs): expected share ~ 0.20*1500 /
    // (0.20*1500 + 0.80*6000) ~ 0.06. Loose band.
    EXPECT_GT(frac, 0.01);
    EXPECT_LT(frac, 0.30);
}

TEST(AtumLike, ProcessAddressSpacesAreDisjoint)
{
    AtumLikeGenerator gen(smallConfig());
    MemRef r;
    while (gen.next(r)) {
        if (r.isFlush())
            continue;
        EXPECT_EQ(r.addr >> 26, static_cast<Addr>(r.pid + 1));
    }
}

TEST(AtumLike, SegmentsDiffer)
{
    // The 23 ATUM traces are different workloads; segments must not
    // be clones of each other.
    AtumLikeConfig cfg = smallConfig();
    cfg.segments = 2;
    AtumLikeGenerator gen(cfg);
    std::vector<MemRef> seg1, seg2;
    MemRef r;
    bool second = false;
    while (gen.next(r)) {
        if (r.isFlush()) {
            second = true;
            continue;
        }
        (second ? seg2 : seg1).push_back(r);
    }
    ASSERT_EQ(seg1.size(), seg2.size());
    int same = 0;
    for (std::size_t i = 0; i < seg1.size(); ++i)
        same += seg1[i] == seg2[i];
    EXPECT_LT(same, static_cast<int>(seg1.size()) / 2);
}

TEST(AtumLike, RejectsBadConfig)
{
    AtumLikeConfig cfg;
    cfg.segments = 0;
    EXPECT_THROW(AtumLikeGenerator{cfg}, FatalError);
    cfg = AtumLikeConfig{};
    cfg.refs_per_segment = 0;
    EXPECT_THROW(AtumLikeGenerator{cfg}, FatalError);
    cfg = AtumLikeConfig{};
    cfg.processes = 61;
    EXPECT_THROW(AtumLikeGenerator{cfg}, FatalError);
}

TEST(AtumLike, DefaultConfigMatchesPaperScale)
{
    AtumLikeConfig cfg;
    EXPECT_EQ(cfg.segments, 23u);
    EXPECT_EQ(cfg.refs_per_segment, 350000u);
    AtumLikeGenerator gen(cfg);
    // Over 8 million references, as the paper reports.
    EXPECT_GT(gen.totalRefs(), 8000000u);
}

} // namespace
} // namespace trace
} // namespace assoc
