/**
 * @file
 * IO-fault injection tests: the FaultyStreamBuf wrapper itself, and
 * the contract every trace reader (din/bin/ftr) owes when the
 * *device* fails rather than the data — a short read or an EIO must
 * surface as a structured error under every ErrorPolicy, because a
 * hard fault mistaken for end-of-file silently computes statistics
 * over a prefix. Skip mode is for damaged bytes, not dying disks.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "trace/bin_io.h"
#include "trace/din_io.h"
#include "trace/ftr_writer.h"
#include "trace/trace_file.h"
#include "util/io_fault.h"
#include "util/rng.h"

namespace assoc {
namespace trace {
namespace {

class IoFaultTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        // Unique per test case: ctest runs cases concurrently.
        base_ = ::testing::TempDir() + "io_fault_" +
                ::testing::UnitTest::GetInstance()
                    ->current_test_info()
                    ->name();
    }

    void
    TearDown() override
    {
        for (const std::string &p : cleanup_)
            std::remove(p.c_str());
    }

    std::string
    scratch(const std::string &ext)
    {
        std::string p = base_ + ext;
        cleanup_.push_back(p);
        return p;
    }

    std::string base_;
    std::vector<std::string> cleanup_;
};

void
writeBytes(const std::string &path, std::size_t n)
{
    std::ofstream out(path, std::ios::binary);
    Pcg32 rng(0x10FA);
    for (std::size_t i = 0; i < n; ++i)
        out.put(static_cast<char>(rng.next()));
}

std::vector<MemRef>
someRecords(std::size_t n)
{
    std::vector<MemRef> recs(n);
    Pcg32 rng(0x10FB);
    for (MemRef &r : recs) {
        r.addr = rng.next();
        r.type = static_cast<RefType>(rng.below(3));
        r.pid = static_cast<std::uint8_t>(rng.below(4));
    }
    return recs;
}

ErrorPolicy
skipPolicy()
{
    ErrorPolicy p;
    p.mode = ErrorMode::Skip;
    return p;
}

TEST_F(IoFaultTest, ShortReadDeliversTheExactPrefix)
{
    std::string path = scratch(".raw");
    writeBytes(path, 10000);
    IoFaultPlan plan;
    plan.short_read_at = 1234;
    std::unique_ptr<std::istream> in = openFaultyFile(path, plan);
    ASSERT_TRUE(in->good());
    std::vector<char> buf(16384);
    in->read(buf.data(), static_cast<std::streamsize>(buf.size()));
    // Exactly the bytes before the fault, then a clean EOF — the
    // torn-tail shape, indistinguishable from a truncated file.
    EXPECT_EQ(in->gcount(), 1234);
    EXPECT_TRUE(in->eof());
    EXPECT_FALSE(in->bad());
}

TEST_F(IoFaultTest, IoErrorSetsBadbitNotEof)
{
    std::string path = scratch(".raw");
    writeBytes(path, 10000);
    IoFaultPlan plan;
    plan.io_error_at = 777;
    std::unique_ptr<std::istream> in = openFaultyFile(path, plan);
    std::vector<char> buf(16384);
    in->read(buf.data(), static_cast<std::streamsize>(buf.size()));
    EXPECT_LE(in->gcount(), 777);
    EXPECT_TRUE(in->bad());
}

TEST_F(IoFaultTest, FaultsReArmAfterSeek)
{
    // The fault is a property of the byte offset, not of elapsed
    // reads: readers rewind on reset() and must hit it again.
    std::string path = scratch(".raw");
    writeBytes(path, 5000);
    IoFaultPlan plan;
    plan.short_read_at = 600;
    std::unique_ptr<std::istream> in = openFaultyFile(path, plan);
    std::vector<char> buf(8192);
    in->read(buf.data(), static_cast<std::streamsize>(buf.size()));
    ASSERT_EQ(in->gcount(), 600);
    in->clear();
    in->seekg(0);
    ASSERT_TRUE(in->good());
    in->read(buf.data(), static_cast<std::streamsize>(buf.size()));
    EXPECT_EQ(in->gcount(), 600);
    // And bytes before the fault are readable after a short seek.
    in->clear();
    in->seekg(100);
    in->read(buf.data(), 200);
    EXPECT_EQ(in->gcount(), 200);
}

TEST_F(IoFaultTest, HardErrorTakesPrecedenceOverShortRead)
{
    std::string path = scratch(".raw");
    writeBytes(path, 5000);
    IoFaultPlan plan;
    plan.short_read_at = 4000;
    plan.io_error_at = 300;
    std::unique_ptr<std::istream> in = openFaultyFile(path, plan);
    std::vector<char> buf(8192);
    in->read(buf.data(), static_cast<std::streamsize>(buf.size()));
    EXPECT_TRUE(in->bad());
}

TEST_F(IoFaultTest, UnopenableFileSetsFailbit)
{
    IoFaultPlan plan;
    std::unique_ptr<std::istream> in =
        openFaultyFile(base_ + "/no/such/file", plan);
    EXPECT_TRUE(in->fail());
}

TEST_F(IoFaultTest, BinShortReadIsAStructuredErrorEvenInSkipMode)
{
    std::string path = scratch(".bin");
    std::vector<MemRef> recs = someRecords(2000);
    VectorTraceSource src(recs);
    writeBin(src, path);

    IoFaultPlan plan;
    plan.short_read_at = 916; // mid-record, well past the header
    std::unique_ptr<TraceSource> in =
        openTraceFileWithFaults(path, skipPolicy(), plan);
    std::uint64_t streamed = 0;
    MemRef r;
    while (in->next(r))
        ++streamed;
    EXPECT_TRUE(in->failed());
    EXPECT_EQ(in->error().code(), ErrorCode::Io);
    EXPECT_EQ(in->skippedRecords(), 0u);
    // Records delivered before the tear: (916 - 16B header) / 6B.
    EXPECT_EQ(streamed, (916u - 16u) / 6u);
}

TEST_F(IoFaultTest, EveryFormatSurfacesEioAsAHardError)
{
    struct Case
    {
        const char *ext;
        std::uint64_t fault_at;
    };
    for (const Case &c : {Case{".din", 500}, Case{".bin", 500},
                          Case{".ftr", 500}}) {
        std::string path = scratch(c.ext);
        std::vector<MemRef> recs = someRecords(2000);
        VectorTraceSource src(recs);
        switch (detectTraceFormat(path)) {
          case TraceFormat::Din:
            writeDin(src, path);
            break;
          case TraceFormat::Bin:
            writeBin(src, path);
            break;
          case TraceFormat::Ftr:
            ASSERT_TRUE(writeFtr(src, path).ok());
            break;
        }
        IoFaultPlan plan;
        plan.io_error_at = c.fault_at;
        std::unique_ptr<TraceSource> in =
            openTraceFileWithFaults(path, skipPolicy(), plan);
        MemRef r;
        while (in->next(r)) {
        }
        EXPECT_TRUE(in->failed())
            << c.ext << ": EIO masqueraded as end-of-file";
        EXPECT_EQ(in->error().code(), ErrorCode::Io) << c.ext;
        EXPECT_FALSE(in->error().text().empty()) << c.ext;
    }
}

} // namespace
} // namespace trace
} // namespace assoc
