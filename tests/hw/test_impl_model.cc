#include <gtest/gtest.h>

#include "hw/impl_model.h"
#include "util/logging.h"

namespace assoc {
namespace hw {
namespace {

// Table 2 of the paper, verbatim.

TEST(Table2Catalog, DramMemoryPackages)
{
    Table2Catalog cat;
    const ImplSpec &dm = cat.get(ImplKind::DirectMapped, RamTech::Dram);
    EXPECT_EQ(dm.chip.organization, "1Mx8");
    EXPECT_DOUBLE_EQ(dm.chip.access_ns, 100);
    EXPECT_DOUBLE_EQ(dm.chip.cycle_ns, 190);
    EXPECT_FALSE(dm.chip.hasPageMode());

    const ImplSpec &tr = cat.get(ImplKind::Traditional, RamTech::Dram);
    EXPECT_EQ(tr.chip.organization, "256Kx8");
    EXPECT_DOUBLE_EQ(tr.chip.access_ns, 80);
    EXPECT_DOUBLE_EQ(tr.chip.cycle_ns, 160);

    const ImplSpec &mru = cat.get(ImplKind::Mru, RamTech::Dram);
    EXPECT_TRUE(mru.chip.hasPageMode());
    EXPECT_DOUBLE_EQ(mru.chip.page_access_ns, 35);
    EXPECT_DOUBLE_EQ(mru.chip.page_cycle_ns, 35);
}

TEST(Table2Catalog, DramImplementationNumbers)
{
    Table2Catalog cat;
    EXPECT_DOUBLE_EQ(
        cat.get(ImplKind::DirectMapped, RamTech::Dram).accessNs(), 136);
    EXPECT_DOUBLE_EQ(
        cat.get(ImplKind::DirectMapped, RamTech::Dram).cycleNs(), 230);
    EXPECT_DOUBLE_EQ(
        cat.get(ImplKind::Traditional, RamTech::Dram).accessNs(), 132);
    EXPECT_DOUBLE_EQ(
        cat.get(ImplKind::Traditional, RamTech::Dram).cycleNs(), 190);

    // MRU: 150 + 50x access, 250 + 50(x+u) cycle.
    const ImplSpec &mru = cat.get(ImplKind::Mru, RamTech::Dram);
    EXPECT_DOUBLE_EQ(mru.accessNs(1.0), 200);
    EXPECT_DOUBLE_EQ(mru.accessNs(2.5), 275);
    EXPECT_DOUBLE_EQ(mru.cycleNs(1.0, 0.5), 325);

    // Partial: 150 + 50y both.
    const ImplSpec &part = cat.get(ImplKind::Partial, RamTech::Dram);
    EXPECT_DOUBLE_EQ(part.accessNs(2.0), 250);
    EXPECT_DOUBLE_EQ(part.cycleNs(2.0), 350);
}

TEST(Table2Catalog, DramPackageCounts)
{
    Table2Catalog cat;
    EXPECT_EQ(cat.get(ImplKind::DirectMapped, RamTech::Dram).packages,
              18);
    EXPECT_EQ(cat.get(ImplKind::Traditional, RamTech::Dram).packages,
              42);
    EXPECT_EQ(cat.get(ImplKind::Mru, RamTech::Dram).packages, 22);
    EXPECT_EQ(cat.get(ImplKind::Partial, RamTech::Dram).packages, 21);
}

TEST(Table2Catalog, SramImplementationNumbers)
{
    Table2Catalog cat;
    EXPECT_DOUBLE_EQ(
        cat.get(ImplKind::DirectMapped, RamTech::Sram).accessNs(), 61);
    EXPECT_DOUBLE_EQ(
        cat.get(ImplKind::DirectMapped, RamTech::Sram).cycleNs(), 85);
    EXPECT_DOUBLE_EQ(
        cat.get(ImplKind::Traditional, RamTech::Sram).accessNs(), 84);
    EXPECT_DOUBLE_EQ(
        cat.get(ImplKind::Traditional, RamTech::Sram).cycleNs(), 100);

    const ImplSpec &mru = cat.get(ImplKind::Mru, RamTech::Sram);
    EXPECT_DOUBLE_EQ(mru.accessNs(1.0), 120); // 65 + 55x
    EXPECT_DOUBLE_EQ(mru.cycleNs(1.0, 1.0), 185); // 75 + 55(x+u)

    const ImplSpec &part = cat.get(ImplKind::Partial, RamTech::Sram);
    EXPECT_DOUBLE_EQ(part.accessNs(1.0), 120); // 65 + 55y
    EXPECT_DOUBLE_EQ(part.cycleNs(1.0), 130);  // 75 + 55y
}

TEST(Table2Catalog, SramPackageCounts)
{
    Table2Catalog cat;
    EXPECT_EQ(cat.get(ImplKind::DirectMapped, RamTech::Sram).packages,
              20);
    EXPECT_EQ(cat.get(ImplKind::Traditional, RamTech::Sram).packages,
              37);
    EXPECT_EQ(cat.get(ImplKind::Mru, RamTech::Sram).packages, 25);
    EXPECT_EQ(cat.get(ImplKind::Partial, RamTech::Sram).packages, 24);
}

TEST(Table2Catalog, SerialSchemesUseFewerPackagesThanTraditional)
{
    // The headline claim: MRU/partial use direct-mapped-like
    // hardware, roughly half the traditional package count.
    Table2Catalog cat;
    for (RamTech tech : {RamTech::Dram, RamTech::Sram}) {
        int trad = cat.get(ImplKind::Traditional, tech).packages;
        int mru = cat.get(ImplKind::Mru, tech).packages;
        int part = cat.get(ImplKind::Partial, tech).packages;
        int dm = cat.get(ImplKind::DirectMapped, tech).packages;
        EXPECT_LT(mru, trad);
        EXPECT_LT(part, trad);
        EXPECT_LE(dm, part);
        // "Tag memory cost reduced by 1/3 to 1/2 in our design".
        EXPECT_LT(static_cast<double>(part) / trad, 0.67);
    }
}

TEST(Table2Catalog, SymbolicExpressions)
{
    Table2Catalog cat;
    EXPECT_EQ(cat.get(ImplKind::Mru, RamTech::Dram).accessExpr(),
              "150+50x");
    EXPECT_EQ(cat.get(ImplKind::Mru, RamTech::Dram).cycleExpr(),
              "250+50(x+u)");
    EXPECT_EQ(cat.get(ImplKind::Partial, RamTech::Dram).accessExpr(),
              "150+50y");
    EXPECT_EQ(cat.get(ImplKind::Partial, RamTech::Sram).cycleExpr(),
              "75+55y");
    EXPECT_EQ(
        cat.get(ImplKind::DirectMapped, RamTech::Sram).accessExpr(),
        "61");
}

TEST(Table2Catalog, AllReturnsFourDesigns)
{
    Table2Catalog cat;
    EXPECT_EQ(cat.all(RamTech::Dram).size(), 4u);
    EXPECT_EQ(cat.all(RamTech::Sram).size(), 4u);
}

TEST(ImplModel, EffectiveAccessComposition)
{
    Table2Catalog cat;
    const ImplSpec &mru = cat.get(ImplKind::Mru, RamTech::Sram);
    // A measured mean of 1.7 probes after the list read.
    EXPECT_DOUBLE_EQ(effectiveAccessNs(mru, 1.7), 65 + 55 * 1.7);
}

TEST(ImplModel, Names)
{
    EXPECT_STREQ(implKindName(ImplKind::DirectMapped),
                 "Direct-Mapped");
    EXPECT_STREQ(implKindName(ImplKind::Traditional), "Traditional");
    EXPECT_STREQ(implKindName(ImplKind::Mru), "MRU");
    EXPECT_STREQ(implKindName(ImplKind::Partial), "Partial");
    EXPECT_STREQ(ramTechName(RamTech::Dram), "DRAM");
    EXPECT_STREQ(ramTechName(RamTech::Sram), "SRAM");
}

} // namespace
} // namespace hw
} // namespace assoc
