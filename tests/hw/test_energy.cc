/**
 * @file
 * Per-probe energy model (energy_model.h): event pricing, the
 * phased-data-array accounting, the per-access mean, and the
 * energy·delay composition with effectiveAccess.
 */

#include <gtest/gtest.h>

#include "hw/energy_model.h"
#include "hw/impl_model.h"

namespace assoc {
namespace hw {
namespace {

TEST(EnergyModel, PricesEachEventCategoryIndependently)
{
    EnergySpec spec;
    spec.tag_read_nj = 1.0;
    spec.field_read_nj = 2.0;
    spec.tag_compare_nj = 4.0;
    spec.list_read_nj = 8.0;
    spec.memo_access_nj = 16.0;
    spec.data_read_nj = 32.0;
    spec.miss_nj = 64.0;

    EnergyEvents ev;
    ev.tag_reads = 1;
    ev.field_reads = 1;
    ev.tag_compares = 1;
    ev.list_reads = 1;
    ev.memo_reads = 1;
    ev.memo_writes = 1; // reads and writes share the memo price
    ev.hits = 1;
    ev.misses = 1;
    ev.accesses = 2;

    EnergyBreakdown b = energyOf(spec, ev);
    EXPECT_DOUBLE_EQ(b.tag_nj, 1.0);
    EXPECT_DOUBLE_EQ(b.field_nj, 2.0);
    EXPECT_DOUBLE_EQ(b.compare_nj, 4.0);
    EXPECT_DOUBLE_EQ(b.list_nj, 8.0);
    EXPECT_DOUBLE_EQ(b.memo_nj, 32.0); // one read + one write
    EXPECT_DOUBLE_EQ(b.data_nj, 32.0);
    EXPECT_DOUBLE_EQ(b.miss_nj, 64.0);
    EXPECT_DOUBLE_EQ(b.total_nj, 143.0);
    EXPECT_DOUBLE_EQ(b.per_access_nj, 71.5);
}

TEST(EnergyModel, IdleRunHasZeroPerAccessEnergy)
{
    EnergyBreakdown b =
        energyOf(EnergySpec::defaultSram(), EnergyEvents{});
    EXPECT_DOUBLE_EQ(b.total_nj, 0.0);
    EXPECT_DOUBLE_EQ(b.per_access_nj, 0.0);
}

TEST(EnergyModel, DefaultSramMagnitudesAreOrdered)
{
    // The relative magnitudes are the model's substance: a memo
    // access under a field read under a full tag read, a data-way
    // read costing several tag reads, and a miss dwarfing all of it.
    EnergySpec s = EnergySpec::defaultSram();
    EXPECT_LT(s.tag_compare_nj, s.tag_read_nj);
    EXPECT_LT(s.memo_access_nj, s.field_read_nj + s.tag_read_nj);
    EXPECT_LT(s.memo_access_nj, s.tag_read_nj);
    EXPECT_LT(s.field_read_nj, s.tag_read_nj);
    EXPECT_GT(s.data_read_nj, 2.0 * s.tag_read_nj);
    EXPECT_GT(s.miss_nj, 10.0 * s.data_read_nj);
}

TEST(EnergyModel, MemoSchemeTradesTagEnergyForMemoEnergy)
{
    // Same access mix, two schemes: a traditional probe-everything
    // scheme vs a memo scheme that skipped 3 of 4 lookups' tag work.
    // The memo run must come out cheaper under the default spec.
    EnergySpec spec = EnergySpec::defaultSram();
    const unsigned assoc = 4;

    EnergyEvents trad;
    trad.accesses = 4;
    trad.hits = 4;
    trad.tag_reads = 4 * assoc;
    trad.tag_compares = 4 * assoc;

    EnergyEvents memo;
    memo.accesses = 4;
    memo.hits = 4;
    memo.tag_reads = assoc; // only the one memo miss probed tags
    memo.tag_compares = assoc;
    memo.memo_reads = 4;
    memo.memo_writes = 1;

    EXPECT_LT(energyOf(spec, memo).per_access_nj,
              energyOf(spec, trad).per_access_nj);
}

TEST(EnergyModel, EnergyDelayComposesWithEffectiveAccess)
{
    Table2Catalog cat;
    const ImplSpec &mru = cat.get(ImplKind::Mru, RamTech::Sram);
    EffectiveInputs in;
    in.extra_hit_probes = 0.5;
    in.l1_miss_ratio = 0.1;
    in.l2_miss_ratio = 0.2;
    SystemTimings sys;
    EffectiveResult er = effectiveAccess(mru, in, sys);

    EnergyEvents ev;
    ev.accesses = 10;
    ev.hits = 8;
    ev.misses = 2;
    ev.tag_reads = 15;
    ev.tag_compares = 15;
    EnergyBreakdown eb = energyOf(EnergySpec::defaultSram(), ev);

    EnergyDelay ed = energyDelay(eb, er);
    EXPECT_DOUBLE_EQ(ed.energy_nj, eb.per_access_nj);
    EXPECT_DOUBLE_EQ(ed.delay_ns, er.l2_request_ns);
    EXPECT_DOUBLE_EQ(ed.edp_nj_ns, eb.per_access_nj * er.l2_request_ns);
    EXPECT_GT(ed.edp_nj_ns, 0.0);
}

} // namespace
} // namespace hw
} // namespace assoc
