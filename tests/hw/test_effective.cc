#include <gtest/gtest.h>

#include "hw/effective.h"
#include "util/logging.h"

namespace assoc {
namespace hw {
namespace {

TEST(EffectiveAccess, SingleProbeImplementation)
{
    Table2Catalog cat;
    const ImplSpec &dm = cat.get(ImplKind::DirectMapped, RamTech::Sram);
    EffectiveInputs in;
    in.l1_miss_ratio = 0.1;
    in.l2_miss_ratio = 0.2;
    SystemTimings sys;
    sys.l1_hit_ns = 40;
    sys.memory_ns = 500;

    EffectiveResult r = effectiveAccess(dm, in, sys);
    EXPECT_DOUBLE_EQ(r.l2_hit_ns, 61.0);
    EXPECT_DOUBLE_EQ(r.l2_miss_ns, 561.0);
    EXPECT_DOUBLE_EQ(r.l2_request_ns, 0.8 * 61 + 0.2 * 561);
    EXPECT_DOUBLE_EQ(r.per_ref_ns, 40 + 0.1 * r.l2_request_ns);
}

TEST(EffectiveAccess, SerialProbesRaiseHitAndMissTimes)
{
    Table2Catalog cat;
    const ImplSpec &mru = cat.get(ImplKind::Mru, RamTech::Sram);
    EffectiveInputs in;
    in.extra_hit_probes = 1.5;
    in.extra_miss_probes = 4.0;
    in.l1_miss_ratio = 0.05;
    in.l2_miss_ratio = 0.15;
    SystemTimings sys;

    EffectiveResult r = effectiveAccess(mru, in, sys);
    EXPECT_DOUBLE_EQ(r.l2_hit_ns, 65 + 55 * 1.5);
    EXPECT_DOUBLE_EQ(r.l2_miss_ns, 65 + 55 * 4.0 + sys.memory_ns);
}

TEST(EffectiveAccess, ZeroMissRatiosDegenerate)
{
    Table2Catalog cat;
    const ImplSpec &dm = cat.get(ImplKind::DirectMapped, RamTech::Sram);
    EffectiveInputs in; // all zeros
    SystemTimings sys;
    EffectiveResult r = effectiveAccess(dm, in, sys);
    // No L1 misses: the L2 never matters.
    EXPECT_DOUBLE_EQ(r.per_ref_ns, sys.l1_hit_ns);
}

TEST(EffectiveAccess, CrossoverAppearsAsMissPenaltyGrows)
{
    // The introduction's argument in miniature: a direct-mapped L2
    // with a worse miss ratio loses to a 4-way serial scheme once
    // memory gets slow enough.
    Table2Catalog cat;
    const ImplSpec &dm = cat.get(ImplKind::DirectMapped, RamTech::Sram);
    const ImplSpec &partial =
        cat.get(ImplKind::Partial, RamTech::Sram);

    EffectiveInputs dm_in;
    dm_in.l1_miss_ratio = 0.07;
    dm_in.l2_miss_ratio = 0.30; // direct-mapped misses more
    EffectiveInputs p_in;
    p_in.l1_miss_ratio = 0.07;
    p_in.l2_miss_ratio = 0.20; // 4-way misses less
    p_in.extra_hit_probes = 1.2;
    p_in.extra_miss_probes = 0.3;

    SystemTimings fast;
    fast.memory_ns = 100;
    SystemTimings slow;
    slow.memory_ns = 4000;

    EXPECT_LT(effectiveAccess(dm, dm_in, fast).per_ref_ns,
              effectiveAccess(partial, p_in, fast).per_ref_ns);
    EXPECT_GT(effectiveAccess(dm, dm_in, slow).per_ref_ns,
              effectiveAccess(partial, p_in, slow).per_ref_ns);
}

TEST(EffectiveAccess, RejectsBadRatios)
{
    Table2Catalog cat;
    const ImplSpec &dm = cat.get(ImplKind::DirectMapped, RamTech::Sram);
    EffectiveInputs in;
    SystemTimings sys;
    in.l1_miss_ratio = -0.1;
    EXPECT_THROW(effectiveAccess(dm, in, sys), FatalError);
    in.l1_miss_ratio = 0.1;
    in.l2_miss_ratio = 1.5;
    EXPECT_THROW(effectiveAccess(dm, in, sys), FatalError);
}

} // namespace
} // namespace hw
} // namespace assoc
