/**
 * @file
 * End-to-end sweeps over packed ftr trace files: file-backed jobs
 * must be bit-identical to in-memory replay, a sweep killed in the
 * middle of a trace must resume from its journal to byte-identical
 * JSON, skip accounting must survive the journal round trip, and a
 * trace larger than the per-job memory budget must stream within
 * bounds — the contracts the trace_pack CI smoke leans on.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "exec/journal.h"
#include "exec/report.h"
#include "exec/sweep.h"
#include "trace/atum_like.h"
#include "trace/ftr_format.h"
#include "trace/ftr_reader.h"
#include "trace/ftr_writer.h"

namespace assoc {
namespace exec {
namespace {

class FtrSweepTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        // Unique per test case: ctest runs cases concurrently.
        base_ = ::testing::TempDir() + "ftr_sweep_" +
                ::testing::UnitTest::GetInstance()
                    ->current_test_info()
                    ->name();
        path_ = base_ + ".ftr";
        journal_ = base_ + ".journal";
        recs_ = generate(5000);
        trace::VectorTraceSource src(recs_);
        trace::FtrWriter::Options opt;
        opt.frame_records = 512;
        Expected<std::uint64_t> n =
            trace::writeFtr(src, path_, opt);
        ASSERT_TRUE(n.ok()) << n.error().text();
    }

    void
    TearDown() override
    {
        std::remove(path_.c_str());
        std::remove(journal_.c_str());
    }

    static std::vector<trace::MemRef>
    generate(std::uint64_t refs)
    {
        trace::AtumLikeConfig cfg;
        cfg.segments = 1;
        cfg.refs_per_segment = refs;
        trace::AtumLikeGenerator gen(cfg);
        std::vector<trace::MemRef> recs;
        trace::MemRef r;
        while (gen.next(r))
            recs.push_back(r);
        return recs;
    }

    std::string base_, path_, journal_;
    std::vector<trace::MemRef> recs_;
};

std::vector<sim::RunSpec>
sweepSpecs()
{
    std::vector<sim::RunSpec> specs;
    for (unsigned a : {2u, 4u, 8u}) {
        sim::RunSpec spec;
        spec.hier = mem::HierarchyConfig{
            mem::CacheGeometry(4096, 16, 1),
            mem::CacheGeometry(65536, 32, a), true};
        core::SchemeSpec naive, mru;
        naive.kind = core::SchemeKind::Naive;
        mru.kind = core::SchemeKind::Mru;
        spec.schemes = {naive, mru,
                        core::SchemeSpec::paperPartial(a)};
        specs.push_back(spec);
    }
    return specs;
}

ErrorPolicy
skipPolicy()
{
    ErrorPolicy p;
    p.mode = ErrorMode::Skip;
    return p;
}

/** In-memory factory over the same records the file holds. */
TraceFactory
memoryFactory(const std::vector<trace::MemRef> &recs)
{
    return [&recs](std::size_t) {
        return std::make_unique<trace::VectorTraceSource>(recs);
    };
}

/** Forwarding source that trips @p master after @p after records —
 *  a deterministic stand-in for SIGINT arriving mid-trace. */
class CancelMidStreamSource : public trace::TraceSource
{
  public:
    CancelMidStreamSource(std::unique_ptr<trace::TraceSource> inner,
                          CancelToken *master, std::uint64_t after)
        : inner_(std::move(inner)), master_(master), after_(after)
    {}

    bool
    next(trace::MemRef &ref) override
    {
        if (++count_ == after_)
            master_->cancel();
        return inner_->next(ref);
    }

    void reset() override { inner_->reset(); }

    const Error &error() const override { return inner_->error(); }

    std::uint64_t
    skippedRecords() const override
    {
        return inner_->skippedRecords();
    }

    void
    setCancelToken(const CancelToken *t) override
    {
        inner_->setCancelToken(t);
    }

    void
    setMemBudget(MemBudget *b) override
    {
        inner_->setMemBudget(b);
    }

  private:
    std::unique_ptr<trace::TraceSource> inner_;
    CancelToken *master_;
    std::uint64_t after_;
    std::uint64_t count_ = 0;
};

void
flipByteInFile(const std::string &path, std::uint64_t offset)
{
    std::fstream f(path,
                   std::ios::binary | std::ios::in | std::ios::out);
    ASSERT_TRUE(f.good());
    f.seekg(static_cast<std::streamoff>(offset));
    char c = 0;
    f.get(c);
    f.seekp(static_cast<std::streamoff>(offset));
    f.put(static_cast<char>(c ^ 0x20));
}

TEST_F(FtrSweepTest, FileBackedSweepMatchesInMemoryReplay)
{
    std::vector<sim::RunSpec> specs = sweepSpecs();
    SweepOptions opts;
    opts.jobs = 1;
    std::vector<sim::RunOutput> want =
        runSweep(specs, memoryFactory(recs_), opts);
    opts.jobs = 2;
    std::vector<sim::RunOutput> got =
        runSweep(specs, fileTraceFactory(path_), opts);
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < got.size(); ++i)
        EXPECT_EQ(encodeRunOutput(got[i]), encodeRunOutput(want[i]))
            << "job " << i;
}

TEST_F(FtrSweepTest, KilledMidTraceResumesToByteIdenticalJson)
{
    std::vector<sim::RunSpec> specs = sweepSpecs();

    // The reference: one clean, uninterrupted serial sweep.
    SweepOptions clean;
    clean.jobs = 1;
    std::vector<sim::RunOutput> want =
        runSweep(specs, fileTraceFactory(path_), clean);
    std::ostringstream want_json;
    writeSweepJson(want_json, specs, want);

    // Phase 1: the token trips 2000 records into job 1's trace —
    // job 0 is already journaled, job 1 dies mid-stream, job 2
    // never starts.
    CancelToken token;
    ErrorPolicy policy;
    TraceFactory factory = [&](std::size_t job)
        -> std::unique_ptr<trace::TraceSource> {
        auto src = std::make_unique<trace::FtrTraceSource>(path_,
                                                           policy);
        if (job == 1)
            return std::make_unique<CancelMidStreamSource>(
                std::move(src), &token, 2000);
        return src;
    };
    SweepOptions phase1;
    phase1.jobs = 1;
    phase1.cancel = &token;
    phase1.journal_path = journal_;
    phase1.spec_hash = hashSpecs(specs);
    SweepResult killed = runSweepChecked(specs, factory, phase1);
    EXPECT_TRUE(killed.interrupted);
    ASSERT_TRUE(killed.jobs[0].ok());
    EXPECT_FALSE(killed.jobs[1].ok());
    EXPECT_EQ(killed.jobs[2].status, JobStatus::Cancelled);

    // Phase 2: resume from the journal. Job 0 must be restored
    // verbatim; the rest replay; the merged result — down to the
    // serialized JSON bytes — must equal the uninterrupted run.
    SweepOptions phase2;
    phase2.jobs = 1;
    phase2.resume_path = journal_;
    phase2.spec_hash = hashSpecs(specs);
    SweepResult resumed =
        runSweepChecked(specs, fileTraceFactory(path_), phase2);
    ASSERT_TRUE(resumed.allOk());
    EXPECT_TRUE(resumed.jobs[0].from_journal);
    EXPECT_FALSE(resumed.jobs[1].from_journal);

    std::vector<sim::RunOutput> merged;
    for (const JobResult &j : resumed.jobs)
        merged.push_back(j.output);
    std::ostringstream got_json;
    writeSweepJson(got_json, specs, merged);
    EXPECT_EQ(got_json.str(), want_json.str());
}

TEST_F(FtrSweepTest, SkipAccountingSurvivesTheJournalRoundTrip)
{
    // Damage one frame; under Skip every job sees the identical
    // post-skip stream and reports the identical loss.
    {
        trace::FtrTraceSource probe(path_);
        ASSERT_FALSE(probe.failed());
        ASSERT_GT(probe.frameIndex().size(), 3u);
        flipByteInFile(path_,
                       probe.frameIndex()[2].offset +
                           trace::ftr::kFrameHeaderBytes + 5);
    }
    std::vector<sim::RunSpec> specs = sweepSpecs();
    SweepOptions opts;
    opts.jobs = 1;
    opts.journal_path = journal_;
    opts.spec_hash = hashSpecs(specs);
    SweepResult run = runSweepChecked(
        specs, fileTraceFactory(path_, skipPolicy()), opts);
    ASSERT_TRUE(run.allOk());
    for (const JobResult &j : run.jobs)
        EXPECT_EQ(j.output.skipped_records, 512u);

    // The JSON report surfaces the loss...
    std::ostringstream os;
    writeSweepJson(os, specs, run);
    EXPECT_NE(os.str().find("\"skipped_records\": 512"),
              std::string::npos);

    // ...and a journal-only resume restores it bit-exactly.
    SweepOptions resume;
    resume.jobs = 1;
    resume.resume_path = journal_;
    resume.spec_hash = hashSpecs(specs);
    SweepResult restored = runSweepChecked(
        specs, fileTraceFactory(path_, skipPolicy()), resume);
    ASSERT_TRUE(restored.allOk());
    for (std::size_t i = 0; i < restored.jobs.size(); ++i) {
        EXPECT_TRUE(restored.jobs[i].from_journal) << i;
        EXPECT_EQ(encodeRunOutput(restored.jobs[i].output),
                  encodeRunOutput(run.jobs[i].output));
        EXPECT_EQ(restored.jobs[i].output.skipped_records, 512u);
    }
}

TEST_F(FtrSweepTest, StreamsWithinAPerJobMemoryBudget)
{
    std::vector<sim::RunSpec> specs = sweepSpecs();
    SweepOptions clean;
    clean.jobs = 1;
    std::vector<sim::RunOutput> want =
        runSweep(specs, fileTraceFactory(path_), clean);

    // Far smaller than the trace, comfortably above one frame.
    SweepOptions bounded;
    bounded.jobs = 2;
    bounded.job_mem_budget = 1u << 20;
    SweepResult run =
        runSweepChecked(specs, fileTraceFactory(path_), bounded);
    ASSERT_TRUE(run.allOk());
    for (std::size_t i = 0; i < run.jobs.size(); ++i)
        EXPECT_EQ(encodeRunOutput(run.jobs[i].output),
                  encodeRunOutput(want[i]));

    // A budget below one decoded frame is an isolated, structured
    // over-budget failure — not an OOM, not a wrong answer.
    SweepOptions starved;
    starved.jobs = 1;
    starved.max_retries = 0;
    starved.job_mem_budget = 2048;
    SweepResult oom =
        runSweepChecked(specs, fileTraceFactory(path_), starved);
    EXPECT_FALSE(oom.allOk());
    for (const JobResult &j : oom.jobs)
        EXPECT_EQ(j.status, JobStatus::OverBudget);
}

} // namespace
} // namespace exec
} // namespace assoc
