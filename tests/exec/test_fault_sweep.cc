/**
 * @file
 * Fault-isolated sweep tests: one failing job must not poison the
 * pool — every surviving slot stays bit-identical to the serial
 * run — transient errors get one deterministic retry, cancellation
 * marks unstarted jobs, and the checked JSON report carries per-job
 * status.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "exec/fault.h"
#include "exec/journal.h"
#include "exec/report.h"
#include "exec/sweep.h"

namespace assoc {
namespace exec {
namespace {

trace::AtumLikeConfig
smallTrace()
{
    trace::AtumLikeConfig cfg;
    cfg.segments = 1;
    cfg.refs_per_segment = 5000;
    return cfg;
}

std::vector<sim::RunSpec>
sweepSpecs()
{
    std::vector<sim::RunSpec> specs;
    for (unsigned a : {2u, 4u, 8u, 16u}) {
        sim::RunSpec spec;
        spec.hier = mem::HierarchyConfig{
            mem::CacheGeometry(4096, 16, 1),
            mem::CacheGeometry(65536, 32, a), true};
        core::SchemeSpec naive, mru;
        naive.kind = core::SchemeKind::Naive;
        mru.kind = core::SchemeKind::Mru;
        spec.schemes = {naive, mru,
                        core::SchemeSpec::paperPartial(a)};
        specs.push_back(spec);
    }
    return specs;
}

std::vector<std::string>
serialBaseline(const std::vector<sim::RunSpec> &specs,
               const trace::AtumLikeConfig &tcfg)
{
    SweepOptions opts;
    opts.jobs = 1;
    std::vector<sim::RunOutput> outs =
        runSweep(specs, atumTraceFactory(tcfg), opts);
    std::vector<std::string> enc;
    for (const sim::RunOutput &o : outs)
        enc.push_back(encodeRunOutput(o));
    return enc;
}

TEST(FaultSweep, AllOkMatchesTheSerialSweep)
{
    trace::AtumLikeConfig tcfg = smallTrace();
    std::vector<sim::RunSpec> specs = sweepSpecs();
    std::vector<std::string> want = serialBaseline(specs, tcfg);

    SweepOptions opts;
    opts.jobs = 3;
    SweepResult run =
        runSweepChecked(specs, atumTraceFactory(tcfg), opts);
    EXPECT_TRUE(run.allOk());
    EXPECT_FALSE(run.interrupted);
    ASSERT_EQ(run.jobs.size(), specs.size());
    for (std::size_t i = 0; i < run.jobs.size(); ++i) {
        EXPECT_EQ(run.jobs[i].attempts, 1u);
        EXPECT_FALSE(run.jobs[i].from_journal);
        EXPECT_EQ(encodeRunOutput(run.jobs[i].output), want[i]);
    }
}

TEST(FaultSweep, OneFailingJobIsIsolated)
{
    trace::AtumLikeConfig tcfg = smallTrace();
    std::vector<sim::RunSpec> specs = sweepSpecs();
    std::vector<std::string> want = serialBaseline(specs, tcfg);

    FaultPlan plan;
    plan.fail_job = 1;
    FaultInjector inject(plan);
    SweepOptions opts;
    opts.jobs = 2;
    opts.inject = &inject;
    SweepResult run =
        runSweepChecked(specs, atumTraceFactory(tcfg), opts);

    EXPECT_FALSE(run.allOk());
    EXPECT_EQ(run.failures(), 1u);
    ASSERT_EQ(run.jobs.size(), specs.size());
    for (std::size_t i = 0; i < run.jobs.size(); ++i) {
        if (i == 1) {
            EXPECT_EQ(run.jobs[i].status, JobStatus::Failed);
            EXPECT_EQ(run.jobs[i].error.code(), ErrorCode::Data);
            // Hard (non-transient) failures are not retried.
            EXPECT_EQ(run.jobs[i].attempts, 1u);
            continue;
        }
        ASSERT_TRUE(run.jobs[i].ok()) << i;
        EXPECT_EQ(encodeRunOutput(run.jobs[i].output), want[i])
            << "surviving slot " << i
            << " diverged from the serial run";
    }
    EXPECT_EQ(run.firstError().code(), ErrorCode::Data);
}

TEST(FaultSweep, TransientFailureIsRetriedOnce)
{
    trace::AtumLikeConfig tcfg = smallTrace();
    std::vector<sim::RunSpec> specs = sweepSpecs();
    std::vector<std::string> want = serialBaseline(specs, tcfg);

    FaultPlan plan;
    plan.fail_job = 2;
    plan.fail_attempts = 1; // only the first attempt fails
    plan.transient = true;
    FaultInjector inject(plan);
    SweepOptions opts;
    opts.jobs = 2;
    opts.max_retries = 1;
    opts.inject = &inject;
    SweepResult run =
        runSweepChecked(specs, atumTraceFactory(tcfg), opts);

    EXPECT_TRUE(run.allOk());
    EXPECT_EQ(inject.injected(), 1u);
    EXPECT_EQ(run.jobs[2].attempts, 2u);
    for (std::size_t i = 0; i < run.jobs.size(); ++i)
        EXPECT_EQ(encodeRunOutput(run.jobs[i].output), want[i]);
}

TEST(FaultSweep, RetriesAreExhaustedDeterministically)
{
    trace::AtumLikeConfig tcfg = smallTrace();
    std::vector<sim::RunSpec> specs = sweepSpecs();

    FaultPlan plan;
    plan.fail_job = 0;
    plan.transient = true; // fails every attempt
    FaultInjector inject(plan);
    SweepOptions opts;
    opts.jobs = 1;
    opts.max_retries = 2;
    opts.inject = &inject;
    SweepResult run =
        runSweepChecked(specs, atumTraceFactory(tcfg), opts);

    EXPECT_EQ(run.jobs[0].status, JobStatus::Failed);
    EXPECT_EQ(run.jobs[0].error.code(), ErrorCode::Io);
    EXPECT_EQ(run.jobs[0].attempts, 3u); // 1 try + 2 retries
    EXPECT_EQ(inject.injected(), 3u);
}

TEST(FaultSweep, HardErrorsRetryOnlyWhenAskedTo)
{
    trace::AtumLikeConfig tcfg = smallTrace();
    std::vector<sim::RunSpec> specs = sweepSpecs();

    FaultPlan plan;
    plan.fail_job = 0;
    plan.fail_attempts = 1; // a Data error, cured on attempt 2
    FaultInjector inject(plan);
    SweepOptions opts;
    opts.jobs = 1;
    opts.max_retries = 1;
    opts.retry_all_errors = true;
    opts.inject = &inject;
    SweepResult run =
        runSweepChecked(specs, atumTraceFactory(tcfg), opts);

    EXPECT_TRUE(run.jobs[0].ok());
    EXPECT_EQ(run.jobs[0].attempts, 2u);
}

TEST(FaultSweep, ThrowingLookupFailsOnlyItsJob)
{
    trace::AtumLikeConfig tcfg = smallTrace();
    std::vector<sim::RunSpec> specs = sweepSpecs();
    std::vector<std::string> want = serialBaseline(specs, tcfg);

    ThrowingAuditor auditor(10);
    specs[3].auditor = &auditor;
    SweepOptions opts;
    opts.jobs = 2;
    SweepResult run =
        runSweepChecked(specs, atumTraceFactory(tcfg), opts);

    EXPECT_EQ(run.jobs[3].status, JobStatus::Failed);
    EXPECT_EQ(run.jobs[3].error.code(), ErrorCode::Internal);
    for (std::size_t i = 0; i < 3; ++i) {
        ASSERT_TRUE(run.jobs[i].ok());
        EXPECT_EQ(encodeRunOutput(run.jobs[i].output), want[i]);
    }
}

TEST(FaultSweep, CancellationMarksUnstartedJobs)
{
    trace::AtumLikeConfig tcfg = smallTrace();
    std::vector<sim::RunSpec> specs = sweepSpecs();

    CancelToken token;
    FaultPlan plan;
    plan.cancel_after = 2;
    FaultInjector inject(plan, &token);
    SweepOptions opts;
    opts.jobs = 1; // serial: the cancel point is deterministic
    opts.inject = &inject;
    opts.cancel = &token;
    SweepResult run =
        runSweepChecked(specs, atumTraceFactory(tcfg), opts);

    EXPECT_TRUE(run.interrupted);
    EXPECT_TRUE(run.jobs[0].ok());
    EXPECT_TRUE(run.jobs[1].ok());
    EXPECT_EQ(run.jobs[2].status, JobStatus::Cancelled);
    EXPECT_EQ(run.jobs[3].status, JobStatus::Cancelled);
    EXPECT_EQ(run.cancelled(), 2u);
}

TEST(FaultSweep, CheckedJsonReportsPerJobStatus)
{
    trace::AtumLikeConfig tcfg = smallTrace();
    std::vector<sim::RunSpec> specs = sweepSpecs();

    FaultPlan plan;
    plan.fail_job = 1;
    FaultInjector inject(plan);
    SweepOptions opts;
    opts.jobs = 1;
    opts.inject = &inject;
    SweepResult run =
        runSweepChecked(specs, atumTraceFactory(tcfg), opts);

    std::ostringstream os;
    writeSweepJson(os, specs, run);
    const std::string json = os.str();
    EXPECT_NE(json.find("\"status\": \"ok\""), std::string::npos);
    EXPECT_NE(json.find("\"status\": \"failed\""),
              std::string::npos);
    EXPECT_NE(json.find("\"error\""), std::string::npos);
    EXPECT_NE(json.find("\"code\": \"data\""), std::string::npos);
    EXPECT_NE(json.find("\"failures\": 1"), std::string::npos);
    // Well-formedness: balanced braces and brackets.
    EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
              std::count(json.begin(), json.end(), '}'));
    EXPECT_EQ(std::count(json.begin(), json.end(), '['),
              std::count(json.begin(), json.end(), ']'));
}

TEST(FaultSweep, LegacyRunSweepStillThrowsOnFailure)
{
    // The unchecked entry keeps its contract: a failing job aborts
    // the sweep by rethrowing (callers opt into isolation).
    trace::AtumLikeConfig tcfg = smallTrace();
    std::vector<sim::RunSpec> specs = sweepSpecs();
    ThrowingAuditor auditor(1);
    specs[0].auditor = &auditor;
    SweepOptions opts;
    opts.jobs = 2;
    EXPECT_THROW(runSweep(specs, atumTraceFactory(tcfg), opts),
                 FatalError);
}

} // namespace
} // namespace exec
} // namespace assoc
