/**
 * @file
 * Integration tests of the parallel sweep engine: runSweep() with
 * several workers must produce results identical to the serial
 * loop, field for field, on a short 2-segment trace; runJobs() with
 * jobs=1 must execute inline in submission order; the progress
 * meter and JSON writer round out the reporting path.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <thread>

#include "exec/report.h"
#include "exec/sweep.h"
#include "exec/thread_pool.h"

namespace assoc {
namespace exec {
namespace {

trace::AtumLikeConfig
smallTrace()
{
    trace::AtumLikeConfig cfg;
    cfg.segments = 2;
    cfg.refs_per_segment = 30000;
    return cfg;
}

std::vector<sim::RunSpec>
sweepSpecs()
{
    std::vector<sim::RunSpec> specs;
    for (unsigned a : {2u, 4u, 8u, 16u}) {
        sim::RunSpec spec;
        spec.hier = mem::HierarchyConfig{
            mem::CacheGeometry(16384, 16, 1),
            mem::CacheGeometry(262144, 32, a), true};
        core::SchemeSpec naive, mru;
        naive.kind = core::SchemeKind::Naive;
        mru.kind = core::SchemeKind::Mru;
        spec.schemes = {naive, mru,
                        core::SchemeSpec::paperPartial(a)};
        if (a == 4)
            spec.with_distances = true;
        specs.push_back(spec);
    }
    return specs;
}

void
expectAccumEq(const MeanAccum &p, const MeanAccum &s)
{
    EXPECT_EQ(p.count(), s.count());
    EXPECT_EQ(p.sum(), s.sum());
    EXPECT_EQ(p.variance(), s.variance());
}

/** Field-for-field equality of a parallel and a serial output. */
void
expectOutputEq(const sim::RunOutput &p, const sim::RunOutput &s)
{
    EXPECT_EQ(p.stats.proc_refs, s.stats.proc_refs);
    EXPECT_EQ(p.stats.l1_hits, s.stats.l1_hits);
    EXPECT_EQ(p.stats.l1_misses, s.stats.l1_misses);
    EXPECT_EQ(p.stats.read_ins, s.stats.read_ins);
    EXPECT_EQ(p.stats.read_in_hits, s.stats.read_in_hits);
    EXPECT_EQ(p.stats.read_in_misses, s.stats.read_in_misses);
    EXPECT_EQ(p.stats.write_backs, s.stats.write_backs);
    EXPECT_EQ(p.stats.write_back_hits, s.stats.write_back_hits);
    EXPECT_EQ(p.stats.write_back_misses, s.stats.write_back_misses);
    EXPECT_EQ(p.stats.hint_correct, s.stats.hint_correct);
    EXPECT_EQ(p.stats.hint_wrong, s.stats.hint_wrong);
    EXPECT_EQ(p.stats.flushes, s.stats.flushes);

    ASSERT_EQ(p.names.size(), s.names.size());
    for (std::size_t i = 0; i < p.names.size(); ++i)
        EXPECT_EQ(p.names[i], s.names[i]);

    ASSERT_EQ(p.probes.size(), s.probes.size());
    for (std::size_t i = 0; i < p.probes.size(); ++i) {
        expectAccumEq(p.probes[i].read_in_hits,
                      s.probes[i].read_in_hits);
        expectAccumEq(p.probes[i].read_in_misses,
                      s.probes[i].read_in_misses);
        expectAccumEq(p.probes[i].write_backs,
                      s.probes[i].write_backs);
        EXPECT_EQ(p.probes[i].alias_hits, s.probes[i].alias_hits);
        EXPECT_EQ(p.probes[i].alias_wrong_way,
                  s.probes[i].alias_wrong_way);
    }

    ASSERT_EQ(p.f.size(), s.f.size());
    for (std::size_t i = 0; i < p.f.size(); ++i)
        EXPECT_EQ(p.f[i], s.f[i]);
}

TEST(Sweep, ParallelMatchesSerialLoop)
{
    const trace::AtumLikeConfig tcfg = smallTrace();
    const std::vector<sim::RunSpec> specs = sweepSpecs();

    // The old serial loop, verbatim.
    std::vector<sim::RunOutput> serial;
    for (const sim::RunSpec &spec : specs) {
        trace::AtumLikeGenerator gen(tcfg);
        serial.push_back(sim::runTrace(gen, spec));
    }

    SweepOptions opts;
    opts.jobs = 4;
    std::vector<sim::RunOutput> parallel =
        runSweep(specs, atumTraceFactory(tcfg), opts);

    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i)
        expectOutputEq(parallel[i], serial[i]);
}

TEST(Sweep, JobsOneIsTheSerialPath)
{
    const trace::AtumLikeConfig tcfg = smallTrace();
    const std::vector<sim::RunSpec> specs = sweepSpecs();

    SweepOptions serial_opts;
    serial_opts.jobs = 1;
    std::vector<sim::RunOutput> one =
        runSweep(specs, atumTraceFactory(tcfg), serial_opts);

    SweepOptions par_opts;
    par_opts.jobs = 3;
    std::vector<sim::RunOutput> many =
        runSweep(specs, atumTraceFactory(tcfg), par_opts);

    ASSERT_EQ(one.size(), many.size());
    for (std::size_t i = 0; i < one.size(); ++i)
        expectOutputEq(many[i], one[i]);
}

TEST(Sweep, ResultsComeBackInSubmissionOrder)
{
    const trace::AtumLikeConfig tcfg = smallTrace();
    const std::vector<sim::RunSpec> specs = sweepSpecs();
    SweepOptions opts;
    opts.jobs = 4;
    std::vector<sim::RunOutput> outs =
        runSweep(specs, atumTraceFactory(tcfg), opts);
    ASSERT_EQ(outs.size(), 4u);
    // Each spec carries a different L2 associativity; the Naive
    // scheme's worst-case probe count reveals which run landed in
    // which slot.
    for (std::size_t i = 0; i < outs.size(); ++i)
        EXPECT_EQ(outs[i].names[0], "Naive") << i;
    // with_distances was requested only for the a=4 spec (slot 1).
    EXPECT_TRUE(outs[0].f.empty());
    EXPECT_FALSE(outs[1].f.empty());
    EXPECT_TRUE(outs[2].f.empty());
    EXPECT_TRUE(outs[3].f.empty());
}

TEST(Sweep, RunJobsSerialExecutesInOrder)
{
    std::vector<int> order;
    std::vector<std::function<void()>> jobs;
    for (int i = 0; i < 8; ++i)
        jobs.push_back([&order, i] { order.push_back(i); });
    SweepOptions opts;
    opts.jobs = 1;
    runJobs(std::move(jobs), opts);
    ASSERT_EQ(order.size(), 8u);
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(Sweep, RunJobsTicksProgress)
{
    ProgressMeter meter(16);
    std::vector<std::function<void()>> jobs;
    for (int i = 0; i < 16; ++i)
        jobs.push_back([] {});
    SweepOptions opts;
    opts.jobs = 4;
    opts.progress = &meter;
    runJobs(std::move(jobs), opts);
    EXPECT_EQ(meter.completed(), 16u);
    EXPECT_EQ(meter.total(), 16u);
}

TEST(Sweep, RunJobsPropagatesExceptions)
{
    std::vector<std::function<void()>> jobs;
    jobs.push_back([] {});
    jobs.push_back([] { throw std::runtime_error("job failed"); });
    jobs.push_back([] {});
    SweepOptions opts;
    opts.jobs = 2;
    EXPECT_THROW(runJobs(std::move(jobs), opts), std::runtime_error);
}

TEST(Report, JsonEscapeHandlesSpecials)
{
    EXPECT_EQ(jsonEscape("plain"), "plain");
    EXPECT_EQ(jsonEscape("a\"b"), "a\\\"b");
    EXPECT_EQ(jsonEscape("a\\b"), "a\\\\b");
    EXPECT_EQ(jsonEscape("a\nb"), "a\\nb");
    EXPECT_EQ(jsonEscape(std::string("a\x01") + "b"), "a\\u0001b");
}

TEST(Report, SweepJsonCarriesRunsAndSchemes)
{
    trace::AtumLikeConfig tcfg = smallTrace();
    tcfg.refs_per_segment = 5000;
    std::vector<sim::RunSpec> specs(1);
    core::SchemeSpec mru;
    mru.kind = core::SchemeKind::Mru;
    specs[0].schemes = {mru};
    SweepOptions opts;
    opts.jobs = 1;
    std::vector<sim::RunOutput> outs =
        runSweep(specs, atumTraceFactory(tcfg), opts);

    std::ostringstream os;
    writeSweepJson(os, specs, outs);
    const std::string json = os.str();
    EXPECT_NE(json.find("\"runs\""), std::string::npos);
    EXPECT_NE(json.find("\"l1\": \"16K-16\""), std::string::npos);
    EXPECT_NE(json.find("\"name\": \"MRU\""), std::string::npos);
    EXPECT_NE(json.find("\"local_miss_ratio\""), std::string::npos);
    // Balanced braces and brackets (a cheap well-formedness check).
    EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
              std::count(json.begin(), json.end(), '}'));
    EXPECT_EQ(std::count(json.begin(), json.end(), '['),
              std::count(json.begin(), json.end(), ']'));
}

TEST(Report, ProgressMeterCountsAcrossThreads)
{
    ProgressMeter meter(100);
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
        threads.emplace_back([&meter] {
            for (int i = 0; i < 25; ++i)
                meter.tick();
        });
    }
    for (auto &th : threads)
        th.join();
    EXPECT_EQ(meter.completed(), 100u);
}

} // namespace
} // namespace exec
} // namespace assoc
