/**
 * @file
 * Checkpoint-journal tests: bit-exact encode/decode of RunOutputs,
 * tolerant journal reading (torn and corrupt lines), spec-hash
 * validation, and the headline resume property — a cancelled sweep
 * resumed from its journal merges to a result bit-identical to the
 * uninterrupted run, including across a SIGINT.
 */

#include <gtest/gtest.h>

#include <csignal>
#include <cstdio>
#include <fstream>

#include "exec/fault.h"
#include "exec/journal.h"
#include "exec/sweep.h"

namespace assoc {
namespace exec {
namespace {

trace::AtumLikeConfig
smallTrace()
{
    trace::AtumLikeConfig cfg;
    cfg.segments = 1;
    cfg.refs_per_segment = 5000;
    return cfg;
}

std::vector<sim::RunSpec>
sweepSpecs()
{
    std::vector<sim::RunSpec> specs;
    for (unsigned a : {2u, 4u, 8u}) {
        sim::RunSpec spec;
        spec.hier = mem::HierarchyConfig{
            mem::CacheGeometry(4096, 16, 1),
            mem::CacheGeometry(65536, 32, a), true};
        core::SchemeSpec naive, mru;
        naive.kind = core::SchemeKind::Naive;
        mru.kind = core::SchemeKind::Mru;
        spec.schemes = {naive, mru,
                        core::SchemeSpec::paperPartial(a)};
        if (a == 4)
            spec.with_distances = true;
        specs.push_back(spec);
    }
    return specs;
}

sim::RunOutput
oneOutput(const trace::AtumLikeConfig &tcfg, const sim::RunSpec &spec)
{
    trace::AtumLikeGenerator gen(tcfg);
    return sim::runTrace(gen, spec);
}

class JournalTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        // ctest runs every case as its own process, concurrently:
        // the path must be unique per test, not just per binary.
        path_ = ::testing::TempDir() + "journal_test_" +
                ::testing::UnitTest::GetInstance()
                    ->current_test_info()
                    ->name() +
                ".journal";
        std::remove(path_.c_str());
    }

    void TearDown() override { std::remove(path_.c_str()); }

    std::string path_;
};

TEST(JournalCodec, RoundTripIsBitExact)
{
    trace::AtumLikeConfig tcfg = smallTrace();
    std::vector<sim::RunSpec> specs = sweepSpecs();
    for (const sim::RunSpec &spec : specs) {
        sim::RunOutput out = oneOutput(tcfg, spec);
        std::string payload = encodeRunOutput(out);
        Expected<sim::RunOutput> back = decodeRunOutput(payload);
        ASSERT_TRUE(back.ok()) << back.error().text();
        // Re-encoding the decoded output must reproduce the payload
        // byte for byte: every double survives via its bit pattern.
        EXPECT_EQ(encodeRunOutput(back.value()), payload);
    }
}

TEST(JournalCodec, SkippedRecordsSurviveTheRoundTrip)
{
    trace::AtumLikeConfig tcfg = smallTrace();
    sim::RunOutput out = oneOutput(tcfg, sweepSpecs()[0]);
    out.skipped_records = 65536; // a damaged-trace run
    std::string payload = encodeRunOutput(out);
    Expected<sim::RunOutput> back = decodeRunOutput(payload);
    ASSERT_TRUE(back.ok()) << back.error().text();
    EXPECT_EQ(back.value().skipped_records, 65536u);
    EXPECT_EQ(encodeRunOutput(back.value()), payload);
}

TEST(JournalCodec, V1PayloadsDecodeWithZeroSkips)
{
    // Journals written before skip accounting carry no "skips"
    // field; they must keep decoding (as an undamaged run) so a
    // resume across the version bump still works.
    trace::AtumLikeConfig tcfg = smallTrace();
    sim::RunOutput out = oneOutput(tcfg, sweepSpecs()[0]);
    out.skipped_records = 7;
    std::string payload = encodeRunOutput(out);
    std::size_t at = payload.rfind(" skips ");
    ASSERT_NE(at, std::string::npos);
    std::string v1 = "v1" + payload.substr(2, at - 2);
    Expected<sim::RunOutput> back = decodeRunOutput(v1);
    ASSERT_TRUE(back.ok()) << back.error().text();
    EXPECT_EQ(back.value().skipped_records, 0u);
    // A v2 payload with the skips field torn off is corrupt.
    EXPECT_FALSE(decodeRunOutput(payload.substr(0, at)).ok());
}

TEST(JournalCodec, RejectsGarbage)
{
    EXPECT_FALSE(decodeRunOutput("").ok());
    EXPECT_FALSE(decodeRunOutput("v1 nonsense").ok());
    EXPECT_FALSE(decodeRunOutput("v2 stats 1 2 3").ok());
}

TEST(JournalCodec, HashSpecsSeparatesSweeps)
{
    std::vector<sim::RunSpec> a = sweepSpecs();
    std::vector<sim::RunSpec> b = sweepSpecs();
    EXPECT_EQ(hashSpecs(a, 7), hashSpecs(b, 7));
    EXPECT_NE(hashSpecs(a, 7), hashSpecs(a, 8)); // trace identity
    b[1].wb_optimization = !b[1].wb_optimization;
    EXPECT_NE(hashSpecs(a, 7), hashSpecs(b, 7)); // spec identity
}

TEST_F(JournalTest, WriteThenReadRestoresEveryRecord)
{
    trace::AtumLikeConfig tcfg = smallTrace();
    std::vector<sim::RunSpec> specs = sweepSpecs();
    std::uint64_t hash = hashSpecs(specs, tcfg.seed);

    JournalWriter w;
    ASSERT_TRUE(w.open(path_, hash, specs.size(), false).ok());
    std::vector<std::string> payloads;
    for (std::size_t i = 0; i < specs.size(); ++i) {
        sim::RunOutput out = oneOutput(tcfg, specs[i]);
        payloads.push_back(encodeRunOutput(out));
        ASSERT_TRUE(w.append(i, out).ok());
    }

    Expected<JournalData> data = readJournal(path_);
    ASSERT_TRUE(data.ok()) << data.error().text();
    EXPECT_EQ(data.value().spec_hash, hash);
    EXPECT_EQ(data.value().jobs, specs.size());
    EXPECT_EQ(data.value().dropped_lines, 0u);
    ASSERT_EQ(data.value().entries.size(), specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i)
        EXPECT_EQ(encodeRunOutput(data.value().entries.at(i)),
                  payloads[i]);
}

TEST_F(JournalTest, TornFinalLineIsTolerated)
{
    trace::AtumLikeConfig tcfg = smallTrace();
    std::vector<sim::RunSpec> specs = sweepSpecs();

    JournalWriter w;
    ASSERT_TRUE(w.open(path_, 1, specs.size(), false).ok());
    ASSERT_TRUE(w.append(0, oneOutput(tcfg, specs[0])).ok());
    // Simulate a SIGKILL mid-append: half a record, no newline.
    std::ofstream out(path_, std::ios::app);
    out << "job 1 d=00000000";
    out.close();

    Expected<JournalData> data = readJournal(path_);
    ASSERT_TRUE(data.ok()) << data.error().text();
    EXPECT_EQ(data.value().entries.size(), 1u);
    EXPECT_EQ(data.value().dropped_lines, 1u);
}

TEST_F(JournalTest, CorruptRecordIsDropped)
{
    trace::AtumLikeConfig tcfg = smallTrace();
    std::vector<sim::RunSpec> specs = sweepSpecs();

    JournalWriter w;
    ASSERT_TRUE(w.open(path_, 1, specs.size(), false).ok());
    ASSERT_TRUE(w.append(0, oneOutput(tcfg, specs[0])).ok());
    ASSERT_TRUE(w.append(1, oneOutput(tcfg, specs[1])).ok());

    // Flip one payload byte of the job-0 line: its digest no longer
    // matches, so only job 1 survives.
    std::ifstream in(path_);
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    in.close();
    std::size_t at = text.find("job 0");
    ASSERT_NE(at, std::string::npos);
    text[text.find(' ', at + 10) + 1] ^= 1;
    std::ofstream out(path_, std::ios::trunc);
    out << text;
    out.close();

    Expected<JournalData> data = readJournal(path_);
    ASSERT_TRUE(data.ok()) << data.error().text();
    EXPECT_EQ(data.value().entries.count(0), 0u);
    EXPECT_EQ(data.value().entries.count(1), 1u);
    EXPECT_GE(data.value().dropped_lines, 1u);
}

TEST_F(JournalTest, MissingFileIsAnError)
{
    Expected<JournalData> data = readJournal(path_);
    ASSERT_FALSE(data.ok());
    EXPECT_EQ(data.error().code(), ErrorCode::Io);
}

TEST_F(JournalTest, MissingHeaderIsAnError)
{
    std::ofstream out(path_);
    out << "not a journal\n";
    out.close();
    Expected<JournalData> data = readJournal(path_);
    ASSERT_FALSE(data.ok());
    EXPECT_EQ(data.error().code(), ErrorCode::Data);
}

TEST_F(JournalTest, CancelledSweepResumesBitIdentically)
{
    trace::AtumLikeConfig tcfg = smallTrace();
    std::vector<sim::RunSpec> specs = sweepSpecs();
    std::uint64_t hash = hashSpecs(specs, tcfg.seed);

    // Reference: the uninterrupted serial sweep.
    SweepOptions ref_opts;
    ref_opts.jobs = 1;
    std::vector<sim::RunOutput> want =
        runSweep(specs, atumTraceFactory(tcfg), ref_opts);

    // Phase 1: cancel after one completed job, journaling.
    CancelToken token;
    FaultPlan plan;
    plan.cancel_after = 1;
    FaultInjector inject(plan, &token);
    SweepOptions opts1;
    opts1.jobs = 1; // deterministic cancel point
    opts1.inject = &inject;
    opts1.cancel = &token;
    opts1.journal_path = path_;
    opts1.spec_hash = hash;
    SweepResult first =
        runSweepChecked(specs, atumTraceFactory(tcfg), opts1);
    EXPECT_TRUE(first.interrupted);
    EXPECT_EQ(first.cancelled(), specs.size() - 1);

    // Phase 2: resume. Restored slots come from the journal, the
    // rest run now; the merge must match the clean run bit for bit.
    SweepOptions opts2;
    opts2.jobs = 2;
    opts2.resume_path = path_;
    opts2.spec_hash = hash;
    SweepResult second =
        runSweepChecked(specs, atumTraceFactory(tcfg), opts2);
    EXPECT_FALSE(second.interrupted);
    EXPECT_EQ(second.resumed, 1u);
    ASSERT_EQ(second.jobs.size(), specs.size());
    EXPECT_TRUE(second.jobs[0].from_journal);
    for (std::size_t i = 0; i < specs.size(); ++i) {
        ASSERT_TRUE(second.jobs[i].ok());
        EXPECT_EQ(encodeRunOutput(second.jobs[i].output),
                  encodeRunOutput(want[i]))
            << "slot " << i;
    }
}

TEST_F(JournalTest, ResumeRejectsASpecHashMismatch)
{
    trace::AtumLikeConfig tcfg = smallTrace();
    std::vector<sim::RunSpec> specs = sweepSpecs();

    JournalWriter w;
    ASSERT_TRUE(w.open(path_, 0xdead, specs.size(), false).ok());
    ASSERT_TRUE(w.append(0, oneOutput(tcfg, specs[0])).ok());

    SweepOptions opts;
    opts.jobs = 1;
    opts.resume_path = path_;
    opts.spec_hash = 0xbeef; // not what the journal was stamped with
    EXPECT_THROW(runSweepChecked(specs, atumTraceFactory(tcfg), opts),
                 ErrorException);
}

TEST_F(JournalTest, SigintDrainsAndCheckpoints)
{
    trace::AtumLikeConfig tcfg = smallTrace();
    std::vector<sim::RunSpec> specs = sweepSpecs();
    std::uint64_t hash = hashSpecs(specs, tcfg.seed);

    installSigintHandler();
    clearSigintForTests();
    std::raise(SIGINT); // "the user hit ^C before the sweep ran"

    CancelToken token;
    token.watchSigint();
    EXPECT_TRUE(token.cancelled());

    SweepOptions opts;
    opts.jobs = 1;
    opts.cancel = &token;
    opts.journal_path = path_;
    opts.spec_hash = hash;
    SweepResult run =
        runSweepChecked(specs, atumTraceFactory(tcfg), opts);
    clearSigintForTests();

    // Everything was cancelled before starting, cleanly.
    EXPECT_TRUE(run.interrupted);
    EXPECT_EQ(run.cancelled(), specs.size());

    // The journal is still a valid (empty) checkpoint, so a resume
    // runs the whole sweep and matches the clean result.
    SweepOptions opts2;
    opts2.jobs = 1;
    opts2.resume_path = path_;
    opts2.spec_hash = hash;
    SweepResult again =
        runSweepChecked(specs, atumTraceFactory(tcfg), opts2);
    EXPECT_EQ(again.resumed, 0u);
    EXPECT_TRUE(again.allOk());
}

} // namespace
} // namespace exec
} // namespace assoc
