/**
 * @file
 * Unit tests of the work-stealing thread pool: every task runs
 * exactly once, exceptions propagate out of wait(), the pool is
 * reusable across batches, and a 10k no-op stress run completes.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <stdexcept>
#include <thread>

#include "exec/thread_pool.h"

namespace assoc {
namespace exec {
namespace {

TEST(ThreadPool, DefaultThreadsIsPositive)
{
    EXPECT_GE(ThreadPool::defaultThreads(), 1u);
}

TEST(ThreadPool, RunsEveryTaskExactlyOnce)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.threadCount(), 4u);
    constexpr int kTasks = 1000;
    std::vector<std::atomic<int>> hits(kTasks);
    for (auto &h : hits)
        h = 0;
    for (int i = 0; i < kTasks; ++i)
        pool.submit([&hits, i] { ++hits[i]; });
    pool.wait();
    for (int i = 0; i < kTasks; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "task " << i;
    EXPECT_EQ(pool.completedTasks(), static_cast<std::uint64_t>(kTasks));
}

TEST(ThreadPool, WaitWithNoTasksReturnsImmediately)
{
    ThreadPool pool(2);
    pool.wait();
    EXPECT_EQ(pool.completedTasks(), 0u);
}

TEST(ThreadPool, ExceptionPropagatesFromWait)
{
    ThreadPool pool(2);
    std::atomic<int> ran{0};
    pool.submit([&] { ++ran; });
    pool.submit([] { throw std::runtime_error("boom"); });
    pool.submit([&] { ++ran; });
    EXPECT_THROW(pool.wait(), std::runtime_error);
    // The failure never cancels sibling tasks.
    EXPECT_EQ(ran.load(), 2);
}

TEST(ThreadPool, ExceptionIsClearedAfterRethrow)
{
    ThreadPool pool(2);
    pool.submit([] { throw std::runtime_error("once"); });
    EXPECT_THROW(pool.wait(), std::runtime_error);
    pool.submit([] {});
    EXPECT_NO_THROW(pool.wait());
}

TEST(ThreadPool, ReusableAcrossBatches)
{
    ThreadPool pool(3);
    std::atomic<int> count{0};
    for (int batch = 0; batch < 5; ++batch) {
        for (int i = 0; i < 50; ++i)
            pool.submit([&] { ++count; });
        pool.wait();
        EXPECT_EQ(count.load(), (batch + 1) * 50);
    }
}

TEST(ThreadPool, StressTenThousandNoops)
{
    ThreadPool pool(8);
    std::atomic<int> count{0};
    for (int i = 0; i < 10000; ++i)
        pool.submit([&] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 10000);
}

TEST(ThreadPool, UnevenTasksAllComplete)
{
    // A few slow tasks seeded onto some deques force the other
    // workers to steal the rest.
    ThreadPool pool(4);
    std::atomic<int> count{0};
    for (int i = 0; i < 64; ++i) {
        pool.submit([&count, i] {
            if (i % 16 == 0)
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(20));
            ++count;
        });
    }
    pool.wait();
    EXPECT_EQ(count.load(), 64);
}

TEST(ThreadPool, TasksRunOnWorkerThreads)
{
    ThreadPool pool(2);
    std::mutex mu;
    std::set<std::thread::id> ids;
    for (int i = 0; i < 32; ++i) {
        pool.submit([&] {
            std::lock_guard<std::mutex> lock(mu);
            ids.insert(std::this_thread::get_id());
        });
    }
    pool.wait();
    EXPECT_FALSE(ids.empty());
    EXPECT_EQ(ids.count(std::this_thread::get_id()), 0u);
}

TEST(ThreadPool, DestructorDrainsQueuedTasks)
{
    std::atomic<int> count{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 100; ++i)
            pool.submit([&] { ++count; });
        // No wait(): the destructor must finish the queue.
    }
    EXPECT_EQ(count.load(), 100);
}

} // namespace
} // namespace exec
} // namespace assoc
