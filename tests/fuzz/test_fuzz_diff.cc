#include <gtest/gtest.h>

#include "check/fuzz.h"
#include "util/logging.h"

namespace assoc {
namespace check {
namespace {

TEST(BugInjectionParsing, KnownNamesAndRejection)
{
    EXPECT_EQ(bugInjectionFromString("none"), BugInjection::None);
    EXPECT_EQ(bugInjectionFromString("naive-skip"),
              BugInjection::NaiveSkip);
    EXPECT_EQ(bugInjectionFromString("mru-undercount"),
              BugInjection::MruUndercount);
    EXPECT_EQ(bugInjectionFromString("partial-filter"),
              BugInjection::PartialFilter);
    EXPECT_EQ(bugInjectionFromString("memo-stale"),
              BugInjection::MemoStale);
    EXPECT_THROW(bugInjectionFromString("bogus"), FatalError);
}

TEST(SampleCase, IsAPureFunctionOfSeedAndIndex)
{
    const FuzzCase a = sampleCase(42, 7);
    const FuzzCase b = sampleCase(42, 7);
    EXPECT_EQ(a.case_seed, b.case_seed);
    EXPECT_EQ(a.tag_bits, b.tag_bits);
    EXPECT_EQ(a.describe(), b.describe());
    ASSERT_EQ(a.refs.size(), b.refs.size());
    EXPECT_TRUE(std::equal(a.refs.begin(), a.refs.end(),
                           b.refs.begin()));
}

TEST(SampleCase, DifferentIndicesGiveDifferentCases)
{
    const FuzzCase a = sampleCase(42, 0);
    const FuzzCase b = sampleCase(42, 1);
    EXPECT_NE(a.case_seed, b.case_seed);
    // The traces are independent draws; identical streams would
    // mean the seed expansion is broken.
    EXPECT_FALSE(a.refs.size() == b.refs.size() &&
                 std::equal(a.refs.begin(), a.refs.end(),
                            b.refs.begin()));
}

TEST(SampleCase, AlwaysIncludesTheCoreSchemes)
{
    for (std::uint64_t i = 0; i < 20; ++i) {
        const FuzzCase c = sampleCase(1, i);
        ASSERT_GE(c.schemes.size(), 4u);
        EXPECT_EQ(c.schemes[0].kind, core::SchemeKind::Traditional);
        EXPECT_EQ(c.schemes[1].kind, core::SchemeKind::Naive);
        EXPECT_EQ(c.schemes[2].kind, core::SchemeKind::Mru);
        for (const core::SchemeSpec &s : c.schemes)
            EXPECT_EQ(s.tag_bits, c.tag_bits);
    }
}

TEST(RunCase, CleanOnSampledCases)
{
    for (std::uint64_t i = 0; i < 15; ++i) {
        const FuzzCase c = sampleCase(5, i);
        const CaseResult r = runCase(c);
        EXPECT_TRUE(r.log.ok())
            << "case " << i << ": " << c.describe() << "\n  "
            << (r.log.messages().empty() ? ""
                                         : r.log.messages().front());
        EXPECT_GT(r.accesses, 0u) << "case " << i;
    }
}

TEST(RunCase, DigestIsReproducible)
{
    const FuzzCase c = sampleCase(9, 3);
    const CaseResult a = runCase(c);
    const CaseResult b = runCase(c);
    EXPECT_EQ(a.digest, b.digest);
    EXPECT_EQ(a.accesses, b.accesses);
}

TEST(RunFuzz, CampaignIsDeterministic)
{
    FuzzOptions opt;
    opt.seed = 11;
    opt.iterations = 10;
    const FuzzSummary a = runFuzz(opt);
    const FuzzSummary b = runFuzz(opt);
    EXPECT_TRUE(a.ok());
    EXPECT_EQ(a.digest, b.digest);
    EXPECT_EQ(a.accesses, b.accesses);
    EXPECT_EQ(a.cases_run, 10u);

    opt.seed = 12;
    const FuzzSummary other = runFuzz(opt);
    EXPECT_NE(a.digest, other.digest);
}

TEST(RunFuzz, CatchesAnInjectedNaiveBug)
{
    FuzzOptions opt;
    opt.seed = 3;
    opt.iterations = 50;
    opt.inject = BugInjection::NaiveSkip;
    const FuzzSummary sum = runFuzz(opt);
    ASSERT_FALSE(sum.ok());
    const FuzzFailure &f = sum.failures.front();
    EXPECT_FALSE(f.messages.empty());
    EXPECT_FALSE(f.minimized.empty());
    // The minimized trace must still reproduce the failure.
    const FuzzCase c = sampleCase(opt.seed, f.index);
    EXPECT_FALSE(
        runCase(c, opt.inject, &f.minimized).log.ok());
    // And the repro command replays exactly the failing case.
    EXPECT_EQ(reproCommand(opt.seed, f.index),
              "fuzz_diff --seed=3 --config=" +
                  std::to_string(f.index));
    FuzzOptions replay;
    replay.seed = opt.seed;
    replay.have_only_case = true;
    replay.only_case = f.index;
    replay.inject = opt.inject;
    replay.minimize = false;
    EXPECT_FALSE(runFuzz(replay).ok());
}

TEST(RunFuzz, CatchesAnInjectedStaleMemoBug)
{
    // The memo-consistency invariant: a memo table that serves a
    // rotated (stale) way must be flagged by the campaign even
    // though hit/miss verdicts stay plausible per access.
    FuzzOptions opt;
    opt.seed = 3;
    opt.iterations = 50;
    opt.inject = BugInjection::MemoStale;
    const FuzzSummary sum = runFuzz(opt);
    ASSERT_FALSE(sum.ok());
    const FuzzFailure &f = sum.failures.front();
    EXPECT_FALSE(f.messages.empty());
    const FuzzCase c = sampleCase(opt.seed, f.index);
    EXPECT_FALSE(runCase(c, opt.inject, &f.minimized).log.ok());
}

TEST(RunFuzz, ReplayOfACleanCasePasses)
{
    FuzzOptions opt;
    opt.seed = 3;
    opt.have_only_case = true;
    opt.only_case = 42;
    const FuzzSummary sum = runFuzz(opt);
    EXPECT_TRUE(sum.ok());
    EXPECT_EQ(sum.cases_run, 1u);
}

TEST(DigestMix, OrderSensitive)
{
    std::uint64_t a = kDigestInit, b = kDigestInit;
    digestMix(a, 1);
    digestMix(a, 2);
    digestMix(b, 2);
    digestMix(b, 1);
    EXPECT_NE(a, b);
}

TEST(FormatRef, RendersTypesAndAddresses)
{
    trace::MemRef r;
    r.addr = 0x1234;
    r.type = trace::RefType::Write;
    r.pid = 2;
    EXPECT_EQ(formatRef(r), "W 0x1234 pid=2");
    EXPECT_EQ(formatRef(trace::MemRef::flush()), "FLUSH");
}

} // namespace
} // namespace check
} // namespace assoc
