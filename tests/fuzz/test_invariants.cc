#include <gtest/gtest.h>

#include <memory>
#include <numeric>
#include <vector>

#include "check/invariants.h"
#include "core/mru_lookup.h"
#include "core/partial_lookup.h"
#include "core/way_memo.h"
#include "sim/runner.h"
#include "trace/synthetic.h"
#include "util/rng.h"

namespace assoc {
namespace check {
namespace {

TEST(ViolationLog, CapsMessagesButCountsEverything)
{
    ViolationLog log(3);
    EXPECT_TRUE(log.ok());
    for (int i = 0; i < 10; ++i)
        log.add("violation " + std::to_string(i));
    EXPECT_FALSE(log.ok());
    EXPECT_EQ(log.count(), 10u);
    EXPECT_EQ(log.messages().size(), 3u);
    log.clear();
    EXPECT_TRUE(log.ok());
    EXPECT_EQ(log.count(), 0u);
}

TEST(ProbeBoundsFor, MatchesSectionTwoCostModel)
{
    core::TraditionalLookup trad;
    ProbeBounds b = probeBoundsFor(trad, 8);
    EXPECT_EQ(b.hit_min, 1u);
    EXPECT_EQ(b.hit_max, 1u);
    EXPECT_EQ(b.miss_min, 1u);
    EXPECT_EQ(b.miss_max, 1u);

    core::NaiveLookup naive;
    b = probeBoundsFor(naive, 8);
    EXPECT_EQ(b.hit_min, 1u);
    EXPECT_EQ(b.hit_max, 8u);
    EXPECT_EQ(b.miss_min, 8u); // a miss always scans all a ways
    EXPECT_EQ(b.miss_max, 8u);

    core::MruLookup mru(0);
    b = probeBoundsFor(mru, 8);
    EXPECT_EQ(b.hit_min, 2u); // list read + first probe
    EXPECT_EQ(b.hit_max, 9u);
    EXPECT_EQ(b.miss_min, 9u); // list read + all a ways
    EXPECT_EQ(b.miss_max, 9u);

    core::PartialConfig pcfg;
    pcfg.tag_bits = 16;
    pcfg.field_bits = 4;
    pcfg.subsets = 2;
    core::PartialLookup partial(pcfg);
    b = probeBoundsFor(partial, 8);
    EXPECT_EQ(b.hit_min, 2u);  // first subset's step 1 + one full
    EXPECT_EQ(b.hit_max, 10u); // all step 1s + a full compares
    EXPECT_EQ(b.miss_min, 2u); // s step-1 probes, no false matches
    EXPECT_EQ(b.miss_max, 10u);
}

TEST(ProbeBoundsFor, MemoSchemesFollowTheirDisciplines)
{
    // WayMemo inherits its underlying scheme's bounds with the hit
    // floor dropped to zero (a memo hit skips every probe).
    core::WayMemoConfig cfg;
    core::WayMemoLookup over_naive(
        std::make_unique<core::NaiveLookup>(), cfg);
    ProbeBounds b = probeBoundsFor(over_naive, 8);
    EXPECT_EQ(b.hit_min, 0u);
    EXPECT_EQ(b.hit_max, 8u);
    EXPECT_EQ(b.miss_min, 8u);
    EXPECT_EQ(b.miss_max, 8u);

    core::WayMemoLookup over_mru(std::make_unique<core::MruLookup>(0),
                                 cfg);
    b = probeBoundsFor(over_mru, 8);
    EXPECT_EQ(b.hit_min, 0u);
    EXPECT_EQ(b.hit_max, 9u);
    EXPECT_EQ(b.miss_max, 9u);

    // WayPredict: one probe on a correct prediction, two otherwise
    // (one when there is no second probe left to make).
    core::WayPredictLookup wp;
    b = probeBoundsFor(wp, 8);
    EXPECT_EQ(b.hit_min, 1u);
    EXPECT_EQ(b.hit_max, 2u);
    EXPECT_EQ(b.miss_min, 2u);
    EXPECT_EQ(b.miss_max, 2u);
    b = probeBoundsFor(wp, 1);
    EXPECT_EQ(b.hit_max, 1u);
    EXPECT_EQ(b.miss_max, 1u);
}

/** A random but well-formed set snapshot for reference checks. */
struct SetState
{
    std::vector<std::uint32_t> tags;
    std::vector<std::uint8_t> valid;
    std::vector<std::uint8_t> order;

    core::LookupInput
    input(std::uint32_t incoming) const
    {
        core::LookupInput in;
        in.assoc = static_cast<unsigned>(tags.size());
        in.stored_tags = tags.data();
        in.valid = valid.data();
        in.mru_order = order.data();
        in.incoming_tag = incoming;
        return in;
    }

    static SetState
    random(Pcg32 &rng, unsigned a, unsigned tag_bits)
    {
        SetState s;
        s.tags.resize(a);
        s.valid.resize(a);
        s.order.resize(a);
        std::iota(s.order.begin(), s.order.end(), 0);
        // Fisher-Yates on the recency order.
        for (unsigned i = a - 1; i > 0; --i)
            std::swap(s.order[i], s.order[rng.below(i + 1)]);
        const std::uint32_t mask =
            static_cast<std::uint32_t>(maskBits(tag_bits));
        for (unsigned w = 0; w < a; ++w) {
            // Small tag space so hits and duplicates actually occur.
            s.tags[w] = rng.below(16) & mask;
            s.valid[w] = rng.chance(0.8) ? 1 : 0;
        }
        // Invalid frames must sit in a suffix of the recency order
        // (the WriteBackCache invariant the schemes rely on).
        std::stable_partition(s.order.begin(), s.order.end(),
                              [&s](std::uint8_t w) {
                                  return s.valid[w] != 0;
                              });
        return s;
    }
};

TEST(ReferenceLookup, AgreesWithProductionStrategies)
{
    Pcg32 rng(0x5eed1);
    std::vector<std::unique_ptr<core::LookupStrategy>> strategies;
    strategies.push_back(std::make_unique<core::TraditionalLookup>());
    strategies.push_back(std::make_unique<core::NaiveLookup>());
    strategies.push_back(std::make_unique<core::MruLookup>(0));
    strategies.push_back(std::make_unique<core::MruLookup>(2));
    core::PartialConfig pcfg;
    pcfg.tag_bits = 8;
    pcfg.field_bits = 2;
    pcfg.subsets = 2;
    pcfg.transform = core::TransformKind::XorLow;
    strategies.push_back(std::make_unique<core::PartialLookup>(pcfg));
    // WayPredict's outcome is a pure function of the input (the
    // counters are bookkeeping), so the reference can re-execute it.
    strategies.push_back(std::make_unique<core::WayPredictLookup>());

    for (unsigned a : {2u, 4u, 8u}) {
        for (int i = 0; i < 2000; ++i) {
            SetState s = SetState::random(rng, a, 8);
            core::LookupInput in = s.input(rng.below(16));
            for (const auto &strat : strategies) {
                core::LookupResult want = strat->lookup(in);
                core::LookupResult got;
                ASSERT_TRUE(referenceLookup(*strat, in, got));
                ASSERT_EQ(got.hit, want.hit) << strat->name();
                ASSERT_EQ(got.way, want.way) << strat->name();
                ASSERT_EQ(got.probes, want.probes) << strat->name();
            }
        }
    }
}

TEST(ReferenceLookup, RefusesUnknownStrategies)
{
    class Mystery : public core::LookupStrategy
    {
      public:
        core::LookupResult
        lookup(const core::LookupInput &) const override
        {
            return {};
        }
        std::string name() const override { return "Mystery"; }
    };
    Mystery m;
    Pcg32 rng(7);
    SetState s = SetState::random(rng, 4, 8);
    core::LookupInput in = s.input(3);
    core::LookupResult out;
    EXPECT_FALSE(referenceLookup(m, in, out));
}

TEST(ReferenceLookup, RefusesStatefulWayMemo)
{
    // The memo table makes WayMemo's cost depend on history, so no
    // stateless re-execution exists; the auditor's dedicated
    // memo-consistency check covers it instead.
    core::WayMemoLookup wm(std::make_unique<core::TraditionalLookup>(),
                           core::WayMemoConfig());
    Pcg32 rng(7);
    SetState s = SetState::random(rng, 4, 8);
    core::LookupInput in = s.input(3);
    core::LookupResult out;
    EXPECT_FALSE(referenceLookup(wm, in, out));
}

TEST(PartialCandidateMask, ContainsEverySlicedEqualWay)
{
    Pcg32 rng(0x5eed2);
    core::PartialConfig cfg;
    cfg.tag_bits = 8;
    cfg.field_bits = 2;
    cfg.subsets = 2;
    cfg.transform = core::TransformKind::Improved;
    for (int i = 0; i < 4000; ++i) {
        SetState s = SetState::random(rng, 8, 8);
        core::LookupInput in = s.input(rng.below(16));
        std::uint64_t mask = partialCandidateMask(cfg, in);
        for (unsigned w = 0; w < 8; ++w) {
            if (in.valid[w] && in.stored_tags[w] == in.incoming_tag) {
                ASSERT_TRUE(mask & (1ull << w))
                    << "way " << w << " filtered out";
            }
        }
    }
}

TEST(CheckTransformInvertible, PassesForEveryKindAndWidth)
{
    Pcg32 rng(0x5eed3);
    ViolationLog log;
    for (core::TransformKind kind :
         {core::TransformKind::None, core::TransformKind::XorLow,
          core::TransformKind::Improved, core::TransformKind::Swap}) {
        for (unsigned t : {4u, 7u, 12u, 16u, 21u, 32u}) {
            for (unsigned k : {1u, 2u, 4u}) {
                if (k > t)
                    continue;
                auto xf = core::TagTransform::make(kind, t, k);
                EXPECT_TRUE(
                    checkTransformInvertible(*xf, rng, 200, log))
                    << xf->name() << " t=" << t << " k=" << k;
            }
        }
    }
    EXPECT_TRUE(log.ok());
}

TEST(CheckTransformInvertible, CatchesANonBijection)
{
    // A transform that collapses tags: invert(apply(x)) != x.
    class Lossy : public core::TagTransform
    {
      public:
        using TagTransform::TagTransform;
        std::uint32_t
        apply(std::uint32_t tag, unsigned) const override
        {
            return tag & ~1u; // drops the low bit
        }
        std::uint32_t
        invert(std::uint32_t tag, unsigned) const override
        {
            return tag;
        }
        std::string name() const override { return "lossy"; }
    };
    Lossy lossy(8, 2);
    Pcg32 rng(9);
    ViolationLog log;
    EXPECT_FALSE(checkTransformInvertible(lossy, rng, 200, log));
    EXPECT_FALSE(log.ok());
}

TEST(CheckMruOrderIntegrity, PassesOnARunningCache)
{
    mem::WriteBackCache cache(mem::CacheGeometry(1024, 16, 4));
    Pcg32 rng(11);
    for (int i = 0; i < 2000; ++i) {
        mem::BlockAddr b = rng.below(256);
        int way = cache.findWay(b);
        if (way >= 0)
            cache.touch(cache.geom().setOf(b), way);
        else
            cache.fill(b, rng.chance(0.3));
    }
    ViolationLog log;
    EXPECT_TRUE(checkAllMruOrders(cache, log));
    EXPECT_TRUE(log.ok());
}

TEST(CheckRecencyOrders, BothOrdersPassUnderChurn)
{
    // Random fill/touch/invalidate churn across every policy: the
    // MRU and fill-age orders must keep their invalid-frames-last
    // permutation shape throughout (invalidate() demotes the freed
    // frame in BOTH orders, which this checker pins down).
    for (mem::ReplPolicy policy :
         {mem::ReplPolicy::Lru, mem::ReplPolicy::Fifo,
          mem::ReplPolicy::Random, mem::ReplPolicy::TreePlru}) {
        mem::WriteBackCache cache(mem::CacheGeometry(1024, 16, 4),
                                  policy);
        Pcg32 rng(13);
        ViolationLog log;
        for (int i = 0; i < 3000; ++i) {
            mem::BlockAddr b = rng.below(256);
            double roll = rng.uniform();
            int way = cache.findWay(b);
            if (roll < 0.25) {
                cache.invalidate(b);
            } else if (way >= 0) {
                cache.touch(cache.geom().setOf(b), way);
            } else {
                cache.fill(b, rng.chance(0.3));
            }
        }
        EXPECT_TRUE(checkAllRecencyOrders(cache, log))
            << mem::replPolicyName(policy);
        EXPECT_TRUE(log.ok()) << mem::replPolicyName(policy);
    }
}

TEST(CheckFifoOrderIntegrity, ReportsAnInvalidFrameMidList)
{
    // A cache the checker must reject is unreachable through the
    // public API (that is the point of the invariant), so build the
    // shape indirectly: invalidate a *middle* way of a full set and
    // verify the checker would flag the pre-fix behavior by checking
    // the fixed one holds — the freed frame must sit at the tail of
    // the fill-age order, not in place.
    mem::WriteBackCache cache(mem::CacheGeometry(64, 16, 4),
                              mem::ReplPolicy::Fifo);
    for (mem::BlockAddr b = 0; b < 4; ++b)
        cache.fill(b, false);
    // Fill order (youngest first) is now 3,2,1,0; invalidate the
    // mid-aged block 2.
    ASSERT_EQ(static_cast<int>(cache.fifoOrder(0)[0]),
              cache.findWay(3));
    cache.invalidate(2);
    ViolationLog log;
    EXPECT_TRUE(checkFifoOrderIntegrity(cache, 0, log));
    EXPECT_TRUE(log.ok());
    // The freed frame is the next victim (and the fill reuses it
    // without an eviction), exactly what victimWay() promises.
    int freed = cache.fifoOrder(0).back();
    EXPECT_EQ(cache.victimWay(0), freed);
    mem::FillResult fr = cache.fill(100, false);
    EXPECT_EQ(fr.way, freed);
    EXPECT_FALSE(fr.evicted);
}

TEST(CheckInclusion, HoldsWhenEnforced)
{
    mem::HierarchyConfig cfg{mem::CacheGeometry(512, 16, 1),
                             mem::CacheGeometry(2048, 32, 4), true};
    cfg.enforce_inclusion = true;
    mem::TwoLevelHierarchy hier(cfg);
    trace::UniformRandomTrace src(0x1000, 16, 512, 20000, 1, 0.3);
    hier.run(src);
    ViolationLog log;
    EXPECT_TRUE(checkInclusion(hier, log));
    EXPECT_TRUE(log.ok());
}

TEST(InvariantAuditor, CleanRunThroughRunSpecHook)
{
    // End-to-end through sim::runTrace: every scheme audited on a
    // real simulation, zero violations.
    ViolationLog log;
    InvariantAuditor auditor(&log);

    sim::RunSpec spec;
    spec.hier = {mem::CacheGeometry(1024, 16, 1),
                 mem::CacheGeometry(8192, 32, 4), true};
    core::SchemeSpec s;
    s.kind = core::SchemeKind::Traditional;
    spec.schemes.push_back(s);
    s.kind = core::SchemeKind::Naive;
    spec.schemes.push_back(s);
    s.kind = core::SchemeKind::Mru;
    s.mru_list_len = 2;
    spec.schemes.push_back(s);
    spec.schemes.push_back(core::SchemeSpec::paperPartial(4));
    core::SchemeSpec memo;
    memo.kind = core::SchemeKind::WayMemo;
    memo.memo_entries = 16; // tiny: exercise aliasing + staleness
    spec.schemes.push_back(memo);
    memo.memo_underlying = core::SchemeKind::Mru;
    memo.memo_tagged = false;
    spec.schemes.push_back(memo);
    core::SchemeSpec wp;
    wp.kind = core::SchemeKind::WayPredict;
    spec.schemes.push_back(wp);
    spec.auditor = &auditor;

    trace::UniformRandomTrace src(0x4000, 16, 2048, 30000, 2, 0.3);
    sim::runTrace(src, spec);

    EXPECT_GT(auditor.audited(), 0u);
    EXPECT_TRUE(log.ok()) << (log.messages().empty()
                                  ? ""
                                  : log.messages().front());
}

TEST(InvariantAuditor, FlagsAProbeOverReportingStrategy)
{
    // A subtly broken Naive that over-reports its probe count: no
    // ground-truth panic fires (the verdict is right), so only the
    // invariant checks can see it.
    class OverProbe : public core::NaiveLookup
    {
      public:
        core::LookupResult
        lookup(const core::LookupInput &in) const override
        {
            core::LookupResult res = core::NaiveLookup::lookup(in);
            ++res.probes;
            return res;
        }
    };

    mem::HierarchyConfig cfg{mem::CacheGeometry(512, 16, 1),
                             mem::CacheGeometry(2048, 32, 4), true};
    mem::TwoLevelHierarchy hier(cfg);
    ViolationLog log;
    InvariantAuditor auditor(&log);
    core::MeterConfig mcfg;
    mcfg.tag_bits = 16;
    core::ProbeMeter meter(std::make_unique<OverProbe>(), mcfg);
    meter.setAuditor(&auditor);
    hier.addObserver(&meter);

    trace::UniformRandomTrace src(0x2000, 16, 512, 5000, 3, 0.3);
    hier.run(src);

    EXPECT_FALSE(log.ok());
    EXPECT_GT(auditor.audited(), 0u);
}

TEST(InvariantAuditor, FlagsAStaleMemoHit)
{
    // A memo table that rotates the way it serves on a memo hit —
    // the stale-entry bug hardware invalidation exists to prevent.
    // Per-access verdicts stay plausible (it is still "a hit"), so
    // only the memo-consistency check can see it.
    class StaleMemo : public core::WayMemoLookup
    {
      public:
        using core::WayMemoLookup::WayMemoLookup;
        core::LookupResult
        lookup(const core::LookupInput &in) const override
        {
            core::LookupResult res =
                core::WayMemoLookup::lookup(in);
            if (res.memo_hit)
                res.way = (res.way + 1) %
                          static_cast<int>(in.assoc);
            return res;
        }
    };

    mem::HierarchyConfig cfg{mem::CacheGeometry(512, 16, 1),
                             mem::CacheGeometry(2048, 32, 4), true};
    mem::TwoLevelHierarchy hier(cfg);
    ViolationLog log;
    InvariantAuditor auditor(&log);
    core::MeterConfig mcfg;
    mcfg.tag_bits = 16;
    core::ProbeMeter meter(
        std::make_unique<StaleMemo>(
            std::make_unique<core::TraditionalLookup>(),
            core::WayMemoConfig()),
        mcfg);
    meter.setAuditor(&auditor);
    hier.addObserver(&meter);

    trace::UniformRandomTrace src(0x2000, 16, 512, 5000, 3, 0.3);
    hier.run(src);

    EXPECT_FALSE(log.ok());
    EXPECT_GT(meter.stats().memo_hits, 0u);
}

} // namespace
} // namespace check
} // namespace assoc
