// Unit tests for the overload-safe service layer (svc/admission.h
// + Session::request): token-bucket quota verdicts and their
// determinism, shed policies, the global in-flight cap, deadline
// propagation, the conservation invariant, and cancellation
// delivered mid-service-operation.

#include "svc/admission.h"

#include <memory>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "check/svc_check.h"
#include "svc/service.h"
#include "util/cancel.h"
#include "util/rng.h"

namespace {

using namespace assoc;
using svc::AdmissionConfig;
using svc::AdmissionController;
using svc::AdmissionStats;
using svc::AdmitDecision;
using svc::CacheService;
using svc::OpKind;
using svc::Session;
using svc::ShedPolicy;
using svc::SvcConfig;

std::unique_ptr<CacheService>
makeService(const SvcConfig &cfg = {},
            const mem::CacheGeometry &geom = mem::CacheGeometry(1024,
                                                                16, 2))
{
    Expected<std::unique_ptr<CacheService>> e =
        CacheService::create(geom, cfg);
    if (!e.ok())
        throw std::runtime_error("create failed: " +
                                 e.error().message());
    return e.take();
}

Session *
openSession(CacheService &service, const std::string &name = "")
{
    Expected<Session *> s = service.openSession(name);
    if (!s.ok())
        throw std::runtime_error("openSession failed: " +
                                 s.error().message());
    return s.take();
}

AdmissionConfig
floodConfig(ShedPolicy policy = ShedPolicy::RejectNew)
{
    AdmissionConfig cfg;
    cfg.enabled = true;
    cfg.quota_burst = 8;
    cfg.refill_num = 1;
    cfg.refill_den = 2;
    cfg.policy = policy;
    cfg.seed = 7;
    return cfg;
}

TEST(ShedPolicyNames, RoundTrip)
{
    for (ShedPolicy p :
         {ShedPolicy::RejectNew, ShedPolicy::DropWritesFirst,
          ShedPolicy::DegradeReads}) {
        Expected<ShedPolicy> back =
            svc::shedPolicyFromString(svc::shedPolicyName(p));
        ASSERT_TRUE(back.ok());
        EXPECT_EQ(back.value(), p);
    }
    Expected<ShedPolicy> bad = svc::shedPolicyFromString("nope");
    ASSERT_FALSE(bad.ok());
    EXPECT_EQ(bad.error().code(), ErrorCode::Usage);
}

TEST(OpIsWrite, ClassifiesMutations)
{
    EXPECT_TRUE(svc::opIsWrite(OpKind::Invalidate, false));
    EXPECT_TRUE(svc::opIsWrite(OpKind::Fill, true));
    EXPECT_TRUE(svc::opIsWrite(OpKind::Access, true));
    EXPECT_FALSE(svc::opIsWrite(OpKind::Access, false));
    EXPECT_FALSE(svc::opIsWrite(OpKind::Probe, false));
    EXPECT_FALSE(svc::opIsWrite(OpKind::Lookup, false));
}

TEST(AdmissionBucket, SeededInitialCreditIsDeterministic)
{
    AdmissionController a(floodConfig()), b(floodConfig());
    for (std::uint32_t tenant = 0; tenant < 8; ++tenant) {
        AdmissionController::Bucket x = a.makeBucket(tenant);
        AdmissionController::Bucket y = b.makeBucket(tenant);
        EXPECT_EQ(x.tokens(a.config()), y.tokens(b.config()));
        // Uniform in [burst/2, burst].
        EXPECT_GE(x.tokens(a.config()),
                  a.config().quota_burst / 2);
        EXPECT_LE(x.tokens(a.config()), a.config().quota_burst);
    }
}

TEST(AdmissionBucket, DisabledAdmitsEverything)
{
    AdmissionConfig cfg; // enabled = false
    AdmissionController ctrl(cfg);
    AdmissionController::Bucket b = ctrl.makeBucket(0);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(ctrl.checkQuota(b, OpKind::Access, true),
                  AdmitDecision::Admit);
}

TEST(AdmissionBucket, FloodSettlesAtTheRefillRate)
{
    AdmissionController ctrl(floodConfig());
    AdmissionController::Bucket b = ctrl.makeBucket(3);
    // Burn the initial credit, then measure the steady state: at
    // refill 1/2 every other request is admitted, exactly.
    for (int i = 0; i < 100; ++i)
        ctrl.checkQuota(b, OpKind::Access, false);
    int admits = 0;
    for (int i = 0; i < 1000; ++i)
        if (ctrl.checkQuota(b, OpKind::Access, false) ==
            AdmitDecision::Admit)
            ++admits;
    EXPECT_EQ(admits, 500);
}

TEST(AdmissionBucket, VerdictSequenceIsAPureFunctionOfTheStream)
{
    AdmissionController ctrl(floodConfig());
    AdmissionController::Bucket x = ctrl.makeBucket(1);
    AdmissionController::Bucket y = ctrl.makeBucket(1);
    Pcg32 ops(9, 17);
    for (int i = 0; i < 2000; ++i) {
        bool is_write = ops.chance(0.3);
        EXPECT_EQ(ctrl.checkQuota(x, OpKind::Access, is_write),
                  ctrl.checkQuota(y, OpKind::Access, is_write))
            << "diverged at op " << i;
    }
}

TEST(AdmissionBucket, PolicyControlsOverQuotaDisposition)
{
    for (ShedPolicy p :
         {ShedPolicy::RejectNew, ShedPolicy::DropWritesFirst,
          ShedPolicy::DegradeReads}) {
        // Zero refill: once the initial credit is gone, every
        // request is over quota — the policy's disposition is then
        // observable on any request shape.
        AdmissionConfig cfg = floodConfig(p);
        cfg.refill_num = 0;
        cfg.refill_den = 1;
        AdmissionController ctrl(cfg);
        AdmissionController::Bucket b = ctrl.makeBucket(0);
        AdmitDecision over = AdmitDecision::Admit;
        for (int i = 0; i < 200 && over == AdmitDecision::Admit;
             ++i)
            over = ctrl.checkQuota(b, OpKind::Access, true);
        ASSERT_NE(over, AdmitDecision::Admit);
        switch (p) {
          case ShedPolicy::RejectNew:
            EXPECT_EQ(over, AdmitDecision::ShedQuota);
            break;
          case ShedPolicy::DropWritesFirst:
          case ShedPolicy::DegradeReads:
            EXPECT_EQ(over, AdmitDecision::ShedWrite);
            break;
        }
        // An over-quota *read* at the same (still empty) state.
        AdmitDecision read =
            ctrl.checkQuota(b, OpKind::Access, false);
        switch (p) {
          case ShedPolicy::RejectNew:
            EXPECT_EQ(read, AdmitDecision::ShedQuota);
            break;
          case ShedPolicy::DropWritesFirst:
            EXPECT_EQ(read, AdmitDecision::Admit);
            break;
          case ShedPolicy::DegradeReads:
            EXPECT_EQ(read, AdmitDecision::Degrade);
            break;
        }
    }
}

TEST(InflightGate, CapBouncesTheOverflowAndReleasesOnDrop)
{
    AdmissionConfig cfg = floodConfig();
    cfg.max_inflight = 2;
    AdmissionController ctrl(cfg);

    Expected<AdmissionController::InflightGuard> a = ctrl.tryEnter();
    Expected<AdmissionController::InflightGuard> b = ctrl.tryEnter();
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(ctrl.inflight(), 2u);

    Expected<AdmissionController::InflightGuard> c = ctrl.tryEnter();
    ASSERT_FALSE(c.ok());
    EXPECT_EQ(c.error().code(), ErrorCode::Overloaded);
    EXPECT_EQ(ctrl.inflight(), 2u);

    a.value().release();
    EXPECT_EQ(ctrl.inflight(), 1u);
    Expected<AdmissionController::InflightGuard> d = ctrl.tryEnter();
    EXPECT_TRUE(d.ok());
    EXPECT_EQ(ctrl.inflightPeak(), 2u);
}

TEST(InflightGate, UncappedNeverFails)
{
    AdmissionConfig cfg = floodConfig(); // max_inflight = 0
    AdmissionController ctrl(cfg);
    std::vector<AdmissionController::InflightGuard> guards;
    for (int i = 0; i < 100; ++i) {
        Expected<AdmissionController::InflightGuard> g =
            ctrl.tryEnter();
        ASSERT_TRUE(g.ok());
        guards.push_back(std::move(g.value()));
    }
    EXPECT_EQ(ctrl.inflight(), 100u);
    guards.clear();
    EXPECT_EQ(ctrl.inflight(), 0u);
}

TEST(RequestPath, DisabledAdmissionStillAccountsConservation)
{
    auto service = makeService();
    Session *s = openSession(*service);
    for (int i = 0; i < 50; ++i) {
        Expected<svc::OpResult> r =
            s->request(OpKind::Access, i % 8, i % 3 == 0);
        EXPECT_TRUE(r.ok());
    }
    const AdmissionStats &a = s->stats().admission;
    EXPECT_EQ(a.admitted, 50u);
    EXPECT_EQ(a.completed, 50u);
    EXPECT_EQ(a.shed(), 0u);
    EXPECT_TRUE(a.conservationHolds());
}

TEST(RequestPath, FloodShedsDeterministically)
{
    SvcConfig cfg;
    cfg.admission = floodConfig();
    AdmissionStats runs[2];
    for (AdmissionStats &out : runs) {
        auto service = makeService(cfg);
        Session *s = openSession(*service, "noisy");
        for (int i = 0; i < 500; ++i) {
            Expected<svc::OpResult> r =
                s->request(OpKind::Access, i % 16, false);
            if (!r.ok()) {
                EXPECT_EQ(r.error().code(),
                          ErrorCode::Overloaded);
            }
        }
        out = s->stats().admission;
        EXPECT_TRUE(out.conservationHolds());
        EXPECT_GT(out.shed_quota, 0u);
    }
    EXPECT_TRUE(runs[0].identicalDeterministic(runs[1]));
    EXPECT_EQ(runs[0].shed_quota, runs[1].shed_quota);
}

TEST(RequestPath, DegradedReadIsARelaxedProbeWithNoFill)
{
    SvcConfig cfg;
    cfg.admission = floodConfig(ShedPolicy::DegradeReads);
    auto service = makeService(cfg);
    Session *s = openSession(*service);

    s->drainQuota(); // the mid-stream budget squeeze, by hand
    Expected<svc::OpResult> r =
        s->request(OpKind::Access, 0x42, false);
    ASSERT_TRUE(r.ok()); // served, but degraded
    EXPECT_EQ(s->stats().admission.degraded, 1u);
    EXPECT_EQ(s->stats().admission.completed, 1u);

    // The degraded access ran as a probe: no fill happened, so the
    // block is still absent.
    EXPECT_FALSE(service->engine().probe(s->saltedBlock(0x42)).hit);
    EXPECT_TRUE(s->stats().admission.conservationHolds());
}

TEST(RequestPath, ExpiredDeadlineFailsBeforeTouchingTheQuota)
{
    SvcConfig cfg;
    cfg.admission = floodConfig();
    auto service = makeService(cfg);
    Session *s = openSession(*service);
    std::uint64_t tokens_before = s->quotaTokens();

    Expected<svc::OpResult> r = s->request(
        OpKind::Access, 0x1, false, Deadline::after(0));
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().code(), ErrorCode::Timeout);
    EXPECT_EQ(s->stats().admission.failed_timeout, 1u);
    // A stormed request never ticks the bucket — that is what keeps
    // the deadline-storm fault's shed counts deterministic.
    EXPECT_EQ(s->quotaTokens(), tokens_before);
    EXPECT_TRUE(s->stats().admission.conservationHolds());
}

TEST(RequestPath, BoundTokenDeadlineReportsTimeout)
{
    auto service = makeService();
    Session *s = openSession(*service);
    CancelToken token;
    token.cancelTimeout();
    s->bindCancel(&token);
    Expected<svc::OpResult> r =
        s->request(OpKind::Probe, 0x1, false);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().code(), ErrorCode::Timeout);
    EXPECT_EQ(s->stats().admission.failed_timeout, 1u);
    EXPECT_TRUE(s->stats().admission.conservationHolds());
}

TEST(RequestPath, QuotaTokensDrainAndRefill)
{
    SvcConfig cfg;
    cfg.admission = floodConfig();
    auto service = makeService(cfg);
    Session *s = openSession(*service);
    EXPECT_GE(s->quotaTokens(), cfg.admission.quota_burst / 2);
    s->drainQuota();
    EXPECT_EQ(s->quotaTokens(), 0u);
    // Two ticks at refill 1/2 accumulate one whole token; the
    // second tick spends it.
    EXPECT_FALSE(s->request(OpKind::Probe, 0x1, false).ok());
    EXPECT_TRUE(s->request(OpKind::Probe, 0x1, false).ok());
}

// The cancellation-mid-operation contract: a token tripped while a
// request is inside a striped-lock critical section (delivered via
// the engine's lock_hold_hook, i.e. while the lock is actually
// held) must not tear that operation — it completes and its update
// survives — and every *subsequent* request fails with the token's
// structured error, taken between critical sections with no lock
// held and the serializability of the whole history intact.
TEST(RequestPath, CancelDeliveredMidOperationIsClean)
{
    CancelToken token;
    SvcConfig cfg;
    cfg.record_history = true;
    cfg.admission = floodConfig();
    cfg.admission.quota_burst = 64; // ample: no quota sheds here
    cfg.admission.refill_num = 1;
    cfg.admission.refill_den = 1;
    cfg.engine.lock_hold_hook = [&token](std::uint32_t) {
        token.cancel(); // tripped while the stripe lock is held
    };
    mem::CacheGeometry geom(1024, 16, 2);
    auto service = makeService(cfg, geom);
    Session *s = openSession(*service, "victim");
    s->bindCancel(&token);

    // The in-flight op: the hook cancels the token while this
    // request holds its stripe lock. The op itself must still
    // complete (no torn critical section, no lost update).
    Expected<svc::OpResult> first =
        s->request(OpKind::Access, 0x9, true);
    ASSERT_TRUE(first.ok());

    // Every subsequent request observes the trip between critical
    // sections and fails with the token's structured error.
    Expected<svc::OpResult> second =
        s->request(OpKind::Access, 0x9, true);
    ASSERT_FALSE(second.ok());
    EXPECT_EQ(second.error().code(), ErrorCode::Cancelled);

    // No lock is left held: another tenant (not bound to the
    // token) still gets straight through the same set.
    Session *bystander = openSession(*service, "bystander");
    EXPECT_TRUE(
        bystander->request(OpKind::Probe, 0x9, false).ok());

    // The first op's update was not lost.
    EXPECT_TRUE(service->engine().probe(s->saltedBlock(0x9)).hit);

    // Accounting: one completed, one cancelled, conserved.
    const AdmissionStats &a = s->stats().admission;
    EXPECT_EQ(a.completed, 1u);
    EXPECT_EQ(a.failed_cancelled, 1u);
    EXPECT_TRUE(a.conservationHolds());

    // And the recorded history still replays serializably.
    check::ViolationLog log;
    bool overflowed = false;
    std::vector<svc::HistoryEvent> events =
        service->collectHistory(&overflowed);
    EXPECT_FALSE(overflowed);
    check::checkSvcHistory(service->geom(), cfg.engine.policy,
                           service->engine().stripes(), events,
                           &service->engine().cache(), log);
    EXPECT_TRUE(log.ok()) << (log.count()
                                  ? log.messages().front()
                                  : "");
    check::checkAdmissionConservation(a, "victim", log);
    EXPECT_TRUE(log.ok());
}

TEST(RequestPath, InflightShedKeepsConservation)
{
    SvcConfig cfg;
    cfg.admission = floodConfig();
    cfg.admission.max_inflight = 1;
    auto service = makeService(cfg);
    Session *s = openSession(*service);

    // Hold the only slot so the session's request bounces off the
    // cap (single-threaded stand-in for a busy service).
    Expected<AdmissionController::InflightGuard> held =
        service->admission().tryEnter();
    ASSERT_TRUE(held.ok());
    Expected<svc::OpResult> r =
        s->request(OpKind::Probe, 0x1, false);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().code(), ErrorCode::Overloaded);
    EXPECT_EQ(s->stats().admission.shed_inflight, 1u);
    EXPECT_TRUE(s->stats().admission.conservationHolds());

    held.value().release();
    EXPECT_TRUE(s->request(OpKind::Probe, 0x1, false).ok());
}

TEST(AdmissionStatsMerge, MergesExactlyAndConserves)
{
    AdmissionStats a, b;
    a.admitted = 10;
    a.completed = 6;
    a.shed_quota = 3;
    a.failed_timeout = 1;
    b.admitted = 4;
    b.completed = 2;
    b.shed_writes = 1;
    b.failed_cancelled = 1;
    ASSERT_TRUE(a.conservationHolds());
    ASSERT_TRUE(b.conservationHolds());
    a.merge(b);
    EXPECT_EQ(a.admitted, 14u);
    EXPECT_EQ(a.completed, 8u);
    EXPECT_TRUE(a.conservationHolds());
}

} // namespace
