#include <gtest/gtest.h>

#include <mutex>
#include <thread>
#include <vector>

#include "svc/striped_locks.h"
#include "util/logging.h"
#include "util/spinlock.h"

namespace {

using namespace assoc;
using svc::SetStripe;
using svc::StripedLockTable;

TEST(SpinLock, MutualExclusionAcrossThreads)
{
    SpinLock lock;
    std::uint64_t counter = 0; // protected by lock
    constexpr int kThreads = 4;
    constexpr int kIncrements = 20000;

    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; ++t) {
        workers.emplace_back([&]() {
            for (int i = 0; i < kIncrements; ++i) {
                std::lock_guard<SpinLock> g(lock);
                ++counter;
            }
        });
    }
    for (std::thread &w : workers)
        w.join();
    EXPECT_EQ(counter, std::uint64_t(kThreads) * kIncrements);
}

TEST(SpinLock, TryLockReportsContention)
{
    SpinLock lock;
    EXPECT_TRUE(lock.try_lock());
    EXPECT_FALSE(lock.try_lock());
    lock.unlock();
    EXPECT_TRUE(lock.try_lock());
    lock.unlock();
}

TEST(StripedLockTable, DefaultsToOneStripePerSet)
{
    StripedLockTable table(64);
    EXPECT_EQ(table.stripes(), 64u);
    for (std::uint32_t set = 0; set < 64; ++set)
        EXPECT_EQ(table.stripeOf(set), set);
}

TEST(StripedLockTable, CapRoundsDownToPowerOfTwo)
{
    StripedLockTable table(64, 6); // 6 -> 4 stripes
    EXPECT_EQ(table.stripes(), 4u);
    EXPECT_EQ(table.stripeOf(0), 0u);
    EXPECT_EQ(table.stripeOf(5), 1u);
    EXPECT_EQ(table.stripeOf(7), 3u);
    // Sets 4 apart share a stripe (low-bit mapping).
    EXPECT_EQ(table.stripeOf(3), table.stripeOf(7));
}

TEST(StripedLockTable, CapNeverExceedsSetCount)
{
    StripedLockTable table(8, 64);
    EXPECT_EQ(table.stripes(), 8u);
}

TEST(StripedLockTable, RejectsNonPowerOfTwoSets)
{
    EXPECT_THROW(StripedLockTable(12), FatalError);
    EXPECT_THROW(StripedLockTable(0), FatalError);
}

TEST(StripedLockTable, FootprintCoversStripeArray)
{
    StripedLockTable table(16);
    EXPECT_EQ(table.footprintBytes(), 16 * sizeof(SetStripe));
    // One cache line per stripe: padding against false sharing.
    EXPECT_GE(sizeof(SetStripe), 64u);
}

TEST(Seqlock, WriteProtocolVersionsTheStripe)
{
    StripedLockTable table(4);
    SetStripe &s = table.stripeFor(2);
    EXPECT_EQ(s.seq.load(), 0u);

    std::uint64_t pre = svc::writeBegin(s);
    EXPECT_EQ(pre, 0u);
    EXPECT_EQ(s.seq.load(), 1u); // odd: writer in flight
    std::uint64_t version = svc::writeEnd(s, pre);
    EXPECT_EQ(version, 1u);
    EXPECT_EQ(s.seq.load(), 2u); // even: stable again

    pre = svc::writeBegin(s);
    EXPECT_EQ(svc::writeEnd(s, pre), 2u);
    EXPECT_EQ(s.seq.load(), 4u);
}

} // namespace
