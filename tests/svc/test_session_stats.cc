#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "check/svc_check.h"
#include "svc/service.h"
#include "util/cancel.h"

namespace {

using namespace assoc;
using svc::CacheService;
using svc::OpKind;
using svc::Session;
using svc::SvcConfig;
using svc::TenantStats;

std::unique_ptr<CacheService>
makeService(const mem::CacheGeometry &geom,
            const SvcConfig &cfg = {}, MemBudget *budget = nullptr)
{
    Expected<std::unique_ptr<CacheService>> e =
        CacheService::create(geom, cfg, budget);
    if (!e.ok())
        throw std::runtime_error("create failed: " +
                                 e.error().message());
    return e.take();
}

Session *
openSession(CacheService &service, const std::string &name = "")
{
    Expected<Session *> s = service.openSession(name);
    if (!s.ok())
        throw std::runtime_error("openSession failed: " +
                                 s.error().message());
    return s.take();
}

TEST(TenantStats, RecordsPerKindOutcomes)
{
    auto service = makeService(mem::CacheGeometry(1024, 16, 2));
    Session *s = openSession(*service);

    s->probe(0x1);            // miss
    s->access(0x1, false);    // miss + fill
    s->probe(0x1);            // hit
    s->lookup(0x1);           // hit
    s->fill(0x1, true);       // merge-hit
    s->invalidate(0x1);       // hit
    s->invalidate(0x1);       // miss

    const TenantStats &st = s->stats();
    EXPECT_EQ(st.ops, 7u);
    EXPECT_EQ(st.probe_ops, 2u);
    EXPECT_EQ(st.probe_hits, 1u);
    EXPECT_EQ(st.accesses, 1u);
    EXPECT_EQ(st.access_hits, 0u);
    EXPECT_EQ(st.lookups, 1u);
    EXPECT_EQ(st.lookup_hits, 1u);
    EXPECT_EQ(st.fills, 1u);
    EXPECT_EQ(st.fill_hits, 1u);
    EXPECT_EQ(st.invalidates, 2u);
    EXPECT_EQ(st.invalidate_hits, 1u);
    EXPECT_EQ(st.hits(), 4u);
    EXPECT_EQ(st.hit_probes.count() + st.miss_probes.count(),
              st.ops);
}

TEST(TenantStats, MergeIsExactSum)
{
    TenantStats a, b;
    svc::OpResult hit;
    hit.kind = OpKind::Lookup;
    hit.hit = true;
    hit.probes = 2;
    svc::OpResult miss;
    miss.kind = OpKind::Access;
    miss.probes = 4;
    miss.mutated = true;
    miss.filled = true;
    miss.evicted = true;
    miss.victim_dirty = true;

    a.recordOp(hit);
    a.recordOp(miss);
    b.recordOp(hit);

    TenantStats total;
    total.merge(a);
    total.merge(b);
    EXPECT_EQ(total.ops, 3u);
    EXPECT_EQ(total.lookup_hits, 2u);
    EXPECT_EQ(total.evictions, 1u);
    EXPECT_EQ(total.dirty_evictions, 1u);
    EXPECT_EQ(total.hit_probes.sum(), 4.0);
    EXPECT_EQ(total.miss_probes.sum(), 4.0);

    // Merge order cannot matter: these sums are exact.
    TenantStats flipped;
    flipped.merge(b);
    flipped.merge(a);
    EXPECT_TRUE(total.identicalOutcomes(flipped));
}

TEST(TenantStats, IdenticalOutcomesIgnoresProtocolCounters)
{
    TenantStats a, b;
    svc::OpResult r;
    r.kind = OpKind::Probe;
    r.hit = true;
    r.probes = 1;
    r.optimistic = true;
    a.recordOp(r);
    r.optimistic = false; // same outcome, served under the lock
    r.retries = 5;
    b.recordOp(r);

    EXPECT_TRUE(a.identicalOutcomes(b));
    EXPECT_NE(a.optimistic_reads, b.optimistic_reads);
    EXPECT_NE(a.seqlock_retries, b.seqlock_retries);
}

TEST(TenantStats, ExportsProbeMeterCurrency)
{
    TenantStats st;
    svc::OpResult hit;
    hit.kind = OpKind::Access;
    hit.hit = true;
    hit.probes = 3;
    hit.mutated = true;
    svc::OpResult evict;
    evict.kind = OpKind::Access;
    evict.probes = 4;
    evict.mutated = true;
    evict.filled = true;
    evict.evicted = true;
    evict.victim_dirty = true;
    st.recordOp(hit);
    st.recordOp(evict);

    core::ProbeStats ps = st.toProbeStats();
    EXPECT_EQ(ps.read_in_hits.count(), 1u);
    EXPECT_EQ(ps.read_in_hits.sum(), 3.0);
    EXPECT_EQ(ps.read_in_misses.count(), 1u);
    EXPECT_EQ(ps.read_in_misses.sum(), 4.0);
    // Dirty evictions become zero-probe write-backs (the paper's
    // write-back optimization).
    EXPECT_EQ(ps.write_backs.count(), 1u);
    EXPECT_EQ(ps.write_backs.sum(), 0.0);
}

TEST(Service, SessionShardsChargeTheBudget)
{
    MemBudget budget(1 << 22);
    SvcConfig cfg;
    cfg.record_history = true;
    cfg.history_capacity = 1024;
    auto service =
        makeService(mem::CacheGeometry(1024, 16, 2), cfg, &budget);
    std::uint64_t engine_only = budget.used();
    openSession(*service);
    EXPECT_GT(budget.used(), engine_only);
    EXPECT_GE(budget.used() - engine_only,
              1024 * sizeof(svc::HistoryEvent));
}

TEST(Service, TenantSaltSeparatesAddressSpaces)
{
    SvcConfig cfg;
    cfg.tenant_salt_bits = 4;
    auto service =
        makeService(mem::CacheGeometry(1024, 16, 2), cfg);
    Session *t0 = openSession(*service);
    Session *t1 = openSession(*service);

    // Same block id, different tenants: distinct engine blocks in
    // the same set.
    EXPECT_NE(t0->saltedBlock(0x5), t1->saltedBlock(0x5));
    EXPECT_EQ(service->geom().setOf(t0->saltedBlock(0x5)),
              service->geom().setOf(t1->saltedBlock(0x5)));

    t0->access(0x5, true);
    EXPECT_FALSE(t1->probe(0x5).hit); // t1 cannot see t0's block
    EXPECT_TRUE(t0->probe(0x5).hit);
}

TEST(Service, SaltWiderThanTagIsRejected)
{
    SvcConfig cfg;
    cfg.tenant_salt_bits = 40;
    Expected<std::unique_ptr<CacheService>> e =
        CacheService::create(mem::CacheGeometry(1024, 16, 2), cfg);
    ASSERT_FALSE(e.ok());
    EXPECT_EQ(e.error().code(), ErrorCode::Usage);
}

// The satellite determinism test: an N-thread replay of one op
// stream partitioned disjoint-by-set must merge to totals that are
// bit-for-bit identical to the single-thread run.
TEST(Service, PartitionedReplayMergesBitForBit)
{
    const mem::CacheGeometry geom(2048, 16, 4);
    constexpr unsigned kThreads = 4;

    // A deterministic mixed op stream.
    check::SvcFuzzCase c;
    c.case_seed = 0xfeed5eed;
    c.geom = geom;
    c.ops_per_thread = 30000;
    c.block_space = 512;
    std::vector<check::SvcOpSpec> ops = svcOpStream(c, 0);

    auto serial = makeService(geom);
    Session *one = openSession(*serial);
    for (const check::SvcOpSpec &op : ops)
        one->apply(op.kind, op.block, op.is_write);

    auto parallel = makeService(geom);
    std::vector<Session *> sessions;
    for (unsigned t = 0; t < kThreads; ++t)
        sessions.push_back(openSession(*parallel));
    std::vector<std::thread> workers;
    for (unsigned t = 0; t < kThreads; ++t) {
        workers.emplace_back([&, t]() {
            for (const check::SvcOpSpec &op : ops)
                if (geom.setOf(op.block) % kThreads == t)
                    sessions[t]->apply(op.kind, op.block,
                                       op.is_write);
        });
    }
    for (std::thread &w : workers)
        w.join();

    TenantStats serial_total = serial->totalStats();
    TenantStats merged = parallel->totalStats();
    EXPECT_TRUE(merged.identicalOutcomes(serial_total));
    EXPECT_EQ(merged.ops, serial_total.ops);
    check::ViolationLog log;
    check::checkStatsMerge(merged, serial_total, log);
    EXPECT_TRUE(log.ok());
}

} // namespace
