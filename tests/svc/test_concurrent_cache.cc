#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "svc/concurrent_cache.h"
#include "util/cancel.h"

namespace {

using namespace assoc;
using svc::ConcurrentCache;
using svc::ConcurrentCacheConfig;
using svc::OpKind;
using svc::OpResult;

std::unique_ptr<ConcurrentCache>
makeEngine(const mem::CacheGeometry &geom,
           const ConcurrentCacheConfig &cfg = {},
           MemBudget *budget = nullptr)
{
    Expected<std::unique_ptr<ConcurrentCache>> e =
        ConcurrentCache::create(geom, cfg, budget);
    if (!e.ok())
        throw std::runtime_error("create failed: " +
                                 e.error().message());
    return e.take();
}

TEST(ConcurrentCache, RejectsRandomPolicy)
{
    ConcurrentCacheConfig cfg;
    cfg.policy = mem::ReplPolicy::Random;
    Expected<std::unique_ptr<ConcurrentCache>> e =
        ConcurrentCache::create(mem::CacheGeometry(1024, 16, 2),
                                cfg);
    ASSERT_FALSE(e.ok());
    EXPECT_EQ(e.error().code(), ErrorCode::Usage);
}

TEST(ConcurrentCache, ProbeMissThenFillThenHit)
{
    auto engine = makeEngine(mem::CacheGeometry(1024, 16, 4));

    OpResult miss = engine->probe(0x40);
    EXPECT_FALSE(miss.hit);
    EXPECT_EQ(miss.way, -1);
    // A miss costs a full Naive scan of the set.
    EXPECT_EQ(miss.probes, 4u);
    EXPECT_TRUE(miss.optimistic);
    EXPECT_FALSE(miss.mutated);
    EXPECT_EQ(miss.version, 0u);

    OpResult fill = engine->fill(0x40, false);
    EXPECT_TRUE(fill.filled);
    EXPECT_FALSE(fill.hit);
    EXPECT_TRUE(fill.mutated);
    EXPECT_EQ(fill.version, 1u);

    OpResult hit = engine->probe(0x40);
    EXPECT_TRUE(hit.hit);
    EXPECT_EQ(hit.way, fill.way);
    // The just-filled block is MRU: one probe finds it.
    EXPECT_EQ(hit.probes, 1u);
    EXPECT_EQ(hit.version, 1u);
}

TEST(ConcurrentCache, ProbeCostFollowsRecencyDistance)
{
    // One set, assoc 4: fill four blocks, then probe in fill order.
    auto engine = makeEngine(mem::CacheGeometry(64, 16, 4));
    for (mem::BlockAddr b = 0; b < 4; ++b)
        engine->fill(b, false);
    // MRU order is 3,2,1,0: block 3 costs 1 probe, block 0 costs 4.
    for (mem::BlockAddr b = 0; b < 4; ++b) {
        OpResult r = engine->probe(b);
        ASSERT_TRUE(r.hit);
        EXPECT_EQ(r.probes, 4u - b);
    }
    // lookup() promotes: block 0 becomes MRU, then costs 1 probe.
    OpResult promoted = engine->lookup(0);
    EXPECT_TRUE(promoted.hit);
    EXPECT_TRUE(promoted.mutated);
    EXPECT_EQ(engine->probe(0).probes, 1u);
}

TEST(ConcurrentCache, FillOfPresentBlockMergesAsHit)
{
    auto engine = makeEngine(mem::CacheGeometry(1024, 16, 2));
    engine->fill(0x7, false);
    OpResult again = engine->fill(0x7, true);
    EXPECT_TRUE(again.hit);
    EXPECT_FALSE(again.filled);
    EXPECT_TRUE(again.mutated);
    // The dirty flag merged into the existing line.
    int way = engine->cache().findWay(0x7);
    ASSERT_GE(way, 0);
    EXPECT_TRUE(
        engine->cache().line(engine->geom().setOf(0x7), way).dirty);
}

TEST(ConcurrentCache, EvictionReportsVictim)
{
    // One set, assoc 2: third fill evicts the LRU block.
    auto engine = makeEngine(mem::CacheGeometry(32, 16, 2));
    engine->fill(0, false);
    engine->access(1, true); // dirty
    OpResult third = engine->fill(2, false);
    EXPECT_TRUE(third.filled);
    EXPECT_TRUE(third.evicted);
    EXPECT_EQ(third.victim_block, 0u);
    EXPECT_FALSE(third.victim_dirty);

    OpResult fourth = engine->fill(3, false);
    EXPECT_TRUE(fourth.evicted);
    EXPECT_EQ(fourth.victim_block, 1u);
    EXPECT_TRUE(fourth.victim_dirty); // written via access()
}

TEST(ConcurrentCache, InvalidateDropsAndReportsDirty)
{
    auto engine = makeEngine(mem::CacheGeometry(1024, 16, 2));
    OpResult none = engine->invalidate(0x9);
    EXPECT_FALSE(none.hit);
    EXPECT_FALSE(none.mutated);

    engine->access(0x9, true);
    OpResult inv = engine->invalidate(0x9);
    EXPECT_TRUE(inv.hit);
    EXPECT_TRUE(inv.victim_dirty);
    EXPECT_TRUE(inv.mutated);
    EXPECT_FALSE(engine->probe(0x9).hit);
}

TEST(ConcurrentCache, VersionsCountMutationsPerStripe)
{
    auto engine = makeEngine(mem::CacheGeometry(1024, 16, 2));
    // Same set: versions advance 1, 2, 3...
    mem::BlockAddr a = 0x0, same_set = a + engine->geom().sets();
    EXPECT_EQ(engine->access(a, false).version, 1u);
    EXPECT_EQ(engine->access(same_set, false).version, 2u);
    // A different set has its own stripe and its own counter.
    EXPECT_EQ(engine->access(0x1, false).version, 1u);
}

TEST(ConcurrentCache, StripeCapSharesVersionCounters)
{
    ConcurrentCacheConfig cfg;
    cfg.max_stripes = 1; // one global stripe
    auto engine = makeEngine(mem::CacheGeometry(1024, 16, 2), cfg);
    EXPECT_EQ(engine->stripes(), 1u);
    EXPECT_EQ(engine->access(0x0, false).version, 1u);
    // Different set, same (only) stripe: the counter continues.
    EXPECT_EQ(engine->access(0x1, false).version, 2u);
}

TEST(ConcurrentCache, ChargesFootprintToBudget)
{
    MemBudget budget(1 << 20);
    {
        auto engine =
            makeEngine(mem::CacheGeometry(4096, 16, 4), {},
                       &budget);
        EXPECT_EQ(budget.used(), engine->footprintBytes());
        EXPECT_GT(budget.used(), 0u);
    }
    EXPECT_EQ(budget.used(), 0u); // released with the engine
}

TEST(ConcurrentCache, BudgetOverrunFailsCreation)
{
    MemBudget tiny(64);
    Expected<std::unique_ptr<ConcurrentCache>> e =
        ConcurrentCache::create(mem::CacheGeometry(4096, 16, 4),
                                {}, &tiny);
    ASSERT_FALSE(e.ok());
    EXPECT_EQ(e.error().code(), ErrorCode::Budget);
    EXPECT_EQ(tiny.used(), 0u);
}

TEST(ConcurrentCache, ConcurrentMixedOpsKeepCountersCoherent)
{
    // Hammer a small engine from several threads, then check the
    // quiesced lifetime counters against per-set ground truth.
    auto engine = makeEngine(mem::CacheGeometry(256, 16, 4));
    constexpr unsigned kThreads = 4;
    constexpr unsigned kOps = 20000;

    std::vector<std::thread> workers;
    for (unsigned t = 0; t < kThreads; ++t) {
        workers.emplace_back([&, t]() {
            for (unsigned i = 0; i < kOps; ++i) {
                mem::BlockAddr b = (i * 7 + t * 13) % 64;
                switch (i % 4) {
                  case 0: engine->probe(b); break;
                  case 1: engine->access(b, (i & 8) != 0); break;
                  case 2: engine->lookup(b); break;
                  default: engine->invalidate(b); break;
                }
            }
        });
    }
    for (std::thread &w : workers)
        w.join();

    // Quiesced: every valid line is findable and consistent.
    const mem::WriteBackCache &c = engine->cache();
    std::uint64_t valid = 0;
    for (std::uint32_t set = 0; set < engine->geom().sets(); ++set)
        valid += c.validCount(set);
    EXPECT_LE(valid,
              std::uint64_t(engine->geom().sets()) *
                  engine->geom().assoc());
    EXPECT_GT(c.fills(), 0u);
}

} // namespace
