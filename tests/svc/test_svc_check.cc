#include <gtest/gtest.h>

#include "check/svc_check.h"

namespace {

using namespace assoc;
using check::SvcFuzzCase;
using check::ViolationLog;
using svc::HistoryEvent;
using svc::OpKind;

/** Run a small contended service and return its history + engine. */
struct HistoryFixture
{
    std::unique_ptr<svc::CacheService> service;
    std::vector<HistoryEvent> events;

    explicit HistoryFixture(std::uint64_t seed)
    {
        SvcFuzzCase c = check::sampleSvcCase(seed, 0, 2);
        Expected<std::unique_ptr<svc::CacheService>> e =
            svc::CacheService::create(c.geom, c.cfg);
        if (!e.ok())
            throw std::runtime_error(e.error().message());
        service = e.take();
        Expected<svc::Session *> s = service->openSession();
        if (!s.ok())
            throw std::runtime_error(s.error().message());
        svc::Session *session = s.take();
        for (const check::SvcOpSpec &op : svcOpStream(c, 0))
            session->apply(op.kind, op.block, op.is_write);
        events = service->collectHistory();
        geom = c.geom;
        policy = c.cfg.engine.policy;
        stripes = service->engine().stripes();
    }

    mem::CacheGeometry geom{1024, 16, 2};
    mem::ReplPolicy policy = mem::ReplPolicy::Lru;
    unsigned stripes = 0;
};

TEST(SvcHistoryChecker, CleanHistoryPasses)
{
    HistoryFixture fx(11);
    ViolationLog log;
    check::checkSvcHistory(fx.geom, fx.policy, fx.stripes,
                           fx.events, &fx.service->engine().cache(),
                           log);
    EXPECT_TRUE(log.ok()) << (log.messages().empty()
                                  ? ""
                                  : log.messages().front());
}

TEST(SvcHistoryChecker, DetectsCorruptedOutcome)
{
    HistoryFixture fx(12);
    ASSERT_FALSE(fx.events.empty());
    // Flip one recorded hit outcome: the replay must notice.
    for (HistoryEvent &e : fx.events) {
        if (e.op.kind == OpKind::Probe) {
            e.op.hit = !e.op.hit;
            break;
        }
    }
    ViolationLog log;
    check::checkSvcHistory(fx.geom, fx.policy, fx.stripes,
                           fx.events, nullptr, log);
    EXPECT_FALSE(log.ok());
}

TEST(SvcHistoryChecker, DetectsDuplicateMutationVersion)
{
    HistoryFixture fx(13);
    // Find two mutations on the same stripe and give the second
    // the first one's version — the signature of a writer that
    // slipped past the stripe lock.
    HistoryEvent *first = nullptr;
    bool corrupted = false;
    for (HistoryEvent &e : fx.events) {
        if (!e.op.mutated)
            continue;
        unsigned stripe = e.op.set & (fx.stripes - 1);
        if (!first) {
            first = &e;
        } else if ((first->op.set & (fx.stripes - 1)) == stripe) {
            e.op.version = first->op.version;
            corrupted = true;
            break;
        }
    }
    ASSERT_TRUE(corrupted);
    ViolationLog log;
    check::checkSvcHistory(fx.geom, fx.policy, fx.stripes,
                           fx.events, nullptr, log);
    EXPECT_FALSE(log.ok());
}

TEST(SvcHistoryChecker, DetectsVersionGap)
{
    HistoryFixture fx(14);
    // Push one mutation's version far ahead: a mutation escaped
    // the seqlock protocol.
    bool corrupted = false;
    for (HistoryEvent &e : fx.events) {
        if (e.op.mutated) {
            e.op.version += 1000;
            corrupted = true;
            break;
        }
    }
    ASSERT_TRUE(corrupted);
    ViolationLog log;
    check::checkSvcHistory(fx.geom, fx.policy, fx.stripes,
                           fx.events, nullptr, log);
    EXPECT_FALSE(log.ok());
}

TEST(SvcStatsMerge, DetectsDivergence)
{
    svc::TenantStats a, b;
    svc::OpResult r;
    r.kind = OpKind::Access;
    r.hit = true;
    r.probes = 2;
    r.mutated = true;
    a.recordOp(r);
    b.recordOp(r);
    b.recordOp(r); // one extra op

    ViolationLog log;
    check::checkStatsMerge(a, b, log);
    EXPECT_FALSE(log.ok());
}

TEST(SvcFuzz, CaseSamplingIsDeterministic)
{
    SvcFuzzCase a = check::sampleSvcCase(42, 7);
    SvcFuzzCase b = check::sampleSvcCase(42, 7);
    EXPECT_EQ(a.case_seed, b.case_seed);
    EXPECT_TRUE(a.geom == b.geom);
    EXPECT_EQ(a.threads, b.threads);
    EXPECT_EQ(a.block_space, b.block_space);

    // The override pins the thread count without reshaping the case.
    SvcFuzzCase forced = check::sampleSvcCase(42, 7, 8);
    EXPECT_EQ(forced.threads, 8u);
    EXPECT_TRUE(forced.geom == a.geom);
    EXPECT_EQ(forced.case_seed, a.case_seed);
}

TEST(SvcFuzz, StreamsAreDeterministicAndPerThread)
{
    SvcFuzzCase c = check::sampleSvcCase(42, 3);
    std::vector<check::SvcOpSpec> s0 = svcOpStream(c, 0);
    std::vector<check::SvcOpSpec> s0b = svcOpStream(c, 0);
    std::vector<check::SvcOpSpec> s1 = svcOpStream(c, 1);
    ASSERT_EQ(s0.size(), s0b.size());
    for (std::size_t i = 0; i < s0.size(); ++i) {
        EXPECT_EQ(s0[i].block, s0b[i].block);
        EXPECT_EQ(static_cast<int>(s0[i].kind),
                  static_cast<int>(s0b[i].kind));
    }
    bool differs = s0.size() != s1.size();
    for (std::size_t i = 0; !differs && i < s0.size(); ++i)
        differs = s0[i].block != s1[i].block ||
                  s0[i].kind != s1[i].kind;
    EXPECT_TRUE(differs);
}

TEST(SvcFuzz, ShortCampaignPasses)
{
    check::SvcFuzzOptions opt;
    opt.seed = 21;
    opt.iterations = 10;
    check::SvcFuzzSummary sum = check::runSvcFuzz(opt);
    EXPECT_TRUE(sum.ok());
    EXPECT_EQ(sum.cases_run, 10u);
    EXPECT_GT(sum.ops, 0u);

    // Same campaign, same digest: repro lines stay meaningful.
    check::SvcFuzzSummary again = check::runSvcFuzz(opt);
    EXPECT_EQ(sum.digest, again.digest);
}

TEST(SvcFuzz, ReproCommandEchoesThreads)
{
    EXPECT_EQ(check::svcReproCommand(3, 17, 4),
              "fuzz_diff --threads=4 --seed=3 --config=17");
}

} // namespace
