// Tests for the svc chaos campaign (check/svc_chaos.h): case
// sampling determinism, per-fault-kind execution with conservation
// and serializability intact, campaign digest stability across
// reruns, and repro-command shape.

#include "check/svc_chaos.h"

#include <set>

#include <gtest/gtest.h>

namespace {

using namespace assoc;
using check::SvcChaosCase;
using check::SvcChaosOptions;
using check::SvcChaosRun;
using check::SvcChaosSummary;

TEST(SvcChaosSampling, CasesArePureFunctionsOfSeedAndIndex)
{
    for (std::uint64_t i = 0; i < 20; ++i) {
        SvcChaosCase a = check::sampleSvcChaosCase(11, i);
        SvcChaosCase b = check::sampleSvcChaosCase(11, i);
        EXPECT_EQ(a.case_seed, b.case_seed);
        EXPECT_EQ(a.threads, b.threads);
        EXPECT_EQ(a.ops_per_thread, b.ops_per_thread);
        EXPECT_EQ(a.fault.svc_fault, b.fault.svc_fault);
        EXPECT_EQ(a.fault.svc_victim, b.fault.svc_victim);
        EXPECT_EQ(a.cfg.admission.quota_burst,
                  b.cfg.admission.quota_burst);
        EXPECT_EQ(a.describe(), b.describe());
    }
}

TEST(SvcChaosSampling, SweepsEveryServiceFaultKind)
{
    std::set<exec::SvcFaultKind> seen;
    for (std::uint64_t i = 0; i < 64; ++i)
        seen.insert(check::sampleSvcChaosCase(5, i).fault.svc_fault);
    EXPECT_TRUE(seen.count(exec::SvcFaultKind::LockHolderStall));
    EXPECT_TRUE(seen.count(exec::SvcFaultKind::TenantFlood));
    EXPECT_TRUE(seen.count(exec::SvcFaultKind::BudgetSqueeze));
    EXPECT_TRUE(seen.count(exec::SvcFaultKind::DeadlineStorm));
}

TEST(SvcChaosSampling, ThreadsOverrideWins)
{
    SvcChaosCase c = check::sampleSvcChaosCase(5, 3, 7);
    EXPECT_EQ(c.threads, 7u);
}

// One case per fault kind, executed for real: the case must hold
// conservation + serializability and shed/fail only with the
// structured error shapes (all asserted inside runSvcChaosCase).
TEST(SvcChaosRunCase, EveryFaultKindPassesItsInvariants)
{
    std::set<exec::SvcFaultKind> covered;
    for (std::uint64_t i = 0; i < 24 && covered.size() < 4; ++i) {
        SvcChaosCase c = check::sampleSvcChaosCase(3, i, 2);
        if (covered.count(c.fault.svc_fault))
            continue;
        covered.insert(c.fault.svc_fault);
        SvcChaosRun run = check::runSvcChaosCase(c);
        EXPECT_TRUE(run.log.ok())
            << c.describe() << ": " << run.log.messages().front();
        EXPECT_GT(run.ops, 0u);
        EXPECT_TRUE(run.totals.conservationHolds());
    }
    EXPECT_EQ(covered.size(), 4u);
}

TEST(SvcChaosRunCase, DeterminismDigestIsStableAcrossRuns)
{
    SvcChaosCase c = check::sampleSvcChaosCase(9, 2, 2);
    SvcChaosRun a = check::runSvcChaosCase(c);
    SvcChaosRun b = check::runSvcChaosCase(c);
    ASSERT_TRUE(a.log.ok());
    ASSERT_TRUE(b.log.ok());
    EXPECT_EQ(a.determinism_digest, b.determinism_digest);
    EXPECT_TRUE(
        a.totals.identicalDeterministic(b.totals));
}

TEST(SvcChaosCampaign, SmallCampaignPassesAndDigestsStably)
{
    SvcChaosOptions opt;
    opt.seed = 21;
    opt.iterations = 4;
    opt.threads = 2;
    SvcChaosSummary first = check::runSvcChaos(opt);
    SvcChaosSummary second = check::runSvcChaos(opt);
    EXPECT_TRUE(first.ok());
    EXPECT_EQ(first.cases_run, 4u);
    EXPECT_GT(first.ops, 0u);
    EXPECT_TRUE(first.totals.conservationHolds());
    EXPECT_EQ(first.digest, second.digest);
}

TEST(SvcChaosCampaign, OnlyCaseRunsExactlyOne)
{
    SvcChaosOptions opt;
    opt.seed = 21;
    opt.iterations = 50;
    opt.threads = 2;
    opt.have_only_case = true;
    opt.only_case = 3;
    SvcChaosSummary sum = check::runSvcChaos(opt);
    EXPECT_TRUE(sum.ok());
    EXPECT_EQ(sum.cases_run, 1u);
}

TEST(SvcChaosRepro, CommandNamesTheTool)
{
    std::string cmd = check::svcChaosReproCommand(7, 42);
    EXPECT_NE(cmd.find("fuzz_diff"), std::string::npos);
    EXPECT_NE(cmd.find("--svc-chaos"), std::string::npos);
    EXPECT_NE(cmd.find("--seed=7"), std::string::npos);
    EXPECT_NE(cmd.find("--config=42"), std::string::npos);
}

} // namespace
