#include <gtest/gtest.h>

#include "core/analytic.h"
#include "util/logging.h"

namespace assoc {
namespace core {
namespace analytic {
namespace {

// Table 1 of the paper, verbatim.

TEST(Analytic, TraditionalIsAlwaysOneProbe)
{
    EXPECT_DOUBLE_EQ(traditionalHit(), 1.0);
    EXPECT_DOUBLE_EQ(traditionalMiss(), 1.0);
}

TEST(Analytic, NaiveTable1Row)
{
    // a = 4: hit 2.5, miss 4.
    EXPECT_DOUBLE_EQ(naiveHit(4), 2.5);
    EXPECT_DOUBLE_EQ(naiveMiss(4), 4.0);
    EXPECT_DOUBLE_EQ(naiveHit(1), 1.0);
    EXPECT_DOUBLE_EQ(naiveHit(16), 8.5);
}

TEST(Analytic, MruTable1Row)
{
    // a = 4, miss = 1 + a = 5.
    EXPECT_DOUBLE_EQ(mruMiss(4), 5.0);
    // Hit is 1 + sum i*f_i: bounded by [2, a+1].
    std::vector<double> best{0.0, 1.0, 0.0, 0.0, 0.0};
    EXPECT_DOUBLE_EQ(mruHit(best), 2.0);
    std::vector<double> worst{0.0, 0.0, 0.0, 0.0, 1.0};
    EXPECT_DOUBLE_EQ(mruHit(worst), 5.0);
    std::vector<double> uniform{0.0, 0.25, 0.25, 0.25, 0.25};
    EXPECT_DOUBLE_EQ(mruHit(uniform), 3.5);
}

TEST(Analytic, PartialTable1RowSingleSubset)
{
    // a = 4, k = 4: hit 2 + 3/32 = 2.09375, miss 1 + 4/16 = 1.25.
    EXPECT_NEAR(partialHit(4, 4, 1), 2.09, 0.005);
    EXPECT_DOUBLE_EQ(partialMiss(4, 4, 1), 1.25);
}

TEST(Analytic, PartialTable1RowEightWayNoSubsets)
{
    // a = 8, k = 2, s = 1: hit 2 + 7/8 = 2.875 ~ 2.88, miss 3.0.
    EXPECT_NEAR(partialHit(8, 2, 1), 2.88, 0.005);
    EXPECT_DOUBLE_EQ(partialMiss(8, 2, 1), 3.0);
}

TEST(Analytic, PartialTable1RowEightWayTwoSubsets)
{
    // a = 8, k = 4, s = 2: hit 2.72, miss 2.5.
    EXPECT_NEAR(partialHit(8, 4, 2), 2.72, 0.005);
    EXPECT_DOUBLE_EQ(partialMiss(8, 4, 2), 2.5);
}

TEST(Analytic, PartialCollapsesAtFullSubsets)
{
    // s = a degenerates to the naive scan: each subset is one tag,
    // k = t. Miss = a (+ ~0 false matches), hit ~ (a+1)/2 + 1...
    // With k = 16 the false-match terms vanish.
    EXPECT_NEAR(partialMiss(4, 16, 4), 4.0, 1e-4);
    // (s+1)/2 + 1 = 3.5: one extra probe versus naive's 2.5 since
    // each subset probe is followed by the full compare of its tag.
    EXPECT_NEAR(partialHit(4, 16, 4), 3.5, 1e-3);
}

TEST(Analytic, ReducedMruCollapsesToFullList)
{
    std::vector<double> f{0.0, 0.5, 0.25, 0.15, 0.10};
    EXPECT_DOUBLE_EQ(mruReducedHit(f, 0), mruHit(f));
    EXPECT_DOUBLE_EQ(mruReducedHit(f, 4), mruHit(f));
    EXPECT_DOUBLE_EQ(mruReducedHit(f, 9), mruHit(f));
}

TEST(Analytic, ReducedMruHandComputation)
{
    // a = 4, L = 2: in-list mass 0.75 at distances 1, 2; beyond
    // mass 0.25 costs 2 + (4 - 2 + 1)/2 = 3.5 probes after the
    // list read.
    std::vector<double> f{0.0, 0.5, 0.25, 0.15, 0.10};
    double expect = 1.0 + (1 * 0.5 + 2 * 0.25) + 0.25 * 3.5;
    EXPECT_DOUBLE_EQ(mruReducedHit(f, 2), expect);
}

TEST(Analytic, ShorterListsNeverBeatLongerOnes)
{
    std::vector<double> f{0.0, 0.4, 0.3, 0.15, 0.08, 0.04,
                          0.02, 0.007, 0.003};
    double prev = mruReducedHit(f, 1);
    for (unsigned len = 2; len <= 8; ++len) {
        double cur = mruReducedHit(f, len);
        EXPECT_LE(cur, prev + 1e-12) << "len=" << len;
        prev = cur;
    }
}

TEST(Analytic, ReducedMruValidation)
{
    EXPECT_THROW(mruReducedHit({0.0}, 1), FatalError);
}

TEST(Analytic, CombinedWeighting)
{
    EXPECT_DOUBLE_EQ(combined(2.0, 4.0, 0.0), 2.0);
    EXPECT_DOUBLE_EQ(combined(2.0, 4.0, 1.0), 4.0);
    EXPECT_DOUBLE_EQ(combined(2.0, 4.0, 0.25), 2.5);
    EXPECT_THROW(combined(1, 1, -0.1), FatalError);
    EXPECT_THROW(combined(1, 1, 1.1), FatalError);
}

TEST(Analytic, KOptMatchesSection2)
{
    // k_opt = log2(t) - 1/2: 3.5 for t = 16, 4.5 for t = 32.
    EXPECT_DOUBLE_EQ(kOpt(16), 3.5);
    EXPECT_DOUBLE_EQ(kOpt(32), 4.5);
}

TEST(Analytic, PartialWidth)
{
    EXPECT_EQ(partialWidth(4, 16, 1), 4u);
    EXPECT_EQ(partialWidth(8, 16, 1), 2u);
    EXPECT_EQ(partialWidth(8, 16, 2), 4u);
    EXPECT_EQ(partialWidth(16, 16, 4), 4u);
    EXPECT_EQ(partialWidth(16, 32, 2), 4u);
    EXPECT_EQ(partialWidth(4, 32, 1), 8u);
    // s = a gives k = t.
    EXPECT_EQ(partialWidth(4, 16, 4), 16u);
}

TEST(Analytic, ChooseSubsetsPrefersFourBitCompares)
{
    // Section 2.2 answer (3): with 16-32 bit tags, pick the subset
    // count giving at least 4-bit partial compares.
    EXPECT_EQ(chooseSubsets(4, 16), 1u);
    EXPECT_EQ(chooseSubsets(8, 16), 2u);
    EXPECT_EQ(chooseSubsets(16, 16), 4u);
    EXPECT_EQ(chooseSubsets(8, 32), 1u);
    EXPECT_EQ(chooseSubsets(16, 32), 2u);
}

TEST(Analytic, ChooseSubsetsTable1Example)
{
    // Table 1 remarks that going from 1 to 2 subsets improves the
    // 8-way 16-bit-tag configuration.
    double one = combined(partialHit(8, 2, 1), partialMiss(8, 2, 1),
                          0.2);
    double two = combined(partialHit(8, 4, 2), partialMiss(8, 4, 2),
                          0.2);
    EXPECT_LT(two, one);
}

TEST(Analytic, ChooseSubsetsReactsToMissRatio)
{
    // More subsets always help misses (fewer false matches), so a
    // very high miss ratio can only shift the optimum toward more
    // subsets, never fewer.
    for (unsigned a : {4u, 8u, 16u}) {
        EXPECT_GE(chooseSubsets(a, 16, 0.9), chooseSubsets(a, 16, 0.0));
    }
}

TEST(Analytic, ValidationErrors)
{
    EXPECT_THROW(naiveHit(0), FatalError);
    EXPECT_THROW(partialHit(8, 0, 1), FatalError);
    EXPECT_THROW(partialHit(8, 4, 3), FatalError);
    EXPECT_THROW(partialMiss(8, 33, 1), FatalError);
    EXPECT_THROW(partialWidth(8, 16, 5), FatalError);
    EXPECT_THROW(kOpt(0), FatalError);
    EXPECT_THROW(chooseSubsets(6, 16), FatalError);
}

/** Probes grow linearly in associativity for the serial schemes. */
TEST(Analytic, SerialSchemesScaleLinearly)
{
    for (unsigned a = 2; a <= 64; a *= 2) {
        EXPECT_DOUBLE_EQ(naiveHit(2 * a) - naiveHit(a), a / 2.0);
        EXPECT_DOUBLE_EQ(naiveMiss(2 * a) - naiveMiss(a), a);
        EXPECT_DOUBLE_EQ(mruMiss(2 * a) - mruMiss(a), a);
    }
}

} // namespace
} // namespace analytic
} // namespace core
} // namespace assoc
