#include <gtest/gtest.h>

#include <vector>

#include "core/mru_lookup.h"
#include "util/logging.h"

namespace assoc {
namespace core {
namespace {

struct SetFixture
{
    std::vector<std::uint32_t> tags;
    std::vector<std::uint8_t> valid;
    std::vector<std::uint8_t> mru;

    LookupInput
    input(std::uint32_t incoming) const
    {
        LookupInput in;
        in.assoc = static_cast<unsigned>(tags.size());
        in.stored_tags = tags.data();
        in.valid = valid.data();
        in.mru_order = mru.data();
        in.incoming_tag = incoming;
        return in;
    }
};

SetFixture
fourWay()
{
    // Ways 0..3 hold 0xA,0xB,0xC,0xD; recency order: C,A,D,B.
    return SetFixture{{0xA, 0xB, 0xC, 0xD},
                      {1, 1, 1, 1},
                      {2, 0, 3, 1}};
}

TEST(MruLookup, FullListProbesAreOnePlusMruDistance)
{
    MruLookup mru; // full list
    SetFixture s = fourWay();
    // Distance 1 (tag C) -> 1 list probe + 1 tag probe.
    EXPECT_EQ(mru.lookup(s.input(0xC)).probes, 2u);
    EXPECT_EQ(mru.lookup(s.input(0xA)).probes, 3u);
    EXPECT_EQ(mru.lookup(s.input(0xD)).probes, 4u);
    EXPECT_EQ(mru.lookup(s.input(0xB)).probes, 5u);
}

TEST(MruLookup, MissCostsOnePlusAssociativity)
{
    MruLookup mru;
    SetFixture s = fourWay();
    LookupResult r = mru.lookup(s.input(0x9));
    EXPECT_FALSE(r.hit);
    EXPECT_EQ(r.probes, 5u);
}

TEST(MruLookup, FindsTheRightWay)
{
    MruLookup mru;
    SetFixture s = fourWay();
    LookupResult r = mru.lookup(s.input(0xD));
    EXPECT_TRUE(r.hit);
    EXPECT_EQ(r.way, 3);
}

TEST(MruLookup, ReducedListSearchesListFirst)
{
    MruLookup mru2(2); // keep only the 2 most recent positions
    SetFixture s = fourWay();
    // In-list hits cost the same as the full list.
    EXPECT_EQ(mru2.lookup(s.input(0xC)).probes, 2u);
    EXPECT_EQ(mru2.lookup(s.input(0xA)).probes, 3u);
    // Tag D is at way 3, beyond the list. After probing list ways
    // {2,0}, the remaining ways are scanned in way order: 1, 3.
    // Probes: 1 (list) + 2 (list ways) + 2 (ways 1,3) = 5.
    EXPECT_EQ(mru2.lookup(s.input(0xD)).probes, 5u);
    // Tag B is at way 1: 1 + 2 + 1 = 4.
    EXPECT_EQ(mru2.lookup(s.input(0xB)).probes, 4u);
}

TEST(MruLookup, ReducedListMissStillProbesEveryTagOnce)
{
    MruLookup mru1(1);
    SetFixture s = fourWay();
    LookupResult r = mru1.lookup(s.input(0x9));
    EXPECT_FALSE(r.hit);
    EXPECT_EQ(r.probes, 5u); // 1 + 4, same as the full list
}

TEST(MruLookup, ListLongerThanAssocBehavesLikeFull)
{
    MruLookup mru(16);
    SetFixture s = fourWay();
    EXPECT_EQ(mru.lookup(s.input(0xB)).probes, 5u);
    EXPECT_EQ(mru.lookup(s.input(0x9)).probes, 5u);
}

TEST(MruLookup, ZeroMeansFullList)
{
    MruLookup full(0), explicit4(4);
    SetFixture s = fourWay();
    for (std::uint32_t tag : {0xAu, 0xBu, 0xCu, 0xDu, 0x9u}) {
        EXPECT_EQ(full.lookup(s.input(tag)).probes,
                  explicit4.lookup(s.input(tag)).probes);
    }
}

TEST(MruLookup, InvalidWaysCostProbesButNeverHit)
{
    SetFixture s{{0xA, 0xB, 0xC, 0xD},
                 {1, 1, 0, 1},
                 {2, 0, 3, 1}};
    MruLookup mru;
    // Tag C's way is invalid: overall miss with 1 + 4 probes.
    LookupResult r = mru.lookup(s.input(0xC));
    EXPECT_FALSE(r.hit);
    EXPECT_EQ(r.probes, 5u);
    // Tag A sits at distance 2; the invalid way before it still
    // costs a probe.
    EXPECT_EQ(mru.lookup(s.input(0xA)).probes, 3u);
}

TEST(MruLookup, Names)
{
    EXPECT_EQ(MruLookup().name(), "MRU");
    EXPECT_EQ(MruLookup(2).name(), "MRU-2");
}

TEST(MruLookup, HugeAssociativityPanics)
{
    std::vector<std::uint32_t> tags(128, 0);
    std::vector<std::uint8_t> valid(128, 1);
    std::vector<std::uint8_t> order(128);
    for (unsigned i = 0; i < 128; ++i)
        order[i] = static_cast<std::uint8_t>(i);
    LookupInput in;
    in.assoc = 128;
    in.stored_tags = tags.data();
    in.valid = valid.data();
    in.mru_order = order.data();
    in.incoming_tag = 1;
    EXPECT_THROW(MruLookup().lookup(in), PanicError);
}

/** Parameterized checks over all reduced-list lengths. */
class MruListLength : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(MruListLength, InListHitsCostSameAsFullList)
{
    // A hit whose MRU distance is within the reduced list costs
    // exactly what the full list charges. (Out-of-list hits fall
    // back to way order and can cost more *or* less per access;
    // only the expectation degrades.)
    unsigned len = GetParam();
    MruLookup reduced(len), full(0);
    SetFixture s = fourWay();
    for (unsigned pos = 0; pos < len && pos < 4; ++pos) {
        std::uint32_t tag = s.tags[s.mru[pos]];
        EXPECT_EQ(reduced.lookup(s.input(tag)).probes,
                  full.lookup(s.input(tag)).probes)
            << "list position " << pos;
    }
}

TEST_P(MruListLength, MissCostIndependentOfListLength)
{
    unsigned len = GetParam();
    MruLookup reduced(len);
    SetFixture s = fourWay();
    LookupResult r = reduced.lookup(s.input(0x9));
    EXPECT_FALSE(r.hit);
    EXPECT_EQ(r.probes, 5u); // 1 + a, always
}

INSTANTIATE_TEST_SUITE_P(Lengths, MruListLength,
                         ::testing::Values(1u, 2u, 3u, 4u));

} // namespace
} // namespace core
} // namespace assoc
