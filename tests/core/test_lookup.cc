#include <gtest/gtest.h>

#include <vector>

#include "core/lookup.h"

namespace assoc {
namespace core {
namespace {

/** Convenience builder for LookupInput over explicit vectors. */
struct SetFixture
{
    std::vector<std::uint32_t> tags;
    std::vector<std::uint8_t> valid;
    std::vector<std::uint8_t> mru;

    SetFixture(std::vector<std::uint32_t> t, std::vector<std::uint8_t> v,
               std::vector<std::uint8_t> m)
        : tags(std::move(t)), valid(std::move(v)), mru(std::move(m))
    {}

    LookupInput
    input(std::uint32_t incoming) const
    {
        LookupInput in;
        in.assoc = static_cast<unsigned>(tags.size());
        in.stored_tags = tags.data();
        in.valid = valid.data();
        in.mru_order = mru.data();
        in.incoming_tag = incoming;
        return in;
    }
};

SetFixture
fourWay()
{
    // Ways 0..3 hold tags 0xA, 0xB, 0xC, 0xD; MRU order 2,0,3,1.
    return SetFixture({0xA, 0xB, 0xC, 0xD}, {1, 1, 1, 1},
                      {2, 0, 3, 1});
}

TEST(TraditionalLookup, AlwaysOneProbe)
{
    TraditionalLookup trad;
    SetFixture s = fourWay();
    for (std::uint32_t tag : {0xAu, 0xBu, 0xCu, 0xDu, 0xEu}) {
        LookupResult r = trad.lookup(s.input(tag));
        EXPECT_EQ(r.probes, 1u);
    }
}

TEST(TraditionalLookup, FindsTheRightWay)
{
    TraditionalLookup trad;
    SetFixture s = fourWay();
    LookupResult r = trad.lookup(s.input(0xC));
    EXPECT_TRUE(r.hit);
    EXPECT_EQ(r.way, 2);
    r = trad.lookup(s.input(0x9));
    EXPECT_FALSE(r.hit);
    EXPECT_EQ(r.way, -1);
}

TEST(TraditionalLookup, IgnoresInvalidWays)
{
    SetFixture s({0xA, 0xB, 0xC, 0xD}, {1, 0, 1, 1}, {2, 0, 3, 1});
    TraditionalLookup trad;
    LookupResult r = trad.lookup(s.input(0xB));
    EXPECT_FALSE(r.hit);
    EXPECT_EQ(r.probes, 1u);
}

TEST(NaiveLookup, ProbesEqualWayPositionPlusOne)
{
    NaiveLookup naive;
    SetFixture s = fourWay();
    EXPECT_EQ(naive.lookup(s.input(0xA)).probes, 1u);
    EXPECT_EQ(naive.lookup(s.input(0xB)).probes, 2u);
    EXPECT_EQ(naive.lookup(s.input(0xC)).probes, 3u);
    EXPECT_EQ(naive.lookup(s.input(0xD)).probes, 4u);
}

TEST(NaiveLookup, MissCostsAssociativityProbes)
{
    NaiveLookup naive;
    SetFixture s = fourWay();
    LookupResult r = naive.lookup(s.input(0x9));
    EXPECT_FALSE(r.hit);
    EXPECT_EQ(r.probes, 4u);
}

TEST(NaiveLookup, InvalidFramesStillCostProbes)
{
    // The tag RAM is read regardless of the valid bit.
    SetFixture s({0xA, 0xB, 0xC, 0xD}, {0, 0, 1, 1}, {2, 0, 3, 1});
    NaiveLookup naive;
    LookupResult r = naive.lookup(s.input(0xC));
    EXPECT_TRUE(r.hit);
    EXPECT_EQ(r.probes, 3u);
}

TEST(NaiveLookup, InvalidMatchingTagDoesNotHit)
{
    SetFixture s({0xA, 0xB, 0xC, 0xD}, {0, 1, 1, 1}, {2, 0, 3, 1});
    NaiveLookup naive;
    LookupResult r = naive.lookup(s.input(0xA));
    EXPECT_FALSE(r.hit);
    EXPECT_EQ(r.probes, 4u);
}

TEST(NaiveLookup, StopsAtFirstMatch)
{
    // Duplicate tags cannot happen in a real cache, but the scan
    // must terminate at the first match regardless.
    SetFixture s({0xA, 0xA, 0xA, 0xA}, {1, 1, 1, 1}, {0, 1, 2, 3});
    NaiveLookup naive;
    LookupResult r = naive.lookup(s.input(0xA));
    EXPECT_TRUE(r.hit);
    EXPECT_EQ(r.way, 0);
    EXPECT_EQ(r.probes, 1u);
}

TEST(Lookup, DirectMappedDegenerateCase)
{
    SetFixture s({0x5}, {1}, {0});
    NaiveLookup naive;
    TraditionalLookup trad;
    EXPECT_EQ(naive.lookup(s.input(0x5)).probes, 1u);
    EXPECT_EQ(trad.lookup(s.input(0x5)).probes, 1u);
    EXPECT_EQ(naive.lookup(s.input(0x6)).probes, 1u);
}

TEST(Lookup, Names)
{
    EXPECT_EQ(TraditionalLookup().name(), "Traditional");
    EXPECT_EQ(NaiveLookup().name(), "Naive");
}

} // namespace
} // namespace core
} // namespace assoc
