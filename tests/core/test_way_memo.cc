/**
 * @file
 * Way memoization and way prediction (way_memo.h): memo hits skip
 * every tag probe, memo misses price the underlying scheme plus the
 * table traffic, and neither strategy may ever change what hits —
 * only what it costs. The stale-entry and invalidation paths that
 * mirror hardware memo-table clearing are pinned here, as is the
 * WayPredict probe discipline (one probe on a correct prediction,
 * two on anything else).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <initializer_list>
#include <memory>
#include <numeric>
#include <vector>

#include "core/lookup.h"
#include "core/mru_lookup.h"
#include "core/way_memo.h"
#include "util/logging.h"
#include "util/rng.h"

namespace assoc {
namespace core {
namespace {

/** A fully valid set with MRU order 0,1,2,... by default. */
struct TestSet
{
    std::vector<std::uint32_t> tags;
    std::vector<std::uint8_t> valid;
    std::vector<std::uint8_t> order;

    TestSet(std::initializer_list<std::uint32_t> t)
        : tags(t), valid(t.size(), 1), order(t.size())
    {
        std::iota(order.begin(), order.end(),
                  static_cast<std::uint8_t>(0));
    }

    LookupInput
    input(std::uint32_t incoming, std::uint32_t block) const
    {
        LookupInput in;
        in.assoc = static_cast<unsigned>(tags.size());
        in.stored_tags = tags.data();
        in.valid = valid.data();
        in.mru_order = order.data();
        in.incoming_tag = incoming;
        in.block_addr = block;
        in.set = block & 7;
        return in;
    }
};

WayMemoLookup
makeMemo(WayMemoConfig cfg = WayMemoConfig())
{
    return WayMemoLookup(std::make_unique<TraditionalLookup>(), cfg);
}

TEST(WayMemo, ColdLookupMissesThenMemoizes)
{
    WayMemoLookup wm = makeMemo();
    TestSet s{1, 2, 3, 4};

    // Cold table: the underlying Traditional lookup runs (1 probe,
    // a tag reads) plus the failed memo read and the repair write.
    LookupResult first = wm.lookup(s.input(3, 0x30));
    EXPECT_TRUE(first.hit);
    EXPECT_EQ(first.way, 2);
    EXPECT_FALSE(first.memo_hit);
    EXPECT_EQ(first.probes, 1u);
    EXPECT_EQ(first.events.tag_reads, 4u);
    EXPECT_EQ(first.events.memo_reads, 1u);
    EXPECT_EQ(first.events.memo_writes, 1u);

    // Warm entry: same block hits its memoized way with zero probes
    // and nothing but the memo read.
    LookupResult second = wm.lookup(s.input(3, 0x30));
    EXPECT_TRUE(second.hit);
    EXPECT_EQ(second.way, 2);
    EXPECT_TRUE(second.memo_hit);
    EXPECT_EQ(second.probes, 0u);
    EXPECT_EQ(second.events.tag_reads, 0u);
    EXPECT_EQ(second.events.tag_compares, 0u);
    EXPECT_EQ(second.events.memo_reads, 1u);
    EXPECT_EQ(second.events.memo_writes, 0u);

    EXPECT_EQ(wm.memoLookups(), 2u);
    EXPECT_EQ(wm.memoHits(), 1u);
}

TEST(WayMemo, StaleEntryIsDetectedAndRepaired)
{
    WayMemoLookup wm = makeMemo();
    TestSet s{1, 2, 3, 4};
    ASSERT_TRUE(wm.lookup(s.input(3, 0x30)).memo_hit == false);

    // The block "moves" to way 0 (as a refill after eviction would):
    // the entry still says way 2, so the memo misses — but the
    // outcome is the underlying scheme's, untouched.
    std::swap(s.tags[0], s.tags[2]);
    LookupResult moved = wm.lookup(s.input(3, 0x30));
    EXPECT_TRUE(moved.hit);
    EXPECT_EQ(moved.way, 0);
    EXPECT_FALSE(moved.memo_hit);
    EXPECT_EQ(moved.probes, 1u);

    // The miss repaired the entry: next access memo-hits at way 0.
    LookupResult repaired = wm.lookup(s.input(3, 0x30));
    EXPECT_TRUE(repaired.memo_hit);
    EXPECT_EQ(repaired.way, 0);
}

TEST(WayMemo, UnderlyingMissInvalidatesTheEntry)
{
    WayMemoLookup wm = makeMemo();
    TestSet s{1, 2, 3, 4};
    wm.lookup(s.input(3, 0x30)); // memoize way 2

    // The block leaves the cache: a provable miss drops the entry,
    // exactly as hardware invalidation-on-eviction would.
    s.valid[2] = 0;
    LookupResult miss = wm.lookup(s.input(3, 0x30));
    EXPECT_FALSE(miss.hit);
    EXPECT_FALSE(miss.memo_hit);

    // Even though the block returns to the very way the old entry
    // named, the invalidated entry must not memo-hit.
    s.valid[2] = 1;
    LookupResult refill = wm.lookup(s.input(3, 0x30));
    EXPECT_TRUE(refill.hit);
    EXPECT_EQ(refill.way, 2);
    EXPECT_FALSE(refill.memo_hit);
    EXPECT_EQ(wm.memoHits(), 0u);
}

TEST(WayMemo, TaggedEntriesMatchOnlyTheirRegion)
{
    WayMemoConfig cfg;
    cfg.entries = 4;
    WayMemoLookup tagged = makeMemo(cfg);
    cfg.tagged = false;
    WayMemoLookup untagged = makeMemo(cfg);
    TestSet s{1, 2, 3, 4};

    // Blocks 0x00 and 0x04 collide in a 4-entry table (idx 0) but
    // are different regions. Both resolve to way 2 here.
    tagged.lookup(s.input(3, 0x00));
    untagged.lookup(s.input(3, 0x00));

    // Tagged: the colliding region must not reuse the entry.
    EXPECT_FALSE(tagged.lookup(s.input(3, 0x04)).memo_hit);
    // Untagged: the alias is allowed to memo-hit, because the
    // underlying lookup agrees on the way — outcomes are safe, the
    // saved tag bits just widen what counts as a hit.
    EXPECT_TRUE(untagged.lookup(s.input(3, 0x04)).memo_hit);
}

TEST(WayMemo, RegionBitsShareOneEntryAcrossNeighbors)
{
    WayMemoConfig cfg;
    cfg.region_bits = 1; // blocks 2b and 2b+1 share one entry
    WayMemoLookup wm = makeMemo(cfg);
    TestSet s{1, 2, 3, 4};

    wm.lookup(s.input(3, 0x10));
    EXPECT_TRUE(wm.lookup(s.input(3, 0x11)).memo_hit);
    // The next region over is cold.
    EXPECT_FALSE(wm.lookup(s.input(3, 0x12)).memo_hit);
}

TEST(WayMemo, FlushClearsTableAndForwardsToUnderlying)
{
    WayMemoLookup wm = makeMemo();
    TestSet s{1, 2, 3, 4};
    wm.lookup(s.input(3, 0x30));
    ASSERT_TRUE(wm.lookup(s.input(3, 0x30)).memo_hit);

    wm.onFlush();
    EXPECT_FALSE(wm.lookup(s.input(3, 0x30)).memo_hit);
}

TEST(WayMemo, OutcomeIdenticalToUnderlyingUnderFuzz)
{
    // The load-bearing guarantee: across random sets, tags and
    // blocks, hit/miss and the hit way are bit-identical to the
    // underlying scheme; memoization only ever zeroes probes.
    WayMemoConfig cfg;
    cfg.entries = 8; // tiny table: aliasing and staleness galore
    WayMemoLookup wm(std::make_unique<MruLookup>(0), cfg);
    MruLookup bare(0);

    Pcg32 rng(0x3eed);
    for (int i = 0; i < 5000; ++i) {
        TestSet s{0, 0, 0, 0};
        for (unsigned w = 0; w < 4; ++w) {
            s.tags[w] = rng.below(8);
            s.valid[w] = rng.chance(0.8) ? 1 : 0;
        }
        std::stable_partition(s.order.begin(), s.order.end(),
                              [&s](std::uint8_t w) {
                                  return s.valid[w] != 0;
                              });
        LookupInput in = s.input(rng.below(8), rng.below(64));
        LookupResult want = bare.lookup(in);
        LookupResult got = wm.lookup(in);
        ASSERT_EQ(got.hit, want.hit) << "case " << i;
        ASSERT_EQ(got.way, want.way) << "case " << i;
        if (got.memo_hit)
            ASSERT_EQ(got.probes, 0u) << "case " << i;
        else
            ASSERT_EQ(got.probes, want.probes) << "case " << i;
    }
    EXPECT_GT(wm.memoHits(), 0u);
}

TEST(WayMemo, NameDescribesGeometryAndUnderlying)
{
    WayMemoConfig cfg;
    cfg.entries = 16;
    cfg.region_bits = 2;
    WayMemoLookup wm(std::make_unique<TraditionalLookup>(), cfg);
    EXPECT_EQ(wm.name(), "WayMemo(e=16,r=2,tagged)+Traditional");
    cfg.tagged = false;
    WayMemoLookup wu(std::make_unique<NaiveLookup>(), cfg);
    EXPECT_EQ(wu.name(), "WayMemo(e=16,r=2,untagged)+Naive");
}

TEST(WayMemo, RejectsBadGeometry)
{
    WayMemoConfig cfg;
    cfg.entries = 48; // not a power of two
    EXPECT_THROW(makeMemo(cfg), FatalError);
    cfg.entries = 64;
    cfg.region_bits = 32;
    EXPECT_THROW(makeMemo(cfg), FatalError);
}

TEST(WayPredict, CorrectPredictionCostsOneProbe)
{
    WayPredictLookup wp;
    TestSet s{1, 2, 3, 4};
    s.order = {2, 0, 1, 3}; // way 2 is MRU: the prediction

    LookupResult res = wp.lookup(s.input(3, 0));
    EXPECT_TRUE(res.hit);
    EXPECT_EQ(res.way, 2);
    EXPECT_EQ(res.probes, 1u);
    EXPECT_EQ(res.events.tag_reads, 1u);
    EXPECT_EQ(res.events.tag_compares, 1u);
    // The prediction-register read is an energy event, not a probe.
    EXPECT_EQ(res.events.memo_reads, 1u);
    EXPECT_EQ(res.events.memo_writes, 0u);
    EXPECT_EQ(wp.predictions(), 1u);
    EXPECT_EQ(wp.mispredictions(), 0u);
}

TEST(WayPredict, MispredictionAddsOneWideProbe)
{
    WayPredictLookup wp;
    TestSet s{1, 2, 3, 4}; // MRU order 0,1,2,3: prediction = way 0

    LookupResult res = wp.lookup(s.input(4, 0));
    EXPECT_TRUE(res.hit);
    EXPECT_EQ(res.way, 3);
    EXPECT_EQ(res.probes, 2u);
    // One predicted-way read plus the a-1 remaining ways at once.
    EXPECT_EQ(res.events.tag_reads, 4u);
    EXPECT_EQ(res.events.memo_writes, 1u);
    EXPECT_EQ(wp.mispredictions(), 1u);
}

TEST(WayPredict, MissCostsTwoProbesAndCountsAsMisprediction)
{
    WayPredictLookup wp;
    TestSet s{1, 2, 3, 4};
    LookupResult res = wp.lookup(s.input(9, 0));
    EXPECT_FALSE(res.hit);
    EXPECT_EQ(res.probes, 2u);
    EXPECT_EQ(wp.predictions(), 1u);
    EXPECT_EQ(wp.mispredictions(), 1u);
}

TEST(WayPredict, DirectMappedNeverExceedsOneProbe)
{
    WayPredictLookup wp;
    TestSet s{7};
    EXPECT_EQ(wp.lookup(s.input(7, 0)).probes, 1u);
    LookupResult miss = wp.lookup(s.input(3, 0));
    EXPECT_FALSE(miss.hit);
    EXPECT_EQ(miss.probes, 1u); // no remaining ways to widen over
}

TEST(WayPredict, WideProbeResolvesToLowestMatchingWay)
{
    WayPredictLookup wp;
    TestSet s{9, 5, 5, 5}; // prediction (way 0) misses, 1..3 match
    LookupResult res = wp.lookup(s.input(5, 0));
    EXPECT_TRUE(res.hit);
    EXPECT_EQ(res.way, 1); // the parallel priority encoder's pick
}

} // namespace
} // namespace core
} // namespace assoc
