#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "core/mru_lookup.h"
#include "core/wide_lookup.h"
#include "util/logging.h"
#include "util/rng.h"

namespace assoc {
namespace core {
namespace {

struct SetFixture
{
    std::vector<std::uint32_t> tags;
    std::vector<std::uint8_t> valid;
    std::vector<std::uint8_t> mru;

    LookupInput
    input(std::uint32_t incoming) const
    {
        LookupInput in;
        in.assoc = static_cast<unsigned>(tags.size());
        in.stored_tags = tags.data();
        in.valid = valid.data();
        in.mru_order = mru.data();
        in.incoming_tag = incoming;
        return in;
    }
};

SetFixture
eightWay()
{
    return SetFixture{{0xA0, 0xA1, 0xA2, 0xA3, 0xA4, 0xA5, 0xA6, 0xA7},
                      {1, 1, 1, 1, 1, 1, 1, 1},
                      {7, 6, 5, 4, 3, 2, 1, 0}};
}

TEST(WideNaiveLookup, GroupsOfTwo)
{
    WideNaiveLookup wide(2);
    SetFixture s = eightWay();
    EXPECT_EQ(wide.lookup(s.input(0xA0)).probes, 1u);
    EXPECT_EQ(wide.lookup(s.input(0xA1)).probes, 1u);
    EXPECT_EQ(wide.lookup(s.input(0xA2)).probes, 2u);
    EXPECT_EQ(wide.lookup(s.input(0xA7)).probes, 4u);
    EXPECT_EQ(wide.lookup(s.input(0xFF)).probes, 4u); // miss
}

TEST(WideNaiveLookup, WidthOneIsTheNaiveScan)
{
    WideNaiveLookup wide(1);
    SetFixture s = eightWay();
    for (unsigned w = 0; w < 8; ++w)
        EXPECT_EQ(wide.lookup(s.input(0xA0 + w)).probes, w + 1);
    EXPECT_EQ(wide.lookup(s.input(0xFF)).probes, 8u);
}

TEST(WideNaiveLookup, FullWidthIsTheTraditionalLookup)
{
    WideNaiveLookup wide(8);
    SetFixture s = eightWay();
    for (unsigned w = 0; w < 8; ++w)
        EXPECT_EQ(wide.lookup(s.input(0xA0 + w)).probes, 1u);
    EXPECT_EQ(wide.lookup(s.input(0xFF)).probes, 1u);
}

TEST(WideNaiveLookup, WidthNeedNotDivideAssociativity)
{
    WideNaiveLookup wide(3);
    SetFixture s = eightWay();
    EXPECT_EQ(wide.lookup(s.input(0xA6)).probes, 3u);
    EXPECT_EQ(wide.lookup(s.input(0xA7)).probes, 3u);
    EXPECT_EQ(wide.lookup(s.input(0xFF)).probes, 3u);
}

TEST(WideMruLookup, ScansRecencyOrderInGroups)
{
    WideMruLookup wide(2);
    SetFixture s = eightWay(); // recency: A7, A6, ..., A0
    // 1 list probe + group of the hit.
    EXPECT_EQ(wide.lookup(s.input(0xA7)).probes, 2u);
    EXPECT_EQ(wide.lookup(s.input(0xA6)).probes, 2u);
    EXPECT_EQ(wide.lookup(s.input(0xA5)).probes, 3u);
    EXPECT_EQ(wide.lookup(s.input(0xA0)).probes, 5u);
    EXPECT_EQ(wide.lookup(s.input(0xFF)).probes, 5u); // miss
}

TEST(WideLookup, HitWayIsCorrect)
{
    WideNaiveLookup wn(4);
    WideMruLookup wm(4);
    SetFixture s = eightWay();
    EXPECT_EQ(wn.lookup(s.input(0xA5)).way, 5);
    EXPECT_EQ(wm.lookup(s.input(0xA5)).way, 5);
    EXPECT_FALSE(wn.lookup(s.input(0xFF)).hit);
    EXPECT_FALSE(wm.lookup(s.input(0xFF)).hit);
}

TEST(WideLookup, ZeroWidthIsFatal)
{
    EXPECT_THROW(WideNaiveLookup(0), FatalError);
    EXPECT_THROW(WideMruLookup(0), FatalError);
}

TEST(WideLookup, Names)
{
    EXPECT_EQ(WideNaiveLookup(2).name(), "WideNaive-2");
    EXPECT_EQ(WideMruLookup(4).name(), "WideMRU-4");
}

TEST(WideNaiveAnalytic, MatchesNarrowAndWideEndpoints)
{
    // b = 1 is the naive scan; b = a is the traditional lookup.
    EXPECT_DOUBLE_EQ(analytic::wideNaiveHit(8, 1), 4.5);
    EXPECT_DOUBLE_EQ(analytic::wideNaiveMiss(8, 1), 8.0);
    EXPECT_DOUBLE_EQ(analytic::wideNaiveHit(8, 8), 1.0);
    EXPECT_DOUBLE_EQ(analytic::wideNaiveMiss(8, 8), 1.0);
}

TEST(WideNaiveAnalytic, IntermediateWidths)
{
    // a = 8, b = 2: groups of 2, E[group] = (1+1+2+2+3+3+4+4)/8.
    EXPECT_DOUBLE_EQ(analytic::wideNaiveHit(8, 2), 2.5);
    EXPECT_DOUBLE_EQ(analytic::wideNaiveMiss(8, 2), 4.0);
    // a = 8, b = 3: groups cover 3,3,2 ways.
    EXPECT_DOUBLE_EQ(analytic::wideNaiveHit(8, 3),
                     (3 * 1 + 3 * 2 + 2 * 3) / 8.0);
    EXPECT_DOUBLE_EQ(analytic::wideNaiveMiss(8, 3), 3.0);
}

TEST(WideLookup, WidthOneEquivalences)
{
    // WideNaive-1 == Naive and WideMRU-1 == MRU, probe for probe,
    // over random set states.
    WideNaiveLookup wn(1);
    NaiveLookup n;
    WideMruLookup wm(1);
    MruLookup m;
    Pcg32 rng(0x71de);
    for (int trial = 0; trial < 2000; ++trial) {
        SetFixture s = eightWay();
        for (auto &t : s.tags)
            t = rng.next() & 0xff;
        // Random recency permutation.
        for (unsigned w = 7; w > 0; --w)
            std::swap(s.mru[w], s.mru[rng.below(w + 1)]);
        std::uint32_t incoming = rng.chance(0.6)
                                     ? s.tags[rng.below(8)]
                                     : (rng.next() & 0xff);
        LookupInput in = s.input(incoming);
        LookupResult a = wn.lookup(in), b = n.lookup(in);
        ASSERT_EQ(a.probes, b.probes);
        ASSERT_EQ(a.hit, b.hit);
        LookupResult c = wm.lookup(in), d = m.lookup(in);
        ASSERT_EQ(c.probes, d.probes);
        ASSERT_EQ(c.hit, d.hit);
    }
}

TEST(WideLookup, WiderIsNeverMoreProbes)
{
    // Monotonicity: increasing b can only reduce (or hold) the
    // probe count for the same input.
    Pcg32 rng(0x8a8a);
    for (int trial = 0; trial < 2000; ++trial) {
        SetFixture s = eightWay();
        for (auto &t : s.tags)
            t = rng.next() & 0xff;
        std::uint32_t incoming = rng.chance(0.6)
                                     ? s.tags[rng.below(8)]
                                     : (rng.next() & 0xff);
        LookupInput in = s.input(incoming);
        unsigned prev = ~0u;
        for (unsigned b : {1u, 2u, 4u, 8u}) {
            unsigned probes = WideNaiveLookup(b).lookup(in).probes;
            ASSERT_LE(probes, prev) << "b=" << b;
            prev = probes;
        }
    }
}

TEST(WideNaiveAnalytic, MeasuredMatchesFormulaOnUniformHits)
{
    WideNaiveLookup wide(2);
    SetFixture s = eightWay();
    double total = 0;
    for (unsigned w = 0; w < 8; ++w)
        total += wide.lookup(s.input(0xA0 + w)).probes;
    EXPECT_DOUBLE_EQ(total / 8.0, analytic::wideNaiveHit(8, 2));
}

} // namespace
} // namespace core
} // namespace assoc
