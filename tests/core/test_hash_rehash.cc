#include <gtest/gtest.h>

#include "core/hash_rehash.h"
#include "mem/hierarchy.h"
#include "trace/atum_like.h"
#include "util/logging.h"

namespace assoc {
namespace core {
namespace {

using mem::CacheGeometry;
using mem::HierarchyConfig;
using mem::TwoLevelHierarchy;
using trace::MemRef;
using trace::RefType;

/**
 * Drive the shadow directly with crafted views. Uses a hierarchy
 * whose L2 block size matches the L1 so every L1 miss becomes a
 * distinct read-in.
 */
struct Harness
{
    // L1: 64B (4 frames); L2: 512B/16B 1-way: 32 frames.
    HierarchyConfig cfg{CacheGeometry(64, 16, 1),
                        CacheGeometry(512, 16, 1), true};
    TwoLevelHierarchy hier{cfg};
    HashRehashShadow shadow{32};

    Harness() { hier.addObserver(&shadow); }

    void
    read(trace::Addr a)
    {
        hier.access({a, RefType::Read, 0});
    }
};

TEST(HashRehash, FirstTouchMissesWithTwoProbes)
{
    Harness h;
    h.read(0x100);
    EXPECT_EQ(h.shadow.hits().tries(), 1u);
    EXPECT_EQ(h.shadow.hits().hits(), 0u);
    EXPECT_DOUBLE_EQ(h.shadow.missProbes().mean(), 2.0);
}

TEST(HashRehash, PrimaryHitCostsOneProbe)
{
    Harness h;
    h.read(0x100);
    h.read(0x200); // evicts 0x100 from the tiny L1, not the shadow
    h.read(0x100); // L1 miss -> read-in -> shadow primary hit
    EXPECT_EQ(h.shadow.hits().hits(), 1u);
    EXPECT_DOUBLE_EQ(h.shadow.hitProbes().mean(), 1.0);
}

TEST(HashRehash, ConflictDemotesToRehashSlot)
{
    Harness h;
    // Blocks with equal primary index: 32 frames, index bits 0-4 of
    // the block address. L2 blocks 16B: addr 0x000 -> block 0,
    // addr 0x2000 -> block 0x200: index 0 too (0x200 & 31 = 0).
    h.read(0x0000);
    h.read(0x2000); // conflict: 0x0000 demoted to rehash slot
    EXPECT_EQ(h.shadow.swaps(), 1u);
    // Next touch of 0x0000 is a rehash hit (2 probes) + promotion.
    h.read(0x0000);
    EXPECT_EQ(h.shadow.hits().hits(), 1u);
    EXPECT_DOUBLE_EQ(h.shadow.hitProbes().mean(), 2.0);
    EXPECT_DOUBLE_EQ(h.shadow.rehashFraction(), 1.0);
    EXPECT_EQ(h.shadow.swaps(), 2u);
    // And the promotion makes the following touch a primary hit.
    h.read(0x0040); // displaces 0x0000 from the L1 (same L1 set,
                    // different shadow index)
    h.read(0x0000);
    EXPECT_DOUBLE_EQ(h.shadow.hitProbes().mean(), (2.0 + 1.0) / 2);
}

TEST(HashRehash, HoldsTwoConflictingBlocksLikeTwoWay)
{
    Harness h;
    // Alternate touches of two primary-conflicting blocks: after
    // the initial misses, hash-rehash keeps both resident (one in
    // the rehash slot), like a 2-way set.
    h.read(0x0000);
    h.read(0x2000);
    for (int i = 0; i < 6; ++i) {
        h.read(i % 2 == 0 ? 0x0000 : 0x2000);
    }
    // 2 cold misses, everything after hits.
    EXPECT_EQ(h.shadow.hits().misses(), 2u);
    EXPECT_EQ(h.shadow.hits().hits(), 6u);
}

TEST(HashRehash, RehashSlotConflictEvicts)
{
    Harness h;
    // Three blocks sharing a primary index exceed the two slots.
    h.read(0x0000);
    h.read(0x2000); // demotes 0x0000
    h.read(0x4000); // demotes 0x2000, evicting 0x0000 from rehash
    h.read(0x0000); // gone: miss again
    EXPECT_EQ(h.shadow.hits().misses(), 4u);
}

TEST(HashRehash, FlushEmptiesTheArray)
{
    Harness h;
    h.read(0x100);
    h.hier.access(MemRef::flush());
    h.read(0x100);
    EXPECT_EQ(h.shadow.hits().hits(), 0u);
    EXPECT_EQ(h.shadow.hits().misses(), 2u);
}

TEST(HashRehash, WriteBacksAreIgnored)
{
    Harness h;
    h.hier.access({0x100, RefType::Write, 0});
    h.read(0x200); // same L1 set (64B cache): write-back issued
    ASSERT_GT(h.hier.stats().write_backs, 0u);
    // Shadow saw only the two read-ins.
    EXPECT_EQ(h.shadow.hits().tries(), 2u);
}

TEST(HashRehash, RejectsBadFrameCounts)
{
    EXPECT_THROW(HashRehashShadow(0), FatalError);
    EXPECT_THROW(HashRehashShadow(1), FatalError);
    EXPECT_THROW(HashRehashShadow(48), FatalError);
}

TEST(HashRehash, CompetitiveWithTwoWayOnRealTrace)
{
    // Footnote 2's claim, loosely: hash-rehash lands in the same
    // performance zone as a 2-way cache of equal capacity, with
    // most hits at one probe.
    trace::AtumLikeConfig tcfg;
    tcfg.segments = 2;
    tcfg.refs_per_segment = 80000;
    trace::AtumLikeGenerator gen(tcfg);

    HierarchyConfig cfg{CacheGeometry(16384, 16, 1),
                        CacheGeometry(262144, 32, 2), true};
    TwoLevelHierarchy hier(cfg);
    HashRehashShadow shadow(262144 / 32);
    hier.addObserver(&shadow);
    hier.run(gen);

    double ri = static_cast<double>(hier.stats().read_ins);
    double two_way_hr = hier.stats().read_in_hits / ri;
    double hr = shadow.hits().ratio();
    // Within a few points of the true 2-way hit ratio.
    EXPECT_NEAR(hr, two_way_hr, 0.06);
    // Mostly primary hits -> mean hit probes well under 2.
    EXPECT_LT(shadow.hitProbes().mean(), 1.5);
    EXPECT_DOUBLE_EQ(shadow.missProbes().mean(), 2.0);
}

} // namespace
} // namespace core
} // namespace assoc
