#include <gtest/gtest.h>

#include <vector>

#include "core/mru_lookup.h"
#include "core/swap_mru_lookup.h"

namespace assoc {
namespace core {
namespace {

struct SetFixture
{
    std::vector<std::uint32_t> tags;
    std::vector<std::uint8_t> valid;
    std::vector<std::uint8_t> mru;

    LookupInput
    input(std::uint32_t incoming) const
    {
        LookupInput in;
        in.assoc = static_cast<unsigned>(tags.size());
        in.stored_tags = tags.data();
        in.valid = valid.data();
        in.mru_order = mru.data();
        in.incoming_tag = incoming;
        return in;
    }
};

SetFixture
fourWay()
{
    // Ways 0..3 hold 0xA,0xB,0xC,0xD; recency order: C,A,D,B.
    return SetFixture{{0xA, 0xB, 0xC, 0xD},
                      {1, 1, 1, 1},
                      {2, 0, 3, 1}};
}

TEST(SwapMruLookup, ProbesEqualMruDistance)
{
    SwapMruLookup swap;
    SetFixture s = fourWay();
    // No list-read probe: a hit at distance d costs exactly d.
    EXPECT_EQ(swap.lookup(s.input(0xC)).probes, 1u);
    EXPECT_EQ(swap.lookup(s.input(0xA)).probes, 2u);
    EXPECT_EQ(swap.lookup(s.input(0xD)).probes, 3u);
    EXPECT_EQ(swap.lookup(s.input(0xB)).probes, 4u);
}

TEST(SwapMruLookup, MissCostsAssociativityProbes)
{
    SwapMruLookup swap;
    SetFixture s = fourWay();
    LookupResult r = swap.lookup(s.input(0x9));
    EXPECT_FALSE(r.hit);
    EXPECT_EQ(r.probes, 4u); // no wasted list read, unlike MRU
}

TEST(SwapMruLookup, AlwaysOneProbeCheaperThanListMru)
{
    SwapMruLookup swap;
    MruLookup mru;
    SetFixture s = fourWay();
    for (std::uint32_t tag : {0xAu, 0xBu, 0xCu, 0xDu, 0x9u}) {
        EXPECT_EQ(swap.lookup(s.input(tag)).probes + 1,
                  mru.lookup(s.input(tag)).probes);
    }
}

TEST(SwapMruLookup, FindsTheRightWay)
{
    SwapMruLookup swap;
    SetFixture s = fourWay();
    LookupResult r = swap.lookup(s.input(0xD));
    EXPECT_TRUE(r.hit);
    EXPECT_EQ(r.way, 3);
}

TEST(SwapMruLookup, CountsSwapsForReordering)
{
    SwapMruLookup swap;
    SetFixture s = fourWay();
    EXPECT_EQ(swap.swaps(), 0u);
    swap.lookup(s.input(0xC)); // MRU hit: nothing moves
    EXPECT_EQ(swap.swaps(), 0u);
    swap.lookup(s.input(0xB)); // distance 4: 3 blocks shift down
    EXPECT_EQ(swap.swaps(), 3u);
    swap.lookup(s.input(0x9)); // miss: a-1 = 3 blocks shift down
    EXPECT_EQ(swap.swaps(), 6u);
}

TEST(SwapMruLookup, TwoWayIsTheViableCase)
{
    // The paper: "maintaining MRU order using swapping may be
    // feasible for a 2-way set-associative cache". At 2-way, at
    // most one block moves per access.
    SwapMruLookup swap;
    SetFixture s{{0xA, 0xB}, {1, 1}, {1, 0}};
    swap.lookup(s.input(0xB)); // MRU: 0 moves
    swap.lookup(s.input(0xA)); // distance 2: 1 move
    swap.lookup(s.input(0x9)); // miss: 1 move
    EXPECT_EQ(swap.swaps(), 2u);
}

TEST(SwapMruLookup, Name)
{
    EXPECT_EQ(SwapMruLookup().name(), "SwapMRU");
}

} // namespace
} // namespace core
} // namespace assoc
