#include <gtest/gtest.h>

#include <vector>

#include "core/analytic.h"
#include "core/partial_lookup.h"
#include "util/logging.h"
#include "util/rng.h"

namespace assoc {
namespace core {
namespace {

struct SetFixture
{
    std::vector<std::uint32_t> tags;
    std::vector<std::uint8_t> valid;
    std::vector<std::uint8_t> mru;

    explicit SetFixture(std::vector<std::uint32_t> t)
        : tags(std::move(t)), valid(tags.size(), 1), mru(tags.size())
    {
        for (std::size_t i = 0; i < mru.size(); ++i)
            mru[i] = static_cast<std::uint8_t>(i);
    }

    LookupInput
    input(std::uint32_t incoming) const
    {
        LookupInput in;
        in.assoc = static_cast<unsigned>(tags.size());
        in.stored_tags = tags.data();
        in.valid = valid.data();
        in.mru_order = mru.data();
        in.incoming_tag = incoming;
        return in;
    }
};

PartialConfig
config(unsigned k = 4, unsigned s = 1,
       TransformKind tr = TransformKind::None, unsigned t = 16)
{
    PartialConfig cfg;
    cfg.tag_bits = t;
    cfg.field_bits = k;
    cfg.subsets = s;
    cfg.transform = tr;
    return cfg;
}

TEST(PartialLookup, HitWithNoFalseMatchesCostsTwoProbes)
{
    // Untransformed 4-way, k=4: way i's partial compare examines
    // field i. Choose tags whose compared fields all differ from
    // the incoming tag except the true match.
    // incoming 0x1234: fields (4,3,2,1) for ways (0,1,2,3).
    PartialLookup pl(config());
    SetFixture s({0x1234, 0x1204, 0x1034, 0x0234});
    // way1 field1=0 != 3; way2 field2=0 != 2; way3 field3=0 != 1.
    LookupResult r = pl.lookup(s.input(0x1234));
    EXPECT_TRUE(r.hit);
    EXPECT_EQ(r.way, 0);
    EXPECT_EQ(r.probes, 2u); // step 1 + one full compare
}

TEST(PartialLookup, FalseMatchesCostExtraProbes)
{
    PartialLookup pl(config());
    // incoming 0x1234. way0 stored 0x5674: field0 = 4 matches but
    // full tag differs (false match). way1 holds the real block:
    // field1 of 0x1234 is 3; stored 0x1234 at way 1 has field1 = 3.
    SetFixture s({0x5674, 0x1234, 0x0000, 0x0000});
    LookupResult r = pl.lookup(s.input(0x1234));
    EXPECT_TRUE(r.hit);
    EXPECT_EQ(r.way, 1);
    // step 1 + false full compare (way 0) + true full compare.
    EXPECT_EQ(r.probes, 3u);
}

TEST(PartialLookup, MissCostsStepOnePlusFalseMatches)
{
    PartialLookup pl(config());
    // incoming 0x1234, no stored tag matches fully; way2's field2
    // (=2) matches (0x0200 has field2 = 2).
    SetFixture s({0x0000, 0x0000, 0x0200, 0x0000});
    LookupResult r = pl.lookup(s.input(0x1234));
    EXPECT_FALSE(r.hit);
    EXPECT_EQ(r.probes, 2u); // 1 step-1 + 1 false match
}

TEST(PartialLookup, CleanMissCostsOnlyStepOne)
{
    PartialLookup pl(config());
    SetFixture s({0x0000, 0x0000, 0x0000, 0x0000});
    LookupResult r = pl.lookup(s.input(0x1234));
    EXPECT_FALSE(r.hit);
    EXPECT_EQ(r.probes, 1u);
}

TEST(PartialLookup, SubsetsSearchedInOrder)
{
    // 8-way, k=4, t=16 requires 2 subsets of 4 ways.
    PartialLookup pl(config(4, 2));
    // Hit in the second subset (way 5).
    SetFixture s({0, 0, 0, 0, 0, 0x1234, 0, 0});
    // Zero tags: fields all 0; incoming fields (4,3,2,1) nonzero,
    // so no false matches anywhere.
    LookupResult r = pl.lookup(s.input(0x1234));
    EXPECT_TRUE(r.hit);
    EXPECT_EQ(r.way, 5);
    // subset 0 step-1 + subset 1 step-1 + full compare.
    EXPECT_EQ(r.probes, 3u);
}

TEST(PartialLookup, HitInFirstSubsetSkipsSecond)
{
    PartialLookup pl(config(4, 2));
    SetFixture s({0x1234, 0, 0, 0, 0, 0x4321, 0, 0});
    LookupResult r = pl.lookup(s.input(0x1234));
    EXPECT_TRUE(r.hit);
    EXPECT_EQ(r.way, 0);
    EXPECT_EQ(r.probes, 2u);
}

TEST(PartialLookup, MissProbesAllSubsets)
{
    PartialLookup pl(config(4, 2));
    SetFixture s({0, 0, 0, 0, 0, 0, 0, 0});
    LookupResult r = pl.lookup(s.input(0x1234));
    EXPECT_FALSE(r.hit);
    EXPECT_EQ(r.probes, 2u); // one step-1 probe per subset
}

TEST(PartialLookup, InvalidWaysAreFiltered)
{
    PartialLookup pl(config());
    SetFixture s({0x1234, 0, 0, 0});
    s.valid[0] = 0;
    LookupResult r = pl.lookup(s.input(0x1234));
    EXPECT_FALSE(r.hit);
    EXPECT_EQ(r.probes, 1u);
}

TEST(PartialLookup, TransformedLookupStillFindsTheBlock)
{
    for (TransformKind tr :
         {TransformKind::None, TransformKind::XorLow,
          TransformKind::Improved, TransformKind::Swap}) {
        PartialLookup pl(config(4, 1, tr));
        Pcg32 rng(42);
        for (int i = 0; i < 500; ++i) {
            std::uint32_t target = rng.next() & 0xffff;
            SetFixture s({rng.next() & 0xffff, target,
                          rng.next() & 0xffff, rng.next() & 0xffff});
            LookupResult r = pl.lookup(s.input(target));
            ASSERT_TRUE(r.hit) << transformKindName(tr);
            // An earlier way could alias the full 16-bit tag only if
            // it equals the target; allow that rare case.
            if (s.tags[0] != target) {
                ASSERT_EQ(r.way, 1) << transformKindName(tr);
            }
        }
    }
}

TEST(PartialLookup, RejectsInfeasibleGeometry)
{
    // 8-way with k=4 and one subset needs 32 bits of 16-bit tags.
    PartialLookup pl(config(4, 1));
    SetFixture s({0, 0, 0, 0, 0, 0, 0, 0});
    EXPECT_THROW(pl.lookup(s.input(1)), FatalError);
}

TEST(PartialLookup, RejectsSubsetsNotDividingAssoc)
{
    PartialLookup pl(config(4, 3));
    SetFixture s({0, 0, 0, 0});
    EXPECT_THROW(pl.lookup(s.input(1)), FatalError);
}

TEST(PartialLookup, ZeroSubsetsIsFatalAtConstruction)
{
    EXPECT_THROW(PartialLookup(config(4, 0)), FatalError);
}

TEST(PartialLookup, NameDescribesConfiguration)
{
    EXPECT_EQ(PartialLookup(config(4, 2, TransformKind::XorLow)).name(),
              "Partial(k=4,s=2,xor)");
}

/**
 * Statistical property: with random uniform tags, measured probe
 * counts approach the Section 2 formulas.
 */
class PartialStatistics
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned>>
{
};

TEST_P(PartialStatistics, MissProbesMatchTheory)
{
    auto [a, s] = GetParam();
    unsigned k = analytic::partialWidth(a, 16, s);
    PartialConfig cfg = config(k, s);
    PartialLookup pl(cfg);

    Pcg32 rng(7);
    double total = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        std::vector<std::uint32_t> tags(a);
        for (auto &t : tags)
            t = rng.next() & 0xffff;
        SetFixture set(tags);
        // Incoming tag differs from all stored tags: a miss.
        std::uint32_t incoming;
        bool dup;
        do {
            incoming = rng.next() & 0xffff;
            dup = false;
            for (auto t : tags)
                dup |= t == incoming;
        } while (dup);
        LookupResult r = pl.lookup(set.input(incoming));
        ASSERT_FALSE(r.hit);
        total += r.probes;
    }
    double expect = analytic::partialMiss(a, k, s);
    EXPECT_NEAR(total / n, expect, 0.05 * expect + 0.02);
}

TEST_P(PartialStatistics, HitProbesMatchTheory)
{
    auto [a, s] = GetParam();
    unsigned k = analytic::partialWidth(a, 16, s);
    PartialConfig cfg = config(k, s);
    PartialLookup pl(cfg);

    Pcg32 rng(8);
    double total = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        std::vector<std::uint32_t> tags(a);
        for (auto &t : tags)
            t = rng.next() & 0xffff;
        SetFixture set(tags);
        // Hit a uniformly random way.
        std::uint32_t incoming = tags[rng.below(a)];
        LookupResult r = pl.lookup(set.input(incoming));
        ASSERT_TRUE(r.hit);
        total += r.probes;
    }
    double expect = analytic::partialHit(a, k, s);
    EXPECT_NEAR(total / n, expect, 0.05 * expect + 0.02);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, PartialStatistics,
    ::testing::Values(std::make_tuple(4u, 1u), std::make_tuple(8u, 2u),
                      std::make_tuple(16u, 4u),
                      std::make_tuple(8u, 1u),
                      std::make_tuple(16u, 2u)),
    [](const ::testing::TestParamInfo<std::tuple<unsigned, unsigned>>
           &info) {
        return "a" + std::to_string(std::get<0>(info.param)) + "_s" +
               std::to_string(std::get<1>(info.param));
    });

} // namespace
} // namespace core
} // namespace assoc
