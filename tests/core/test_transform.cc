#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "core/transform.h"
#include "util/bitops.h"
#include "util/logging.h"
#include "util/rng.h"

namespace assoc {
namespace core {
namespace {

TEST(TransformKindParsing, AcceptsKnownNames)
{
    EXPECT_EQ(transformKindFromString("none"), TransformKind::None);
    EXPECT_EQ(transformKindFromString("xor"), TransformKind::XorLow);
    EXPECT_EQ(transformKindFromString("improved"),
              TransformKind::Improved);
    EXPECT_EQ(transformKindFromString("new"), TransformKind::Improved);
    EXPECT_EQ(transformKindFromString("swap"), TransformKind::Swap);
    EXPECT_THROW(transformKindFromString("bogus"), FatalError);
}

TEST(TransformKindParsing, NamesRoundTrip)
{
    for (TransformKind k :
         {TransformKind::None, TransformKind::XorLow,
          TransformKind::Improved, TransformKind::Swap}) {
        EXPECT_EQ(transformKindFromString(transformKindName(k)), k);
    }
}

TEST(TagTransform, FieldExtraction)
{
    NoTransform t(16, 4);
    EXPECT_EQ(t.fields(), 4u);
    EXPECT_EQ(t.field(0x1234, 0), 0x4u);
    EXPECT_EQ(t.field(0x1234, 1), 0x3u);
    EXPECT_EQ(t.field(0x1234, 2), 0x2u);
    EXPECT_EQ(t.field(0x1234, 3), 0x1u);
    EXPECT_THROW(t.field(0x1234, 4), PanicError);
}

TEST(TagTransform, RejectsBadWidths)
{
    EXPECT_THROW(NoTransform(0, 1), FatalError);
    EXPECT_THROW(NoTransform(33, 4), FatalError);
    EXPECT_THROW(NoTransform(16, 0), FatalError);
    EXPECT_THROW(NoTransform(16, 17), FatalError);
}

TEST(XorLowTransform, MatchesHandComputation)
{
    XorLowTransform t(16, 4);
    // tag = 0xABCD: f0=D. Transformed: f1^=D, f2^=D, f3^=D.
    // 0xA^0xD=7, 0xB^0xD=6, 0xC^0xD=1 -> 0x761D.
    EXPECT_EQ(t.apply(0xABCD), 0x761Du);
}

TEST(ImprovedTransform, MatchesHandComputation)
{
    ImprovedTransform t(16, 4);
    // tag = 0xABCD: f0=D, f1=C. out1 = C^D = 1.
    // mix = f0^f1 = 1. out2 = B^1 = A, out3 = A^1 = B.
    EXPECT_EQ(t.apply(0xABCD), 0xBA1Du);
}

TEST(SwapTransform, SlotZeroIsIdentity)
{
    SwapTransform t(16, 4);
    EXPECT_EQ(t.apply(0x1234, 0), 0x1234u);
}

TEST(SwapTransform, RotatesFieldsIntoSlot)
{
    SwapTransform t(16, 4);
    // The slot's field must receive the original low-order field.
    for (unsigned slot = 0; slot < 4; ++slot) {
        std::uint32_t out = t.apply(0x1234, slot);
        EXPECT_EQ((out >> (slot * 4)) & 0xF, 0x4u)
            << "slot " << slot;
    }
}

struct TransformCase
{
    TransformKind kind;
    unsigned t;
    unsigned k;
};

class TransformProperty
    : public ::testing::TestWithParam<TransformCase>
{
};

TEST_P(TransformProperty, InvertRecoversOriginal)
{
    const TransformCase &c = GetParam();
    auto xf = TagTransform::make(c.kind, c.t, c.k);
    Pcg32 rng(0xfeed);
    for (int i = 0; i < 2000; ++i) {
        std::uint32_t tag = rng.next() & static_cast<std::uint32_t>(
            maskBits(c.t));
        for (unsigned slot = 0; slot < xf->fields(); ++slot) {
            std::uint32_t stored = xf->apply(tag, slot);
            ASSERT_EQ(xf->invert(stored, slot), tag)
                << xf->name() << " t=" << c.t << " k=" << c.k
                << " slot=" << slot;
        }
    }
}

TEST_P(TransformProperty, IsInjective)
{
    // Distinct tags must transform to distinct stored tags (per
    // slot), otherwise full compares in step 2 would be wrong.
    const TransformCase &c = GetParam();
    auto xf = TagTransform::make(c.kind, c.t, c.k);
    Pcg32 rng(0xbeef);
    for (int i = 0; i < 2000; ++i) {
        std::uint32_t a = rng.next() & static_cast<std::uint32_t>(
            maskBits(c.t));
        std::uint32_t b = rng.next() & static_cast<std::uint32_t>(
            maskBits(c.t));
        if (a == b)
            continue;
        for (unsigned slot = 0; slot < xf->fields(); ++slot)
            ASSERT_NE(xf->apply(a, slot), xf->apply(b, slot));
    }
}

TEST_P(TransformProperty, StaysWithinTagWidth)
{
    const TransformCase &c = GetParam();
    auto xf = TagTransform::make(c.kind, c.t, c.k);
    Pcg32 rng(0xcafe);
    std::uint32_t mask =
        static_cast<std::uint32_t>(maskBits(c.t));
    for (int i = 0; i < 2000; ++i) {
        std::uint32_t tag = rng.next() & mask;
        for (unsigned slot = 0; slot < xf->fields(); ++slot)
            ASSERT_EQ(xf->apply(tag, slot) & ~mask, 0u);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllKindsAndWidths, TransformProperty,
    ::testing::Values(
        TransformCase{TransformKind::None, 16, 4},
        TransformCase{TransformKind::XorLow, 16, 4},
        TransformCase{TransformKind::XorLow, 16, 2},
        TransformCase{TransformKind::XorLow, 32, 8},
        TransformCase{TransformKind::XorLow, 17, 4},
        TransformCase{TransformKind::Improved, 16, 4},
        TransformCase{TransformKind::Improved, 16, 2},
        TransformCase{TransformKind::Improved, 32, 8},
        TransformCase{TransformKind::Improved, 32, 4},
        TransformCase{TransformKind::Improved, 17, 4},
        TransformCase{TransformKind::Swap, 16, 4},
        TransformCase{TransformKind::Swap, 16, 2},
        TransformCase{TransformKind::Swap, 32, 8},
        TransformCase{TransformKind::Swap, 17, 4},
        TransformCase{TransformKind::None, 12, 3}),
    [](const ::testing::TestParamInfo<TransformCase> &info) {
        return std::string(transformKindName(info.param.kind)) +
               "_t" + std::to_string(info.param.t) + "_k" +
               std::to_string(info.param.k);
    });

TEST(XorLowTransform, IsItsOwnInverse)
{
    XorLowTransform t(16, 4);
    Pcg32 rng(2);
    for (int i = 0; i < 1000; ++i) {
        std::uint32_t tag = rng.next() & 0xffff;
        EXPECT_EQ(t.apply(t.apply(tag)), tag);
    }
}

TEST(XorLowTransform, SelfInverseAtEveryWidth)
{
    // The paper's "XOR" transform must stay an involution for any
    // tag width t and field width k, not just the studied 16/4.
    Pcg32 rng(0x515f);
    for (unsigned t = 4; t <= 32; ++t) {
        const unsigned k = 1 + rng.below(std::min(t, 8u));
        XorLowTransform xf(t, k);
        const std::uint32_t mask =
            static_cast<std::uint32_t>(maskBits(t));
        for (int i = 0; i < 200; ++i) {
            std::uint32_t tag = rng.next() & mask;
            ASSERT_EQ(xf.apply(xf.apply(tag)), tag)
                << "t=" << t << " k=" << k;
        }
    }
}

TEST(Transforms, InvertibleAndMaskedAtRandomWidths)
{
    // Invertibility over GF(2) and tag-width masking for every kind
    // at every t in [4, 32] with a random feasible k.
    Pcg32 rng(0x9d1e);
    for (TransformKind kind :
         {TransformKind::None, TransformKind::XorLow,
          TransformKind::Improved, TransformKind::Swap}) {
        for (unsigned t = 4; t <= 32; ++t) {
            const unsigned k = 1 + rng.below(std::min(t, 8u));
            auto xf = TagTransform::make(kind, t, k);
            const std::uint32_t mask =
                static_cast<std::uint32_t>(maskBits(t));
            for (int i = 0; i < 100; ++i) {
                std::uint32_t tag = rng.next() & mask;
                for (unsigned slot = 0; slot < xf->fields(); ++slot) {
                    std::uint32_t stored = xf->apply(tag, slot);
                    ASSERT_EQ(stored & ~mask, 0u)
                        << xf->name() << " t=" << t << " k=" << k;
                    ASSERT_EQ(xf->invert(stored, slot), tag)
                        << xf->name() << " t=" << t << " k=" << k
                        << " slot=" << slot;
                    ASSERT_EQ(xf->apply(xf->invert(tag, slot), slot),
                              tag)
                        << xf->name() << " t=" << t << " k=" << k;
                }
            }
        }
    }
}

TEST(Transforms, LinearOverGf2)
{
    // Every transform is a GF(2) matrix on the tag bits, which is
    // what makes invertibility a rank property (Section 2.2):
    // apply(x ^ y) == apply(x) ^ apply(y) and apply(0) == 0.
    Pcg32 rng(0x6f2b);
    for (TransformKind kind :
         {TransformKind::None, TransformKind::XorLow,
          TransformKind::Improved, TransformKind::Swap}) {
        for (unsigned t : {4u, 11u, 16u, 23u, 32u}) {
            const unsigned k = 1 + rng.below(std::min(t, 8u));
            auto xf = TagTransform::make(kind, t, k);
            const std::uint32_t mask =
                static_cast<std::uint32_t>(maskBits(t));
            for (unsigned slot = 0; slot < xf->fields(); ++slot) {
                ASSERT_EQ(xf->apply(0, slot), 0u) << xf->name();
                for (int i = 0; i < 200; ++i) {
                    std::uint32_t x = rng.next() & mask;
                    std::uint32_t y = rng.next() & mask;
                    ASSERT_EQ(xf->apply(x ^ y, slot),
                              xf->apply(x, slot) ^ xf->apply(y, slot))
                        << xf->name() << " t=" << t << " k=" << k;
                }
            }
        }
    }
}

TEST(ImprovedTransform, IsNotItsOwnInverseButInvertible)
{
    // The paper notes the improved transform is not self-inverse.
    ImprovedTransform t(16, 4);
    bool any_different = false;
    for (std::uint32_t tag = 0; tag < 4096; ++tag)
        any_different |= t.apply(t.apply(tag)) != tag;
    EXPECT_TRUE(any_different);
}

TEST(Transforms, UniformizeSkewedHighBits)
{
    // The whole point: tags whose high fields are constant (as with
    // per-process virtual address prefixes) must spread over many
    // values of the high fields after transformation.
    XorLowTransform xorlow(16, 4);
    ImprovedTransform improved(16, 4);
    Pcg32 rng(3);
    std::uint32_t seen_xor = 0, seen_imp = 0; // 16-value bitmaps
    for (int i = 0; i < 200; ++i) {
        // High 8 bits constant, low 8 bits random.
        std::uint32_t tag = 0xAB00 | (rng.next() & 0xff);
        seen_xor |= 1u << xorlow.field(xorlow.apply(tag), 3);
        seen_imp |= 1u << improved.field(improved.apply(tag), 3);
    }
    EXPECT_GT(popcount(seen_xor), 8u);
    EXPECT_GT(popcount(seen_imp), 8u);
    // Without a transform the high field never varies.
    NoTransform none(16, 4);
    std::uint32_t seen_none = 0;
    for (int i = 0; i < 200; ++i) {
        std::uint32_t tag = 0xAB00 | (rng.next() & 0xff);
        seen_none |= 1u << none.field(none.apply(tag), 3);
    }
    EXPECT_EQ(popcount(seen_none), 1u);
}

TEST(TagTransform, FactoryProducesRightKinds)
{
    EXPECT_EQ(TagTransform::make(TransformKind::None, 16, 4)->name(),
              "none");
    EXPECT_EQ(TagTransform::make(TransformKind::XorLow, 16, 4)->name(),
              "xor");
    EXPECT_EQ(
        TagTransform::make(TransformKind::Improved, 16, 4)->name(),
        "improved");
    EXPECT_EQ(TagTransform::make(TransformKind::Swap, 16, 4)->name(),
              "swap");
}

} // namespace
} // namespace core
} // namespace assoc
