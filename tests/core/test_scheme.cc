#include <gtest/gtest.h>

#include "core/mru_lookup.h"
#include "core/partial_lookup.h"
#include "core/scheme.h"
#include "util/logging.h"

namespace assoc {
namespace core {
namespace {

TEST(SchemeKindParsing, AcceptsKnownNames)
{
    EXPECT_EQ(schemeKindFromString("traditional"),
              SchemeKind::Traditional);
    EXPECT_EQ(schemeKindFromString("naive"), SchemeKind::Naive);
    EXPECT_EQ(schemeKindFromString("mru"), SchemeKind::Mru);
    EXPECT_EQ(schemeKindFromString("partial"), SchemeKind::Partial);
    EXPECT_THROW(schemeKindFromString("nope"), FatalError);
}

TEST(SchemeKindParsing, Names)
{
    EXPECT_STREQ(schemeKindName(SchemeKind::Traditional),
                 "Traditional");
    EXPECT_STREQ(schemeKindName(SchemeKind::Naive), "Naive");
    EXPECT_STREQ(schemeKindName(SchemeKind::Mru), "MRU");
    EXPECT_STREQ(schemeKindName(SchemeKind::Partial), "Partial");
}

TEST(SchemeSpec, MakesTheRightStrategyTypes)
{
    SchemeSpec spec;
    spec.kind = SchemeKind::Traditional;
    EXPECT_NE(dynamic_cast<TraditionalLookup *>(
                  spec.makeStrategy().get()),
              nullptr);
    spec.kind = SchemeKind::Naive;
    EXPECT_NE(dynamic_cast<NaiveLookup *>(spec.makeStrategy().get()),
              nullptr);
    spec.kind = SchemeKind::Mru;
    EXPECT_NE(dynamic_cast<MruLookup *>(spec.makeStrategy().get()),
              nullptr);
    spec.kind = SchemeKind::Partial;
    EXPECT_NE(dynamic_cast<PartialLookup *>(spec.makeStrategy().get()),
              nullptr);
}

TEST(SchemeSpec, MruListLengthPropagates)
{
    SchemeSpec spec;
    spec.kind = SchemeKind::Mru;
    spec.mru_list_len = 3;
    auto strat = spec.makeStrategy();
    auto *mru = dynamic_cast<MruLookup *>(strat.get());
    ASSERT_NE(mru, nullptr);
    EXPECT_EQ(mru->listLen(), 3u);
}

TEST(SchemeSpec, PartialParametersPropagate)
{
    SchemeSpec spec;
    spec.kind = SchemeKind::Partial;
    spec.partial_k = 2;
    spec.partial_subsets = 2;
    spec.transform = TransformKind::Improved;
    spec.tag_bits = 32;
    auto strat = spec.makeStrategy();
    auto *pl = dynamic_cast<PartialLookup *>(strat.get());
    ASSERT_NE(pl, nullptr);
    EXPECT_EQ(pl->config().field_bits, 2u);
    EXPECT_EQ(pl->config().subsets, 2u);
    EXPECT_EQ(pl->config().transform, TransformKind::Improved);
    EXPECT_EQ(pl->config().tag_bits, 32u);
}

TEST(SchemeSpec, PaperPartialChoosesPaperSubsetCounts)
{
    // Figure 3's configuration: k = 4, 16-bit tags; 1, 2, 4 subsets
    // for 4, 8, 16-way caches.
    EXPECT_EQ(SchemeSpec::paperPartial(4).partial_subsets, 1u);
    EXPECT_EQ(SchemeSpec::paperPartial(8).partial_subsets, 2u);
    EXPECT_EQ(SchemeSpec::paperPartial(16).partial_subsets, 4u);
    // 2-way: k = 4 fits in one subset.
    EXPECT_EQ(SchemeSpec::paperPartial(2).partial_subsets, 1u);
    // 32-bit tags halve the subset counts.
    EXPECT_EQ(SchemeSpec::paperPartial(8, 32).partial_subsets, 1u);
    EXPECT_EQ(SchemeSpec::paperPartial(16, 32).partial_subsets, 2u);
}

TEST(SchemeSpec, PaperPartialSpendsTheWholeTagWidth)
{
    // 16-bit tags: k = 4 everywhere (Figure 3's configuration).
    EXPECT_EQ(SchemeSpec::paperPartial(4).partial_k, 4u);
    EXPECT_EQ(SchemeSpec::paperPartial(8).partial_k, 4u);
    EXPECT_EQ(SchemeSpec::paperPartial(16).partial_k, 4u);
    // 32-bit tags widen the 4-way compare to 8 bits (Figure 6)
    // and keep k = 4 with fewer subsets at 8/16-way.
    EXPECT_EQ(SchemeSpec::paperPartial(4, 32).partial_k, 8u);
    EXPECT_EQ(SchemeSpec::paperPartial(8, 32).partial_k, 4u);
    EXPECT_EQ(SchemeSpec::paperPartial(16, 32).partial_k, 4u);
    // 2-way with 16-bit tags gets one 8-bit compare per way.
    EXPECT_EQ(SchemeSpec::paperPartial(2).partial_k, 8u);
}

TEST(SchemeSpec, PaperPartialInfeasibleIsFatal)
{
    // k wider than the whole tag can never fit.
    EXPECT_THROW(SchemeSpec::paperPartial(4, 2, 4), FatalError);
}

TEST(SchemeSpec, MeterConfigPropagates)
{
    SchemeSpec spec;
    spec.kind = SchemeKind::Naive;
    spec.tag_bits = 32;
    auto with_opt = spec.makeMeter(true);
    auto without = spec.makeMeter(false);
    EXPECT_TRUE(with_opt->config().wb_optimization);
    EXPECT_FALSE(without->config().wb_optimization);
    EXPECT_EQ(with_opt->config().tag_bits, 32u);
}

} // namespace
} // namespace core
} // namespace assoc
