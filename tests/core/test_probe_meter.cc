#include <gtest/gtest.h>

#include <memory>

#include "core/mru_lookup.h"
#include "core/probe_meter.h"
#include "core/scheme.h"
#include "mem/hierarchy.h"
#include "trace/atum_like.h"

namespace assoc {
namespace core {
namespace {

using mem::CacheGeometry;
using mem::HierarchyConfig;
using mem::TwoLevelHierarchy;
using trace::MemRef;
using trace::RefType;

HierarchyConfig
smallConfig()
{
    return HierarchyConfig{CacheGeometry(256, 16, 1),
                           CacheGeometry(1024, 32, 4), true};
}

TEST(ProbeStats, AggregatesFollowTable4Definitions)
{
    ProbeStats s;
    s.read_in_hits.record(2.0);
    s.read_in_hits.record(4.0);
    s.read_in_misses.record(5.0);
    s.write_backs.record(0.0);
    // Hits column: read-in hits + write-backs = (2+4+0)/3.
    EXPECT_DOUBLE_EQ(s.hitsMean(), 2.0);
    // Read-ins only: (2+4+5)/3.
    EXPECT_DOUBLE_EQ(s.readInMean(), 11.0 / 3.0);
    // Total: (2+4+5+0)/4.
    EXPECT_DOUBLE_EQ(s.totalMean(), 11.0 / 4.0);
}

TEST(ProbeStats, ResetClearsEverything)
{
    ProbeStats s;
    s.read_in_hits.record(2.0);
    s.alias_hits = 3;
    s.reset();
    EXPECT_EQ(s.read_in_hits.count(), 0u);
    EXPECT_EQ(s.alias_hits, 0u);
}

TEST(ProbeMeter, TraditionalAlwaysOneProbe)
{
    TwoLevelHierarchy h(smallConfig());
    SchemeSpec spec;
    spec.kind = SchemeKind::Traditional;
    auto meter = spec.makeMeter();
    h.addObserver(meter.get());

    h.access({0x0000, RefType::Read, 0});
    h.access({0x4000, RefType::Read, 0});
    h.access({0x0000, RefType::Read, 0}); // L2 hit

    const ProbeStats &s = meter->stats();
    EXPECT_EQ(s.read_in_misses.count(), 2u);
    EXPECT_DOUBLE_EQ(s.read_in_misses.mean(), 1.0);
    EXPECT_EQ(s.read_in_hits.count(), 1u);
    EXPECT_DOUBLE_EQ(s.read_in_hits.mean(), 1.0);
}

TEST(ProbeMeter, WriteBackOptimizationZeroProbes)
{
    TwoLevelHierarchy h(smallConfig());
    SchemeSpec naive;
    naive.kind = SchemeKind::Naive;
    auto with_opt = naive.makeMeter(true);
    auto without_opt = naive.makeMeter(false);
    h.addObserver(with_opt.get());
    h.addObserver(without_opt.get());

    h.access({0x0000, RefType::Write, 0});
    h.access({0x4000, RefType::Read, 0}); // write-back of 0x0000

    EXPECT_EQ(with_opt->stats().write_backs.count(), 1u);
    EXPECT_DOUBLE_EQ(with_opt->stats().write_backs.mean(), 0.0);
    EXPECT_EQ(without_opt->stats().write_backs.count(), 1u);
    EXPECT_GT(without_opt->stats().write_backs.mean(), 0.0);
}

TEST(ProbeMeter, MruHitAtDistanceOneIsTwoProbes)
{
    TwoLevelHierarchy h(smallConfig());
    SchemeSpec mru;
    mru.kind = SchemeKind::Mru;
    auto meter = mru.makeMeter();
    h.addObserver(meter.get());

    h.access({0x0000, RefType::Read, 0}); // miss, fills L2
    h.access({0x4000, RefType::Read, 0}); // conflicts in L1 only
    h.access({0x0000, RefType::Read, 0}); // L2 hit, but is it MRU?
    // After the second access, block 0x4000>>5 is MRU in its set
    // (different L2 block, maybe same set). Keep it simple: the L2
    // hit to 0x0000 happened with some distance; the meter must
    // have recorded exactly one read-in hit.
    EXPECT_EQ(meter->stats().read_in_hits.count(), 1u);
    // MRU costs at least 2 probes on any hit (list + tag).
    EXPECT_GE(meter->stats().read_in_hits.mean(), 2.0);
    // Misses cost exactly 1 + a probes.
    EXPECT_DOUBLE_EQ(meter->stats().read_in_misses.mean(), 5.0);
}

TEST(ProbeMeter, NaiveMissCostsAssocProbes)
{
    TwoLevelHierarchy h(smallConfig());
    SchemeSpec naive;
    naive.kind = SchemeKind::Naive;
    auto meter = naive.makeMeter();
    h.addObserver(meter.get());
    h.access({0x0000, RefType::Read, 0});
    EXPECT_DOUBLE_EQ(meter->stats().read_in_misses.mean(), 4.0);
}

TEST(ProbeMeter, SchemesAgreeWithSimulatorOnLongRun)
{
    // Over a realistic stream, no scheme may ever miss a block the
    // simulator holds (the meter panics), and alias events should
    // not occur with full-width (16-bit-sufficient) tags.
    trace::AtumLikeConfig tcfg;
    tcfg.segments = 2;
    tcfg.refs_per_segment = 30000;
    tcfg.processes = 2;
    trace::AtumLikeGenerator gen(tcfg);

    TwoLevelHierarchy h(smallConfig());
    std::vector<std::unique_ptr<ProbeMeter>> meters;
    for (SchemeKind kind :
         {SchemeKind::Traditional, SchemeKind::Naive, SchemeKind::Mru,
          SchemeKind::Partial}) {
        SchemeSpec spec;
        spec.kind = kind;
        spec.tag_bits = 32; // full tags: alias-free
        if (kind == SchemeKind::Partial)
            spec = SchemeSpec::paperPartial(4, 32, 4);
        meters.push_back(spec.makeMeter());
        h.addObserver(meters.back().get());
    }
    h.run(gen);

    const auto &hs = h.stats();
    for (const auto &m : meters) {
        const ProbeStats &s = m->stats();
        EXPECT_EQ(s.read_in_hits.count(), hs.read_in_hits);
        EXPECT_EQ(s.read_in_misses.count(), hs.read_in_misses);
        EXPECT_EQ(s.write_backs.count(), hs.write_backs);
        EXPECT_EQ(s.alias_hits, 0u) << m->name();
        EXPECT_EQ(s.alias_wrong_way, 0u) << m->name();
    }
}

TEST(ProbeMeter, ProbeOrderingInvariants)
{
    // Traditional <= Partial(total) and Traditional <= MRU <= Naive
    // need not hold per access, but clear orderings hold on misses:
    // Traditional(1) < Partial(s + fm) <= Naive(a) < MRU(a+1).
    trace::AtumLikeConfig tcfg;
    tcfg.segments = 1;
    tcfg.refs_per_segment = 40000;
    tcfg.processes = 2;
    trace::AtumLikeGenerator gen(tcfg);

    TwoLevelHierarchy h(smallConfig());
    SchemeSpec trad, naive, mru;
    trad.kind = SchemeKind::Traditional;
    naive.kind = SchemeKind::Naive;
    mru.kind = SchemeKind::Mru;
    // The tiny test cache has 24 full-tag bits; use 32-bit tags so
    // no aliasing clouds the exact miss costs below.
    trad.tag_bits = naive.tag_bits = mru.tag_bits = 32;
    SchemeSpec partial = SchemeSpec::paperPartial(4, 32, 4);
    auto m_trad = trad.makeMeter();
    auto m_naive = naive.makeMeter();
    auto m_mru = mru.makeMeter();
    auto m_part = partial.makeMeter();
    for (auto *m : {m_trad.get(), m_naive.get(), m_mru.get(),
                    m_part.get()})
        h.addObserver(m);
    h.run(gen);

    double t = m_trad->stats().read_in_misses.mean();
    double p = m_part->stats().read_in_misses.mean();
    double n = m_naive->stats().read_in_misses.mean();
    double u = m_mru->stats().read_in_misses.mean();
    EXPECT_LT(t, p);
    EXPECT_LT(p, n);
    EXPECT_LT(n, u);
    EXPECT_DOUBLE_EQ(n, 4.0);
    EXPECT_DOUBLE_EQ(u, 5.0);
}

TEST(MruDistanceMeter, RecordsOnlyReadInHits)
{
    TwoLevelHierarchy h(smallConfig());
    MruDistanceMeter meter(4);
    h.addObserver(&meter);

    h.access({0x0000, RefType::Read, 0}); // read-in miss
    EXPECT_EQ(meter.distances().total(), 0u);
    h.access({0x4000, RefType::Read, 0});
    h.access({0x0000, RefType::Read, 0}); // read-in hit
    EXPECT_EQ(meter.distances().total(), 1u);
}

TEST(MruDistanceMeter, DistanceOneForImmediateReuse)
{
    // L1 of one set so every other reference misses L1; L2 keeps
    // both blocks in the same set.
    HierarchyConfig cfg{CacheGeometry(16, 16, 1),
                        CacheGeometry(1024, 32, 4), true};
    TwoLevelHierarchy h(cfg);
    MruDistanceMeter meter(4);
    h.addObserver(&meter);

    h.access({0x0000, RefType::Read, 0});
    h.access({0x0000 + 1024 * 16, RefType::Read, 0}); // same L2 set
    h.access({0x0000 + 1024 * 16, RefType::Read, 0}); // L1 hit: quiet
    h.access({0x0000, RefType::Read, 0}); // L2 hit at distance 2
    EXPECT_EQ(meter.distances().total(), 1u);
    EXPECT_EQ(meter.distances().count(2), 1u);
    EXPECT_DOUBLE_EQ(meter.f(2), 1.0);
}

TEST(ProbeMeter, TagAliasingIsDetectedAndCounted)
{
    // With a deliberately tiny stored-tag width, two different
    // blocks can carry identical t-bit tags: the scheme declares a
    // (false) hit where the simulator knows it is a miss. The meter
    // must count the alias, not crash or misclassify.
    TwoLevelHierarchy h(smallConfig());
    SchemeSpec naive;
    naive.kind = SchemeKind::Naive;
    naive.tag_bits = 4;
    auto meter = naive.makeMeter();
    h.addObserver(meter.get());

    // L2: 1024B/32B/4-way -> 8 sets, 3 index bits. Full tags 0x10
    // and 0x20 both slice to 0 at t = 4.
    h.access({0x1000, RefType::Read, 0}); // tag 0x10, set 0
    h.access({0x2000, RefType::Read, 0}); // tag 0x20, set 0: alias

    const ProbeStats &s = meter->stats();
    EXPECT_EQ(s.read_in_misses.count(), 2u);
    EXPECT_EQ(s.alias_hits, 1u);
    // The aliased "miss" terminates at the matching frame, never
    // beyond the full scan.
    EXPECT_LE(s.read_in_misses.mean(), 4.0);
}

TEST(ProbeMeter, NoAliasingWithFullWidthTags)
{
    TwoLevelHierarchy h(smallConfig());
    SchemeSpec naive;
    naive.kind = SchemeKind::Naive;
    naive.tag_bits = 32;
    auto meter = naive.makeMeter();
    h.addObserver(meter.get());
    h.access({0x1000, RefType::Read, 0});
    h.access({0x2000, RefType::Read, 0});
    EXPECT_EQ(meter->stats().alias_hits, 0u);
    EXPECT_DOUBLE_EQ(meter->stats().read_in_misses.mean(), 4.0);
}

TEST(ProbeMeter, MeterNameFollowsStrategy)
{
    SchemeSpec spec;
    spec.kind = SchemeKind::Mru;
    spec.mru_list_len = 2;
    EXPECT_EQ(spec.makeMeter()->name(), "MRU-2");
}

TEST(ProbeMeter, EventTotalsMirrorPerAccessEvents)
{
    // Traditional reads and compares all a tags on every metered
    // access: the 64-bit totals must track exactly, and free
    // (optimized) write-backs must contribute nothing.
    TwoLevelHierarchy h(smallConfig());
    SchemeSpec spec;
    spec.kind = SchemeKind::Traditional;
    auto meter = spec.makeMeter();
    h.addObserver(meter.get());

    h.access({0x0000, RefType::Write, 0});
    h.access({0x4000, RefType::Read, 0}); // write-back of 0x0000
    h.access({0x0000, RefType::Read, 0});

    const ProbeStats &s = meter->stats();
    // The zero-probe write-back is recorded but not metered.
    EXPECT_EQ(s.write_backs.count(), 1u);
    EXPECT_EQ(s.metered, 3u);
    EXPECT_EQ(s.events.tag_reads, 3u * 4u);
    EXPECT_EQ(s.events.tag_compares, 3u * 4u);
    EXPECT_EQ(s.events.field_reads, 0u);
    EXPECT_EQ(s.events.list_reads, 0u);
    EXPECT_EQ(s.events.memo_reads, 0u);
    EXPECT_EQ(s.memo_hits, 0u);
}

TEST(ProbeMeter, BlockAddrAndSetReachTheStrategy)
{
    // Address-indexed strategies key their state on the block
    // address and set index the meter passes through from the
    // hierarchy's access view.
    struct Capture : TraditionalLookup
    {
        mutable std::uint32_t last_block = ~0u;
        mutable std::uint32_t last_set = ~0u;
        LookupResult
        lookup(const LookupInput &in) const override
        {
            last_block = in.block_addr;
            last_set = in.set;
            return TraditionalLookup::lookup(in);
        }
    };
    TwoLevelHierarchy h(smallConfig());
    auto strat = std::make_unique<Capture>();
    const Capture *cap = strat.get();
    MeterConfig mcfg;
    ProbeMeter meter(std::move(strat), mcfg);
    h.addObserver(&meter);

    // L2: 1024B / 32B / 4-way = 8 sets. 0x1234 -> block 0x91, set 1.
    h.access({0x1234, RefType::Read, 0});
    EXPECT_EQ(cap->last_block, 0x1234u >> 5);
    EXPECT_EQ(cap->last_set, (0x1234u >> 5) & 7u);
}

TEST(ProbeMeter, WayMemoMetersMemoHitsAndForwardsFlush)
{
    // Single-set L1 so alternating blocks always reach L2. The
    // blocks (0x0000, 0x0040) land in distinct memo entries (0, 2)
    // — colliding entries would evict each other and never memo-hit.
    // Each block's lifecycle under the memo: L2 miss (nothing to
    // memoize), first L2 hit (memo miss, repairs the table), every
    // later L2 hit a memo hit — until a flush clears the table.
    HierarchyConfig cfg{CacheGeometry(16, 16, 1),
                        CacheGeometry(1024, 32, 4), true};
    TwoLevelHierarchy h(cfg);
    SchemeSpec spec;
    spec.kind = SchemeKind::WayMemo;
    auto meter = spec.makeMeter();
    h.addObserver(meter.get());

    for (int i = 0; i < 3; ++i) {
        h.access({0x0000, RefType::Read, 0});
        h.access({0x0040, RefType::Read, 0});
    }
    // Per block: miss, memo-missed hit, memo-hit.
    const ProbeStats &s = meter->stats();
    EXPECT_EQ(s.read_in_hits.count(), 4u);
    EXPECT_EQ(s.memo_hits, 2u);
    // Every metered access reads the memo table exactly once.
    EXPECT_EQ(s.events.memo_reads, s.metered);

    // A flush must reach the strategy's memo table: the first
    // post-flush hit may not be a memo hit.
    h.access(trace::MemRef::flush());
    h.access({0x0000, RefType::Read, 0}); // L2 miss, refill
    h.access({0x0040, RefType::Read, 0});
    h.access({0x0000, RefType::Read, 0}); // first hit: memo miss
    EXPECT_EQ(meter->stats().memo_hits, 2u);
    h.access({0x0040, RefType::Read, 0});
    h.access({0x0000, RefType::Read, 0}); // second hit: memo hit
    EXPECT_EQ(meter->stats().memo_hits, 3u);
}

} // namespace
} // namespace core
} // namespace assoc
