/**
 * @file
 * Randomized kernel property fuzz (the differential half of
 * tests/kernels; the exhaustive grid lives in
 * test_kernel_equivalence.cc).
 *
 * Each case is a pure function of (seed, index), exactly like
 * check::sampleCase: a random set geometry, tag planes drawn from a
 * small pool (collisions everywhere), a validity pattern, and an MRU
 * permutation. For each case we require
 *
 *  - every registered kernel table to produce the scalar table's
 *    candidate masks (eq and partial, every transform), and
 *  - the MRU and partial-compare strategies, run under every table,
 *    to produce the (hit, way, probes) triple of an independent
 *    straight-line reimplementation of the paper's serial scans
 *    kept in this file — so a bug shared by all kernel tables (or
 *    by the strategy rewrite itself) is still caught.
 *
 * A failure prints a one-line repro in the fuzz_diff convention:
 *   ASSOC_KERNEL_FUZZ_SEED=S ASSOC_KERNEL_FUZZ_INDEX=I <test>
 * Environment knobs: ASSOC_KERNEL_FUZZ_CASES (default 1000000),
 * ASSOC_KERNEL_FUZZ_SEED, ASSOC_KERNEL_FUZZ_INDEX (run one case).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/kernels.h"
#include "core/mru_lookup.h"
#include "core/partial_lookup.h"
#include "core/transform.h"
#include "util/bitops.h"
#include "util/rng.h"

namespace assoc {
namespace core {
namespace {

std::uint64_t
envU64(const char *name, std::uint64_t fallback)
{
    const char *v = std::getenv(name);
    return v != nullptr && *v != '\0' ? std::strtoull(v, nullptr, 0)
                                      : fallback;
}

/** One generated case; a pure function of (seed, index). */
struct FuzzSet
{
    unsigned assoc;
    unsigned tag_bits;
    std::uint32_t incoming;
    std::vector<std::uint32_t> tags;
    std::vector<std::uint8_t> valid;
    std::vector<std::uint8_t> order; // a permutation of way indices
};

FuzzSet
sampleSet(std::uint64_t seed, std::uint64_t index)
{
    // Distinct streams per index: cases are independent draws and
    // any single index can be replayed in isolation.
    Pcg32 rng(seed, 0x6b65726e ^ index);
    static const unsigned assocs[] = {1, 2, 4, 5, 8, 13, 16};
    static const unsigned tbits[] = {8, 12, 16, 20, 32};
    FuzzSet s;
    s.assoc = assocs[rng.below(7)];
    s.tag_bits = tbits[rng.below(5)];
    std::uint32_t mask =
        static_cast<std::uint32_t>(maskBits(s.tag_bits));
    std::uint32_t pool[4];
    for (std::uint32_t &p : pool)
        p = rng.next() & mask;
    s.tags.resize(s.assoc);
    s.valid.resize(s.assoc);
    s.order.resize(s.assoc);
    for (unsigned w = 0; w < s.assoc; ++w) {
        s.tags[w] = pool[rng.below(4)];
        s.valid[w] = static_cast<std::uint8_t>(rng.below(4) != 0);
        s.order[w] = static_cast<std::uint8_t>(w);
    }
    for (unsigned w = s.assoc; w > 1; --w)
        std::swap(s.order[w - 1], s.order[rng.below(w)]);
    s.incoming = rng.below(2) ? s.tags[rng.below(s.assoc)]
                              : (rng.next() & mask);
    return s;
}

// ---------------------------------------------------------------
// Independent references: the paper's serial scans, written as the
// original strategy code wrote them (branching loops, transform
// virtuals), with no kernel or mask in sight.
// ---------------------------------------------------------------

LookupResult
refMru(const FuzzSet &s, unsigned list_len)
{
    unsigned len = list_len == 0 ? s.assoc : list_len;
    if (len > s.assoc)
        len = s.assoc;
    LookupResult r;
    r.probes = 1; // reading the list
    std::uint64_t searched = 0;
    for (unsigned i = 0; i < len; ++i) {
        unsigned w = s.order[i];
        searched |= std::uint64_t{1} << w;
        ++r.probes;
        if (s.valid[w] && s.tags[w] == s.incoming) {
            r.hit = true;
            r.way = static_cast<int>(w);
            return r;
        }
    }
    for (unsigned w = 0; w < s.assoc; ++w) {
        if ((searched >> w) & 1)
            continue;
        ++r.probes;
        if (s.valid[w] && s.tags[w] == s.incoming) {
            r.hit = true;
            r.way = static_cast<int>(w);
            return r;
        }
    }
    return r;
}

LookupResult
refPartial(const FuzzSet &s, const TagTransform &xf, unsigned subsets)
{
    unsigned g = s.assoc / subsets;
    LookupResult r;
    for (unsigned si = 0; si < subsets; ++si) {
        unsigned base = si * g;
        ++r.probes; // step 1: one parallel field read
        for (unsigned l = 0; l < g; ++l) {
            unsigned w = base + l;
            if (!s.valid[w])
                continue;
            std::uint32_t stored_f =
                xf.field(xf.apply(s.tags[w], l), l);
            std::uint32_t inc_f =
                xf.field(xf.apply(s.incoming, l), l);
            if (stored_f != inc_f)
                continue;
            ++r.probes; // step 2: one full compare
            if (xf.apply(s.tags[w], l) == xf.apply(s.incoming, l)) {
                r.hit = true;
                r.way = static_cast<int>(w);
                return r;
            }
        }
    }
    return r;
}

/** Partial configs exercised per case (s must divide the assoc). */
struct PartialGeom
{
    unsigned k;
    TransformKind kind;
};
const PartialGeom kGeoms[] = {
    {1, TransformKind::None},     {4, TransformKind::XorLow},
    {4, TransformKind::Improved}, {2, TransformKind::Swap},
};
const unsigned kTagBits[] = {8, 12, 16, 20, 32};
const unsigned kSubsets[] = {1, 2, 4};

unsigned
tagBitsIndex(unsigned t)
{
    for (unsigned i = 0; i < 5; ++i)
        if (kTagBits[i] == t)
            return i;
    ADD_FAILURE() << "unknown tag width " << t;
    return 0;
}

/** Transforms and strategies are cached across the million cases —
 *  constructing them per case would dominate the fuzz loop. */
const TagTransform &
cachedTransform(unsigned geo, unsigned t_idx)
{
    static std::unique_ptr<TagTransform> grid[4][5];
    auto &slot = grid[geo][t_idx];
    if (!slot)
        slot = TagTransform::make(kGeoms[geo].kind, kTagBits[t_idx],
                                  kGeoms[geo].k);
    return *slot;
}

PartialLookup &
cachedPartial(unsigned geo, unsigned s_idx, unsigned t_idx)
{
    static std::unique_ptr<PartialLookup> grid[4][3][5];
    auto &slot = grid[geo][s_idx][t_idx];
    if (!slot) {
        PartialConfig pc;
        pc.tag_bits = kTagBits[t_idx];
        pc.field_bits = kGeoms[geo].k;
        pc.subsets = kSubsets[s_idx];
        pc.transform = kGeoms[geo].kind;
        slot = std::make_unique<PartialLookup>(pc);
    }
    return *slot;
}

std::string
reproLine(std::uint64_t seed, std::uint64_t index)
{
    return "repro: ASSOC_KERNEL_FUZZ_SEED=" + std::to_string(seed) +
           " ASSOC_KERNEL_FUZZ_INDEX=" + std::to_string(index) +
           " test_kernels --gtest_filter=KernelFuzz.*";
}

void
runCase(std::uint64_t seed, std::uint64_t index,
        const std::vector<const LookupKernels *> &tables)
{
    FuzzSet s = sampleSet(seed, index);
    const LookupKernels &ref = scalarKernels();

    // Candidate masks: eq and (for every divisor subset count that
    // fits the tag width) partial, every table against scalar.
    std::uint64_t vbits = 0;
    for (unsigned w = 0; w < s.assoc; ++w)
        vbits |= static_cast<std::uint64_t>(s.valid[w] != 0) << w;
    std::uint64_t want_eq =
        ref.eq_mask(s.tags.data(), s.valid.data(), s.assoc,
                    s.incoming);
    for (const LookupKernels *k : tables) {
        ASSERT_EQ(want_eq, k->eq_mask(s.tags.data(), s.valid.data(),
                                      s.assoc, s.incoming))
            << k->name << "\n  " << reproLine(seed, index);
        ASSERT_EQ(want_eq,
                  k->eq_mask_bits(s.tags.data(), vbits, s.assoc,
                                  s.incoming))
            << k->name << "\n  " << reproLine(seed, index);
        ASSERT_EQ(want_eq,
                  k->eq_mask_bits_relaxed(s.tags.data(), vbits,
                                          s.assoc, s.incoming))
            << k->name << "\n  " << reproLine(seed, index);
    }

    // MRU: strategy under every table vs the straight-line scan.
    for (unsigned list_len : {0u, 2u}) {
        if (list_len >= s.assoc && list_len != 0)
            continue;
        LookupResult want = refMru(s, list_len);
        MruLookup strat(list_len);
        LookupInput in;
        in.assoc = s.assoc;
        in.stored_tags = s.tags.data();
        in.valid = s.valid.data();
        in.mru_order = s.order.data();
        in.incoming_tag = s.incoming;
        for (const LookupKernels *k : tables) {
            ScopedKernelOverride o(*k);
            LookupResult got = strat.lookup(in);
            ASSERT_TRUE(want.hit == got.hit && want.way == got.way &&
                        want.probes == got.probes)
                << "MRU(" << list_len << ") under " << k->name
                << ": want (" << want.hit << "," << want.way << ","
                << want.probes << ") got (" << got.hit << ","
                << got.way << "," << got.probes << ")\n  "
                << reproLine(seed, index);
        }
    }

    // Partial: pick subset counts that divide a with g*k <= t.
    unsigned t_idx = tagBitsIndex(s.tag_bits);
    for (unsigned geo = 0; geo < 4; ++geo) {
        for (unsigned s_idx = 0; s_idx < 3; ++s_idx) {
            unsigned subsets = kSubsets[s_idx];
            if (s.assoc % subsets != 0)
                continue;
            unsigned g = s.assoc / subsets;
            if (g * kGeoms[geo].k > s.tag_bits)
                continue;
            const TagTransform &xf = cachedTransform(geo, t_idx);
            LookupResult want = refPartial(s, xf, subsets);

            PartialLookup &strat = cachedPartial(geo, s_idx, t_idx);
            LookupInput in;
            in.assoc = s.assoc;
            in.stored_tags = s.tags.data();
            in.valid = s.valid.data();
            in.mru_order = s.order.data();
            in.incoming_tag = s.incoming;
            for (const LookupKernels *k : tables) {
                ScopedKernelOverride o(*k);
                LookupResult got = strat.lookup(in);
                ASSERT_TRUE(want.hit == got.hit &&
                            want.way == got.way &&
                            want.probes == got.probes)
                    << "Partial(k=" << kGeoms[geo].k
                    << ",s=" << subsets << ","
                    << transformKindName(kGeoms[geo].kind)
                    << ") under " << k->name << ": want ("
                    << want.hit << "," << want.way << ","
                    << want.probes << ") got (" << got.hit << ","
                    << got.way << "," << got.probes << ")\n  "
                    << reproLine(seed, index);
            }
        }
    }
}

TEST(KernelFuzz, MasksAndProbeCountsMatchReference)
{
    const std::uint64_t seed =
        envU64("ASSOC_KERNEL_FUZZ_SEED", 0x6b65726e656c31ULL);
    const std::uint64_t cases =
        envU64("ASSOC_KERNEL_FUZZ_CASES", 1000000);
    const std::uint64_t only =
        envU64("ASSOC_KERNEL_FUZZ_INDEX", ~0ull);
    std::vector<const LookupKernels *> tables = registeredKernels();

    if (only != ~0ull) {
        runCase(seed, only, tables);
        return;
    }
    for (std::uint64_t i = 0; i < cases; ++i) {
        runCase(seed, i, tables);
        if (::testing::Test::HasFatalFailure())
            return;
    }
}

} // namespace
} // namespace core
} // namespace assoc
