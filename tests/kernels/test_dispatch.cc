/**
 * @file
 * Kernel dispatch and self-check behavior: the registry's
 * preference order, the ASSOC_KERNELS override, and — the startup
 * fix this suite guards — that a table failing its smoke vectors is
 * skipped with a reason instead of crashing or silently miscounting.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/kernels.h"

namespace assoc {
namespace core {
namespace {

/** A deliberately broken table: eq_mask claims every way matches. */
LookupKernels
brokenKernels()
{
    LookupKernels k = swarKernels();
    k.isa = KernelIsa::Swar;
    k.name = "broken";
    k.eq_mask = +[](const std::uint32_t *, const std::uint8_t *,
                    unsigned, std::uint32_t) -> std::uint64_t {
        return ~0ull;
    };
    return k;
}

TEST(KernelDispatch, RegistryHasScalarLastAndSwarAlways)
{
    std::vector<const LookupKernels *> reg = registeredKernels();
    // Preference order is vector ISAs first, then the portable
    // fallbacks: ..., swar, scalar.
    ASSERT_GE(reg.size(), 2u);
    EXPECT_EQ(&scalarKernels(), reg.back());
    EXPECT_EQ(&swarKernels(), reg[reg.size() - 2]);
    for (std::size_t i = 0; i + 2 < reg.size(); ++i)
        EXPECT_TRUE(reg[i]->isa == KernelIsa::Avx2 ||
                    reg[i]->isa == KernelIsa::Neon)
            << reg[i]->name;
}

TEST(KernelDispatch, EveryRegisteredTablePassesItsSelfCheck)
{
    for (const LookupKernels *k : registeredKernels()) {
        std::string why;
        EXPECT_TRUE(kernelSelfCheck(*k, &why))
            << k->name << ": " << why;
    }
}

TEST(KernelDispatch, SelfCheckCatchesACorruptTable)
{
    LookupKernels bad = brokenKernels();
    std::string why;
    EXPECT_FALSE(kernelSelfCheck(bad, &why));
    EXPECT_FALSE(why.empty());
    EXPECT_NE(std::string::npos, why.find("eq_mask")) << why;
}

TEST(KernelDispatch, ChooseHonorsAnExplicitName)
{
    std::string reason;
    const LookupKernels &k = chooseKernels(
        "scalar", registeredKernels(), &reason);
    EXPECT_EQ(&scalarKernels(), &k);
    EXPECT_EQ("ASSOC_KERNELS=scalar", reason);
}

TEST(KernelDispatch, UnknownNameFallsBackWithAReason)
{
    std::string reason;
    const LookupKernels &k = chooseKernels(
        "sse9", registeredKernels(), &reason);
    EXPECT_EQ(registeredKernels().front(), &k);
    EXPECT_NE(std::string::npos, reason.find("not registered"))
        << reason;
}

TEST(KernelDispatch, BrokenCandidateIsSkippedNotFatal)
{
    LookupKernels bad = brokenKernels();
    std::vector<const LookupKernels *> reg = {&bad,
                                              &scalarKernels()};
    std::string reason;
    const LookupKernels &k = chooseKernels(nullptr, reg, &reason);
    EXPECT_EQ(&scalarKernels(), &k);
    EXPECT_NE(std::string::npos, reason.find("failed its self-check"))
        << reason;
}

TEST(KernelDispatch, BrokenExplicitNameFallsBackToNextGoodTable)
{
    LookupKernels bad = brokenKernels();
    std::vector<const LookupKernels *> reg = {
        &bad, &swarKernels(), &scalarKernels()};
    std::string reason;
    const LookupKernels &k = chooseKernels("broken", reg, &reason);
    EXPECT_EQ(&swarKernels(), &k);
    EXPECT_NE(std::string::npos,
              reason.find("failed its self-check"))
        << reason;
}

TEST(KernelDispatch, ActiveTableIsRegisteredAndExplained)
{
    const LookupKernels &active = activeKernels();
    bool registered = false;
    for (const LookupKernels *k : registeredKernels())
        if (k == &active)
            registered = true;
    EXPECT_TRUE(registered) << active.name;
    EXPECT_FALSE(kernelDispatchReason().empty());
    std::string why;
    EXPECT_TRUE(kernelSelfCheck(active, &why)) << why;
}

TEST(KernelDispatch, ScopedOverrideAppliesAndRestores)
{
    const LookupKernels &before = activeKernels();
    {
        ScopedKernelOverride o(scalarKernels());
        EXPECT_EQ(&scalarKernels(), &activeKernels());
        {
            ScopedKernelOverride inner(swarKernels());
            EXPECT_EQ(&swarKernels(), &activeKernels());
        }
        EXPECT_EQ(&scalarKernels(), &activeKernels());
    }
    EXPECT_EQ(&before, &activeKernels());
}

} // namespace
} // namespace core
} // namespace assoc
