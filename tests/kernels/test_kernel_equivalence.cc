/**
 * @file
 * Exhaustive scalar-vs-SWAR-vs-AVX2 kernel equivalence.
 *
 * Every table registeredKernels() exposes must agree bit for bit
 * with the scalar reference on every kernel, over a sweep of
 * associativities, field geometries, all four tag transforms,
 * misaligned plane offsets, all-invalid sets, and sets whose
 * truncated tags collide so the partial-compare step 2 must
 * disambiguate. A vector body that cuts a corner anywhere in this
 * grid fails here, not in a golden diff three layers up.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/kernels.h"
#include "core/lookup.h"
#include "core/mru_lookup.h"
#include "core/partial_lookup.h"
#include "core/transform.h"
#include "util/bitops.h"
#include "util/rng.h"

namespace assoc {
namespace core {
namespace {

// Plane offsets probed everywhere: 0 keeps whatever alignment the
// allocator gave us, 1 and 3 force element-aligned-only pointers so
// no kernel can get away with assuming 16/32-byte plane alignment.
const unsigned kOffsets[] = {0, 1, 3};
const unsigned kAssocs[] = {1, 2, 4, 8, 16};

/** Planes for one synthetic set, with a controlled misalignment. */
struct SetPlanes
{
    std::vector<std::uint32_t> tag_buf;
    std::vector<std::uint8_t> valid_buf;
    std::uint32_t *tags;
    std::uint8_t *valid;

    SetPlanes(unsigned a, unsigned off)
        : tag_buf(a + off), valid_buf(a + off),
          tags(tag_buf.data() + off), valid(valid_buf.data() + off)
    {}
};

/** Fill a set from a small tag pool so duplicates are common. */
void
fillSet(SetPlanes &s, unsigned a, Pcg32 &rng,
        std::uint32_t tag_mask, bool all_invalid)
{
    // A four-entry pool makes same-tag / same-field collisions the
    // norm rather than a fluke.
    std::uint32_t pool[4];
    for (std::uint32_t &p : pool)
        p = rng.next() & tag_mask;
    for (unsigned w = 0; w < a; ++w) {
        s.tags[w] = pool[rng.below(4)];
        s.valid[w] =
            all_invalid ? 0 : static_cast<std::uint8_t>(rng.below(3) != 0);
    }
}

std::uint64_t
validBitsOf(const SetPlanes &s, unsigned a)
{
    std::uint64_t bits = 0;
    for (unsigned w = 0; w < a; ++w)
        bits |= static_cast<std::uint64_t>(s.valid[w] != 0) << w;
    return bits;
}

TEST(KernelEquivalence, EqMasksAgreeEverywhere)
{
    const LookupKernels &ref = scalarKernels();
    Pcg32 rng(0x5eed0001, 11);
    for (const LookupKernels *k : registeredKernels()) {
        for (unsigned a : kAssocs) {
            for (unsigned off : kOffsets) {
                for (int all_invalid = 0; all_invalid < 2;
                     ++all_invalid) {
                    for (int rep = 0; rep < 50; ++rep) {
                        SetPlanes s(a, off);
                        fillSet(s, a, rng, 0xffffu,
                                all_invalid != 0);
                        std::uint32_t needle =
                            (rep & 1) ? s.tags[rng.below(a)]
                                      : (rng.next() & 0xffffu);
                        std::uint64_t vbits = validBitsOf(s, a);
                        SCOPED_TRACE(std::string(k->name) +
                                     " a=" + std::to_string(a) +
                                     " off=" + std::to_string(off));
                        EXPECT_EQ(
                            ref.eq_mask(s.tags, s.valid, a, needle),
                            k->eq_mask(s.tags, s.valid, a, needle));
                        EXPECT_EQ(ref.eq_mask_bits(s.tags, vbits, a,
                                                   needle),
                                  k->eq_mask_bits(s.tags, vbits, a,
                                                  needle));
                        EXPECT_EQ(ref.eq_mask_bits_relaxed(
                                      s.tags, vbits, a, needle),
                                  k->eq_mask_bits_relaxed(
                                      s.tags, vbits, a, needle));
                        if (all_invalid) {
                            EXPECT_EQ(0u, k->eq_mask(s.tags, s.valid,
                                                     a, needle));
                            EXPECT_EQ(0u,
                                      k->eq_mask_bits(s.tags, 0, a,
                                                      needle));
                        }
                    }
                }
            }
        }
        // The full-width mask boundary: every way matches at a=64.
        SetPlanes s(64, 0);
        for (unsigned w = 0; w < 64; ++w) {
            s.tags[w] = 0xabcd;
            s.valid[w] = 1;
        }
        EXPECT_EQ(~0ull, k->eq_mask(s.tags, s.valid, 64, 0xabcd))
            << k->name;
        EXPECT_EQ(~0ull, k->eq_mask_bits(s.tags, ~0ull, 64, 0xabcd))
            << k->name;
    }
}

TEST(KernelEquivalence, PartialMaskAllTransformsAllFieldWidths)
{
    const LookupKernels &ref = scalarKernels();
    const TransformKind kinds[] = {TransformKind::None,
                                   TransformKind::XorLow,
                                   TransformKind::Improved,
                                   TransformKind::Swap};
    Pcg32 rng(0x5eed0002, 12);
    for (const LookupKernels *kern : registeredKernels()) {
        for (unsigned t : {8u, 12u, 16u, 20u, 32u}) {
            for (unsigned k = 1; k <= t; ++k) {
                unsigned g_max = t / k; // the g*k <= t ceiling
                for (unsigned g = 1; g <= g_max; ++g) {
                    for (TransformKind kind : kinds) {
                        auto xf = TagTransform::make(kind, t, k);
                        std::vector<std::uint32_t> inc_fields(g);
                        std::uint32_t tag_mask =
                            static_cast<std::uint32_t>(
                                maskBits(t));
                        for (unsigned off : kOffsets) {
                            SetPlanes s(g, off);
                            fillSet(s, g, rng, tag_mask, false);
                            std::uint32_t inc =
                                s.tags[rng.below(g)];
                            for (unsigned l = 0; l < g; ++l)
                                inc_fields[l] = xf->field(
                                    xf->apply(inc, l), l);
                            std::uint64_t want = ref.partial_mask(
                                s.tags, s.valid, g,
                                inc_fields.data(), k, kind, *xf);
                            std::uint64_t got = kern->partial_mask(
                                s.tags, s.valid, g,
                                inc_fields.data(), k, kind, *xf);
                            EXPECT_EQ(want, got)
                                << kern->name << " t=" << t
                                << " k=" << k << " g=" << g
                                << " kind="
                                << transformKindName(kind)
                                << " off=" << off;
                        }
                    }
                }
            }
        }
    }
}

TEST(KernelEquivalence, PlaneDecodeHelpersAgree)
{
    const LookupKernels &ref = scalarKernels();
    Pcg32 rng(0x5eed0003, 13);
    for (const LookupKernels *k : registeredKernels()) {
        for (unsigned n = 1; n <= 64; ++n) {
            std::uint64_t bits = rng.next64();
            std::uint8_t want[64 + 3], got[64 + 3];
            for (unsigned off : kOffsets) {
                ref.expand_bits(bits, n, want + off);
                k->expand_bits(bits, n, got + off);
                for (unsigned i = 0; i < n; ++i)
                    ASSERT_EQ(want[off + i], got[off + i])
                        << k->name << " n=" << n << " i=" << i;
            }
        }
        for (unsigned n = 1; n <= 16; ++n) {
            std::uint64_t word = rng.next64();
            std::uint8_t want[16], got[16];
            ref.expand_nibbles(word, n, want);
            k->expand_nibbles(word, n, got);
            for (unsigned i = 0; i < n; ++i)
                ASSERT_EQ(want[i], got[i]) << k->name << " n=" << n;
        }
        for (unsigned n : {1u, 3u, 8u, 16u, 33u}) {
            for (unsigned shift : {0u, 1u, 7u, 14u, 31u}) {
                for (unsigned off : kOffsets) {
                    std::vector<std::uint32_t> in(n + off),
                        want(n + off), got(n + off);
                    for (std::uint32_t &v : in)
                        v = rng.next();
                    ref.shift_tags(in.data() + off, n, shift,
                                   want.data() + off);
                    k->shift_tags(in.data() + off, n, shift,
                                  got.data() + off);
                    for (unsigned i = 0; i < n; ++i)
                        ASSERT_EQ(want[off + i], got[off + i])
                            << k->name << " n=" << n
                            << " shift=" << shift;
                }
            }
        }
    }
}

/**
 * Strategy-level equivalence: every lookup strategy must produce the
 * identical (hit, way, probes) triple under every registered table.
 * The sets are drawn from tiny tag pools, so truncated-tag and
 * partial-field collisions (the step-2 disambiguation path) occur
 * constantly.
 */
TEST(KernelEquivalence, StrategiesBitIdenticalUnderEveryTable)
{
    Pcg32 rng(0x5eed0004, 14);
    for (unsigned a : kAssocs) {
        std::vector<std::unique_ptr<LookupStrategy>> strategies;
        strategies.push_back(std::make_unique<TraditionalLookup>());
        strategies.push_back(std::make_unique<NaiveLookup>());
        strategies.push_back(std::make_unique<MruLookup>());
        if (a > 2)
            strategies.push_back(std::make_unique<MruLookup>(2));
        for (TransformKind kind :
             {TransformKind::None, TransformKind::XorLow,
              TransformKind::Improved, TransformKind::Swap}) {
            PartialConfig pc;
            pc.tag_bits = 16;
            pc.field_bits = 4;
            pc.subsets = a > 4 ? a / 4 : 1;
            pc.transform = kind;
            strategies.push_back(
                std::make_unique<PartialLookup>(pc));
        }

        for (int rep = 0; rep < 200; ++rep) {
            SetPlanes s(a, rep % 3);
            fillSet(s, a, rng, 0xffffu, rep % 17 == 0);
            std::vector<std::uint8_t> order(a);
            for (unsigned w = 0; w < a; ++w)
                order[w] = static_cast<std::uint8_t>(w);
            for (unsigned w = a; w > 1; --w)
                std::swap(order[w - 1], order[rng.below(w)]);

            LookupInput in;
            in.assoc = a;
            in.stored_tags = s.tags;
            in.valid = s.valid;
            in.mru_order = order.data();
            in.incoming_tag = (rep & 1) ? s.tags[rng.below(a)]
                                        : (rng.next() & 0xffffu);

            for (const auto &strat : strategies) {
                LookupResult want;
                {
                    ScopedKernelOverride o(scalarKernels());
                    want = strat->lookup(in);
                }
                for (const LookupKernels *k : registeredKernels()) {
                    ScopedKernelOverride o(*k);
                    LookupResult got = strat->lookup(in);
                    EXPECT_EQ(want.hit, got.hit)
                        << strat->name() << " under " << k->name;
                    EXPECT_EQ(want.way, got.way)
                        << strat->name() << " under " << k->name;
                    EXPECT_EQ(want.probes, got.probes)
                        << strat->name() << " under " << k->name;
                }
            }
        }
    }
}

/**
 * Hand-built collision sets: several ways share the incoming tag's
 * partial field but only one (or none) matches the full tag, so the
 * candidate mask alone cannot decide and step 2 must walk the false
 * matches in way order, paying one probe each.
 */
TEST(KernelEquivalence, DuplicateTruncatedTagsForceStepTwo)
{
    // 16-bit tags, k = 2, one subset of g = 8 ways: way w's step-1
    // compare reads field w (bits 2w..2w+1, None transform).
    PartialConfig pc;
    pc.tag_bits = 16;
    pc.field_bits = 2;
    pc.subsets = 1;
    pc.transform = TransformKind::None;
    PartialLookup strat(pc);

    const std::uint32_t inc = 0xbeb5;
    std::uint32_t tags[8];
    std::uint8_t valid[8];
    std::uint8_t order[8];
    for (unsigned w = 0; w < 8; ++w) {
        valid[w] = 1;
        order[w] = static_cast<std::uint8_t>(w);
    }
    // Ways 0..2: field w agrees with the incoming tag (a bit in a
    // high field is flipped instead), so each is a false candidate
    // costing one step-2 probe. Way 3 is the true match.
    for (unsigned w = 0; w < 3; ++w)
        tags[w] = inc ^ (1u << (2 * (w + 5)));
    tags[3] = inc;
    // Ways 4, 6, 7: field w disagrees — filtered out by step 1.
    for (unsigned w : {4u, 6u, 7u})
        tags[w] = inc ^ (1u << (2 * w));
    // Way 5 would be a candidate, but the line is invalid.
    tags[5] = inc ^ (1u << 2);
    valid[5] = 0;

    LookupInput in;
    in.assoc = 8;
    in.stored_tags = tags;
    in.valid = valid;
    in.mru_order = order;
    in.incoming_tag = inc;

    for (const LookupKernels *k : registeredKernels()) {
        ScopedKernelOverride o(*k);
        LookupResult r = strat.lookup(in);
        EXPECT_TRUE(r.hit) << k->name;
        EXPECT_EQ(3, r.way) << k->name;
        // 1 step-1 probe + full compares of ways 0,1,2,3.
        EXPECT_EQ(5u, r.probes) << k->name;

        // Flip field 4 of the incoming tag: ways 0..3 stay
        // candidates (their fields live in bits 0..7), way 4 still
        // mismatches, and no full compare succeeds.
        in.incoming_tag = inc ^ (0x3u << 8);
        LookupResult miss = strat.lookup(in);
        EXPECT_FALSE(miss.hit) << k->name;
        // 1 step-1 probe + 4 false full compares (way 5 invalid).
        EXPECT_EQ(5u, miss.probes) << k->name;
        in.incoming_tag = inc;
    }
}

} // namespace
} // namespace core
} // namespace assoc
