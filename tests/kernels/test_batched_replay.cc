/**
 * @file
 * Batched trace replay must be a pure throughput optimization:
 * sim::RunSpec::batch_size changes how references are pulled and
 * prefetched, never what any counter says. These tests hold every
 * batch size to bit-for-bit identical RunOutputs, on the serial
 * fast path and through the parallel sweep.
 */

#include <gtest/gtest.h>

#include <vector>

#include "core/scheme.h"
#include "exec/sweep.h"
#include "mem/hierarchy.h"
#include "sim/runner.h"
#include "trace/atum_like.h"
#include "trace/trace_source.h"
#include "util/rng.h"

namespace assoc {
namespace {

trace::AtumLikeConfig
smallTrace()
{
    trace::AtumLikeConfig cfg;
    cfg.seed = 0xba7c4;
    cfg.segments = 2; // a flush marker lands mid-stream
    cfg.refs_per_segment = 15000;
    cfg.processes = 2;
    return cfg;
}

sim::RunSpec
specWithBatch(unsigned batch)
{
    sim::RunSpec spec;
    spec.hier = {mem::CacheGeometry(4096, 16, 1),
                 mem::CacheGeometry(65536, 32, 4), true};
    spec.schemes = {
        core::SchemeSpec{core::SchemeKind::Traditional},
        core::SchemeSpec{core::SchemeKind::Naive},
        core::SchemeSpec{core::SchemeKind::Mru},
        core::SchemeSpec::paperPartial(4),
    };
    spec.with_distances = true;
    spec.batch_size = batch;
    return spec;
}

void
expectSameOutput(const sim::RunOutput &want,
                 const sim::RunOutput &got, unsigned batch)
{
    SCOPED_TRACE("batch=" + std::to_string(batch));
    const mem::HierarchyStats &a = want.stats;
    const mem::HierarchyStats &b = got.stats;
    EXPECT_EQ(a.proc_refs, b.proc_refs);
    EXPECT_EQ(a.l1_hits, b.l1_hits);
    EXPECT_EQ(a.l1_misses, b.l1_misses);
    EXPECT_EQ(a.read_ins, b.read_ins);
    EXPECT_EQ(a.read_in_hits, b.read_in_hits);
    EXPECT_EQ(a.read_in_misses, b.read_in_misses);
    EXPECT_EQ(a.write_backs, b.write_backs);
    EXPECT_EQ(a.write_back_hits, b.write_back_hits);
    EXPECT_EQ(a.write_back_misses, b.write_back_misses);
    EXPECT_EQ(a.hint_correct, b.hint_correct);
    EXPECT_EQ(a.hint_wrong, b.hint_wrong);
    EXPECT_EQ(a.flushes, b.flushes);
    EXPECT_EQ(a.inclusion_invalidations, b.inclusion_invalidations);

    ASSERT_EQ(want.names, got.names);
    ASSERT_EQ(want.probes.size(), got.probes.size());
    for (std::size_t i = 0; i < want.probes.size(); ++i) {
        const core::ProbeStats &p = want.probes[i];
        const core::ProbeStats &q = got.probes[i];
        SCOPED_TRACE(want.names[i]);
        EXPECT_EQ(p.read_in_hits.count(), q.read_in_hits.count());
        EXPECT_EQ(p.read_in_hits.sum(), q.read_in_hits.sum());
        EXPECT_EQ(p.read_in_misses.count(),
                  q.read_in_misses.count());
        EXPECT_EQ(p.read_in_misses.sum(), q.read_in_misses.sum());
        EXPECT_EQ(p.write_backs.count(), q.write_backs.count());
        EXPECT_EQ(p.write_backs.sum(), q.write_backs.sum());
        EXPECT_EQ(p.alias_hits, q.alias_hits);
        EXPECT_EQ(p.alias_wrong_way, q.alias_wrong_way);
    }
    EXPECT_EQ(want.f, got.f);
}

TEST(BatchedReplay, EveryBatchSizeMatchesUnbatched)
{
    trace::AtumLikeGenerator unbatched(smallTrace());
    sim::RunOutput want = sim::runTrace(unbatched, specWithBatch(1));
    EXPECT_GT(want.stats.proc_refs, 0u);
    EXPECT_EQ(1u, want.stats.flushes);

    for (unsigned batch : {0u, 4u, 16u, 64u}) {
        trace::AtumLikeGenerator src(smallTrace());
        sim::RunOutput got = sim::runTrace(src, specWithBatch(batch));
        expectSameOutput(want, got, batch);
    }
}

TEST(BatchedReplay, SweepPathMatchesAcrossBatchSizesAndJobs)
{
    // Four specs of varying level-two geometry, run once with
    // batching off and once with the default batch, serial and
    // through the pool: all four ways must agree spec by spec.
    auto makeSpecs = [](unsigned batch) {
        std::vector<sim::RunSpec> specs;
        for (unsigned assoc : {1u, 2u, 4u, 8u}) {
            sim::RunSpec s = specWithBatch(batch);
            s.hier.l2 = mem::CacheGeometry(65536, 32, assoc);
            s.schemes = {core::SchemeSpec{core::SchemeKind::Mru}};
            s.with_distances = false;
            specs.push_back(s);
        }
        return specs;
    };
    trace::AtumLikeConfig cfg = smallTrace();

    exec::SweepOptions serial;
    serial.jobs = 1;
    exec::SweepOptions pooled;
    pooled.jobs = 2;

    std::vector<sim::RunOutput> want = exec::runSweep(
        makeSpecs(1), exec::atumTraceFactory(cfg), serial);
    for (unsigned batch : {1u, 64u}) {
        for (exec::SweepOptions *opt : {&serial, &pooled}) {
            std::vector<sim::RunOutput> got = exec::runSweep(
                makeSpecs(batch), exec::atumTraceFactory(cfg), *opt);
            ASSERT_EQ(want.size(), got.size());
            for (std::size_t i = 0; i < want.size(); ++i)
                expectSameOutput(want[i], got[i], batch);
        }
    }
}

TEST(BatchedReplay, VectorSourceBatchesMatchSerialNext)
{
    Pcg32 rng(0xba7c5, 3);
    std::vector<trace::MemRef> refs;
    for (int i = 0; i < 1000; ++i) {
        trace::MemRef r;
        r.addr = rng.next();
        r.type = rng.below(4) == 0 ? trace::RefType::Write
                                   : trace::RefType::Read;
        refs.push_back(r);
    }

    trace::VectorTraceSource serial(refs);
    for (std::size_t batch : {1u, 4u, 16u, 64u, 7u}) {
        trace::VectorTraceSource batched(refs);
        serial.reset();
        std::vector<trace::MemRef> buf(batch);
        std::size_t total = 0;
        for (;;) {
            std::size_t n = batched.nextBatch(buf.data(), batch);
            if (n == 0)
                break;
            EXPECT_LE(n, batch);
            for (std::size_t i = 0; i < n; ++i) {
                trace::MemRef r;
                ASSERT_TRUE(serial.next(r));
                EXPECT_EQ(r.addr, buf[i].addr);
                EXPECT_EQ(r.type, buf[i].type);
            }
            total += n;
        }
        trace::MemRef r;
        EXPECT_FALSE(serial.next(r));
        EXPECT_EQ(refs.size(), total);
    }
}

TEST(BatchedReplay, HierarchyRunBatchedEqualsPerReference)
{
    // Drive the hierarchy directly (no runner) so the prefetching
    // run() loop itself is on trial, flush markers included.
    Pcg32 rng(0xba7c6, 4);
    trace::VectorTraceSource src;
    for (int i = 0; i < 20000; ++i) {
        trace::MemRef r;
        if (i == 9000) {
            src.push(trace::MemRef::flush());
            continue;
        }
        r.addr = (rng.next() & 0x3ffff);
        r.type = rng.below(3) == 0 ? trace::RefType::Write
                                   : trace::RefType::Read;
        src.push(r);
    }

    mem::HierarchyConfig hc{mem::CacheGeometry(1024, 16, 1),
                            mem::CacheGeometry(16384, 32, 4), true};
    mem::TwoLevelHierarchy base(hc);
    base.run(src, 1);

    for (unsigned batch : {4u, 16u, 64u}) {
        mem::TwoLevelHierarchy h(hc);
        h.run(src, batch);
        const mem::HierarchyStats &a = base.stats();
        const mem::HierarchyStats &b = h.stats();
        EXPECT_EQ(a.proc_refs, b.proc_refs) << "batch=" << batch;
        EXPECT_EQ(a.l1_misses, b.l1_misses) << "batch=" << batch;
        EXPECT_EQ(a.read_in_misses, b.read_in_misses)
            << "batch=" << batch;
        EXPECT_EQ(a.write_backs, b.write_backs) << "batch=" << batch;
        EXPECT_EQ(a.flushes, b.flushes) << "batch=" << batch;
    }
}

} // namespace
} // namespace assoc
