#include <gtest/gtest.h>

#include "util/logging.h"

namespace assoc {
namespace {

TEST(Logging, FatalThrowsFatalError)
{
    EXPECT_THROW(fatal("boom"), FatalError);
    try {
        fatal("bad config");
    } catch (const FatalError &e) {
        EXPECT_STREQ(e.what(), "fatal: bad config");
    }
}

TEST(Logging, PanicThrowsPanicError)
{
    EXPECT_THROW(panic("bug"), PanicError);
    try {
        panic("invariant");
    } catch (const PanicError &e) {
        EXPECT_STREQ(e.what(), "panic: invariant");
    }
}

TEST(Logging, FatalIfOnlyFiresWhenTrue)
{
    EXPECT_NO_THROW(fatalIf(false, "no"));
    EXPECT_THROW(fatalIf(true, "yes"), FatalError);
}

TEST(Logging, PanicIfOnlyFiresWhenTrue)
{
    EXPECT_NO_THROW(panicIf(false, "no"));
    EXPECT_THROW(panicIf(true, "yes"), PanicError);
}

TEST(Logging, FatalErrorIsARuntimeError)
{
    // Library users can catch std::runtime_error for user errors
    // and std::logic_error for bugs.
    EXPECT_THROW(fatal("x"), std::runtime_error);
    EXPECT_THROW(panic("x"), std::logic_error);
}

TEST(Logging, WarnAndInformDoNotThrow)
{
    setQuiet(true);
    EXPECT_NO_THROW(warn("w"));
    EXPECT_NO_THROW(inform("i"));
    setQuiet(false);
}

} // namespace
} // namespace assoc
