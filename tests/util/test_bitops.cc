#include <gtest/gtest.h>

#include "util/bitops.h"

namespace assoc {
namespace {

TEST(BitOps, IsPow2)
{
    EXPECT_FALSE(isPow2(0));
    EXPECT_TRUE(isPow2(1));
    EXPECT_TRUE(isPow2(2));
    EXPECT_FALSE(isPow2(3));
    EXPECT_TRUE(isPow2(4));
    EXPECT_FALSE(isPow2(6));
    EXPECT_TRUE(isPow2(std::uint64_t{1} << 63));
    EXPECT_FALSE(isPow2((std::uint64_t{1} << 63) + 1));
}

TEST(BitOps, Log2i)
{
    EXPECT_EQ(log2i(1), 0u);
    EXPECT_EQ(log2i(2), 1u);
    EXPECT_EQ(log2i(4096), 12u);
    EXPECT_EQ(log2i(std::uint64_t{1} << 40), 40u);
}

TEST(BitOps, Log2iRejectsNonPow2)
{
    EXPECT_THROW(log2i(0), PanicError);
    EXPECT_THROW(log2i(3), PanicError);
}

TEST(BitOps, Log2Ceil)
{
    EXPECT_EQ(log2Ceil(1), 0u);
    EXPECT_EQ(log2Ceil(2), 1u);
    EXPECT_EQ(log2Ceil(3), 2u);
    EXPECT_EQ(log2Ceil(4), 2u);
    EXPECT_EQ(log2Ceil(5), 3u);
    EXPECT_THROW(log2Ceil(0), PanicError);
}

TEST(BitOps, MaskBits)
{
    EXPECT_EQ(maskBits(0), 0u);
    EXPECT_EQ(maskBits(1), 1u);
    EXPECT_EQ(maskBits(16), 0xffffu);
    EXPECT_EQ(maskBits(32), 0xffffffffu);
    EXPECT_EQ(maskBits(64), ~std::uint64_t{0});
}

TEST(BitOps, BitField)
{
    EXPECT_EQ(bitField(0xdeadbeef, 0, 8), 0xefu);
    EXPECT_EQ(bitField(0xdeadbeef, 8, 8), 0xbeu);
    EXPECT_EQ(bitField(0xdeadbeef, 16, 16), 0xdeadu);
    EXPECT_EQ(bitField(0xff, 4, 0), 0u);
}

TEST(BitOps, Popcount)
{
    EXPECT_EQ(popcount(0), 0u);
    EXPECT_EQ(popcount(0xff), 8u);
    EXPECT_EQ(popcount(~std::uint64_t{0}), 64u);
}

} // namespace
} // namespace assoc
