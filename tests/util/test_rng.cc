#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/rng.h"

namespace assoc {
namespace {

TEST(SplitMix64, DeterministicForSameSeed)
{
    SplitMix64 a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge)
{
    SplitMix64 a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_EQ(same, 0);
}

TEST(Pcg32, DeterministicForSameSeedAndStream)
{
    Pcg32 a(7, 3), b(7, 3);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Pcg32, StreamsAreIndependent)
{
    Pcg32 a(7, 1), b(7, 2);
    int same = 0;
    for (int i = 0; i < 1000; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 3);
}

TEST(Pcg32, ReseedRestartsTheSequence)
{
    Pcg32 a(9, 4);
    std::vector<std::uint32_t> first;
    for (int i = 0; i < 16; ++i)
        first.push_back(a.next());
    a.reseed(9, 4);
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(a.next(), first[i]);
}

TEST(Pcg32, BelowStaysInRange)
{
    Pcg32 rng(123);
    for (std::uint32_t bound : {1u, 2u, 3u, 10u, 1000u, 1u << 31}) {
        for (int i = 0; i < 200; ++i)
            EXPECT_LT(rng.below(bound), bound);
    }
}

TEST(Pcg32, BelowZeroPanics)
{
    Pcg32 rng(1);
    EXPECT_THROW(rng.below(0), PanicError);
}

TEST(Pcg32, BelowIsRoughlyUniform)
{
    Pcg32 rng(99);
    const int buckets = 8, n = 80000;
    std::vector<int> count(buckets, 0);
    for (int i = 0; i < n; ++i)
        ++count[rng.below(buckets)];
    for (int c : count) {
        EXPECT_GT(c, n / buckets * 0.9);
        EXPECT_LT(c, n / buckets * 1.1);
    }
}

TEST(Pcg32, UniformInUnitInterval)
{
    Pcg32 rng(5);
    double sum = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i) {
        double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Pcg32, ChanceMatchesProbability)
{
    Pcg32 rng(17);
    const int n = 50000;
    int hits = 0;
    for (int i = 0; i < n; ++i)
        hits += rng.chance(0.3);
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Pcg32, GeometricMeanMatchesTheory)
{
    Pcg32 rng(31);
    const double p = 0.25;
    const int n = 50000;
    double sum = 0;
    for (int i = 0; i < n; ++i)
        sum += rng.geometric(p);
    // Mean of failures-before-success geometric is (1-p)/p = 3.
    EXPECT_NEAR(sum / n, (1 - p) / p, 0.15);
}

TEST(Pcg32, GeometricRespectsCap)
{
    Pcg32 rng(32);
    for (int i = 0; i < 2000; ++i)
        EXPECT_LE(rng.geometric(0.001, 50), 50u);
}

TEST(Pcg32, GeometricWithPOneIsZero)
{
    Pcg32 rng(33);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(rng.geometric(1.0), 0u);
}

TEST(Pcg32, GeometricRejectsBadP)
{
    Pcg32 rng(34);
    EXPECT_THROW(rng.geometric(0.0), PanicError);
    EXPECT_THROW(rng.geometric(-0.5), PanicError);
    EXPECT_THROW(rng.geometric(1.5), PanicError);
}

TEST(ZipfSampler, StaysInRange)
{
    Pcg32 rng(55);
    ZipfSampler zipf(0.8);
    for (std::uint32_t n : {1u, 2u, 5u, 100u, 5000u}) {
        for (int i = 0; i < 100; ++i)
            EXPECT_LT(zipf.draw(rng, n), n);
    }
}

TEST(ZipfSampler, RankZeroIsMostLikely)
{
    Pcg32 rng(56);
    ZipfSampler zipf(1.0);
    const std::uint32_t n = 64;
    std::vector<int> count(n, 0);
    for (int i = 0; i < 50000; ++i)
        ++count[zipf.draw(rng, n)];
    EXPECT_GT(count[0], count[1]);
    EXPECT_GT(count[1], count[8]);
    EXPECT_GT(count[0], count[n - 1] * 5);
}

TEST(ZipfSampler, EmptyRangePanics)
{
    Pcg32 rng(57);
    ZipfSampler zipf(1.0);
    EXPECT_THROW(zipf.draw(rng, 0), PanicError);
}

TEST(ZipfSampler, HandlesGrowingRange)
{
    // The trace generator's footprint grows; the sampler must stay
    // correct as n increases between draws.
    Pcg32 rng(58);
    ZipfSampler zipf(0.7);
    for (std::uint32_t n = 1; n < 3000; n += 7)
        EXPECT_LT(zipf.draw(rng, n), n);
}

} // namespace
} // namespace assoc
