// Unit tests for the seeded-jitter retry helper (util/backoff.h):
// delay growth and bounds, cross-run determinism, and the
// retryOverloaded() client loop (retry classes, attempt caps,
// cancellation, sleep accounting).

#include "util/backoff.h"

#include <vector>

#include <gtest/gtest.h>

#include "util/cancel.h"

namespace assoc {
namespace {

BackoffPolicy
tinyPolicy()
{
    BackoffPolicy p;
    p.initial_ns = 1000;
    p.max_ns = 16000;
    p.multiplier = 2;
    p.seed = 42;
    return p;
}

TEST(Backoff, DelaysStayWithinEqualJitterBounds)
{
    Backoff b(tinyPolicy());
    std::uint64_t ceil = 1000;
    for (int k = 0; k < 10; ++k) {
        std::uint64_t d = b.nextDelayNs();
        EXPECT_GE(d, ceil / 2) << "attempt " << k;
        EXPECT_LE(d, ceil) << "attempt " << k;
        if (ceil < 16000)
            ceil *= 2;
        if (ceil > 16000)
            ceil = 16000;
    }
}

TEST(Backoff, SaturatesAtMax)
{
    Backoff b(tinyPolicy());
    std::uint64_t last = 0;
    for (int k = 0; k < 20; ++k)
        last = b.nextDelayNs();
    // After many doublings the ceiling is pinned at max_ns.
    EXPECT_GE(last, 8000u);
    EXPECT_LE(last, 16000u);
}

TEST(Backoff, SameSeedSameDelaySequence)
{
    Backoff a(tinyPolicy()), b(tinyPolicy());
    for (int k = 0; k < 12; ++k)
        EXPECT_EQ(a.nextDelayNs(), b.nextDelayNs()) << "k=" << k;
}

TEST(Backoff, DifferentSeedsDiverge)
{
    BackoffPolicy other = tinyPolicy();
    other.seed = 43;
    Backoff a(tinyPolicy()), b(other);
    bool differed = false;
    for (int k = 0; k < 12; ++k)
        if (a.nextDelayNs() != b.nextDelayNs())
            differed = true;
    EXPECT_TRUE(differed);
}

TEST(Backoff, ResetReplaysTheSequence)
{
    Backoff b(tinyPolicy());
    std::vector<std::uint64_t> first;
    for (int k = 0; k < 6; ++k)
        first.push_back(b.nextDelayNs());
    b.reset();
    for (int k = 0; k < 6; ++k)
        EXPECT_EQ(b.nextDelayNs(), first[k]) << "k=" << k;
}

TEST(RetryOverloaded, FirstTrySuccessNeverSleeps)
{
    unsigned sleeps = 0;
    RetryOutcome r = retryOverloaded(
        []() { return Error(); }, tinyPolicy(), 5, nullptr,
        [&](std::uint64_t) { ++sleeps; });
    EXPECT_TRUE(r.error.ok());
    EXPECT_EQ(r.attempts, 1u);
    EXPECT_EQ(r.waited_ns, 0u);
    EXPECT_EQ(sleeps, 0u);
}

TEST(RetryOverloaded, RetriesOverloadedUntilSuccess)
{
    int calls = 0;
    RetryOutcome r = retryOverloaded(
        [&]() {
            return ++calls < 3 ? Error::overloaded("shed")
                               : Error();
        },
        tinyPolicy(), 5, nullptr, [](std::uint64_t) {});
    EXPECT_TRUE(r.error.ok());
    EXPECT_EQ(r.attempts, 3u);
    EXPECT_GT(r.waited_ns, 0u);
}

TEST(RetryOverloaded, RetriesTransientIo)
{
    int calls = 0;
    RetryOutcome r = retryOverloaded(
        [&]() {
            return ++calls < 2 ? Error::io("flaky") : Error();
        },
        tinyPolicy(), 5, nullptr, [](std::uint64_t) {});
    EXPECT_TRUE(r.error.ok());
    EXPECT_EQ(r.attempts, 2u);
}

TEST(RetryOverloaded, GivesUpAfterMaxAttempts)
{
    RetryOutcome r = retryOverloaded(
        []() { return Error::overloaded("always shed"); },
        tinyPolicy(), 3, nullptr, [](std::uint64_t) {});
    ASSERT_FALSE(r.error.ok());
    EXPECT_EQ(r.error.code(), ErrorCode::Overloaded);
    EXPECT_EQ(r.attempts, 3u);
}

TEST(RetryOverloaded, NonRetryableErrorStopsImmediately)
{
    unsigned sleeps = 0;
    RetryOutcome r = retryOverloaded(
        []() { return Error::data("corrupt"); }, tinyPolicy(), 5,
        nullptr, [&](std::uint64_t) { ++sleeps; });
    ASSERT_FALSE(r.error.ok());
    EXPECT_EQ(r.error.code(), ErrorCode::Data);
    EXPECT_EQ(r.attempts, 1u);
    EXPECT_EQ(sleeps, 0u);
}

TEST(RetryOverloaded, TrippedTokenReportsItsStructuredError)
{
    CancelToken cancel;
    cancel.cancel();
    int calls = 0;
    RetryOutcome r = retryOverloaded(
        [&]() {
            ++calls;
            return Error::overloaded("shed");
        },
        tinyPolicy(), 5, &cancel, [](std::uint64_t) {});
    ASSERT_FALSE(r.error.ok());
    EXPECT_EQ(r.error.code(), ErrorCode::Cancelled);
    // Checked before the first attempt: the op never runs.
    EXPECT_EQ(calls, 0);
    EXPECT_EQ(r.attempts, 0u);
}

TEST(RetryOverloaded, CancelMidLoopStopsRetrying)
{
    CancelToken cancel;
    int calls = 0;
    RetryOutcome r = retryOverloaded(
        [&]() {
            if (++calls == 2)
                cancel.cancel();
            return Error::overloaded("shed");
        },
        tinyPolicy(), 10, &cancel, [](std::uint64_t) {});
    ASSERT_FALSE(r.error.ok());
    EXPECT_EQ(r.error.code(), ErrorCode::Cancelled);
    EXPECT_EQ(calls, 2);
}

TEST(RetryOverloaded, WaitedNsSumsTheSleeperArguments)
{
    std::uint64_t slept = 0;
    RetryOutcome r = retryOverloaded(
        []() { return Error::overloaded("shed"); }, tinyPolicy(), 4,
        nullptr, [&](std::uint64_t ns) { slept += ns; });
    EXPECT_EQ(r.waited_ns, slept);
    EXPECT_GT(slept, 0u);
}

} // namespace
} // namespace assoc
