#include <gtest/gtest.h>

#include "util/argparse.h"
#include "util/logging.h"

namespace assoc {
namespace {

ArgParser
makeParser()
{
    ArgParser p("prog", "test parser");
    p.addFlag("count", "10", "a number");
    p.addFlag("name", "cache", "a string");
    p.addFlag("ratio", "0.5", "a double");
    p.addSwitch("verbose", "a switch");
    return p;
}

TEST(ArgParser, DefaultsApply)
{
    ArgParser p = makeParser();
    const char *argv[] = {"prog"};
    ASSERT_TRUE(p.parse(1, argv));
    EXPECT_EQ(p.getInt("count"), 10);
    EXPECT_EQ(p.getString("name"), "cache");
    EXPECT_DOUBLE_EQ(p.getDouble("ratio"), 0.5);
    EXPECT_FALSE(p.getBool("verbose"));
    EXPECT_FALSE(p.given("count"));
}

TEST(ArgParser, EqualsForm)
{
    ArgParser p = makeParser();
    const char *argv[] = {"prog", "--count=42", "--name=foo"};
    ASSERT_TRUE(p.parse(3, argv));
    EXPECT_EQ(p.getInt("count"), 42);
    EXPECT_EQ(p.getString("name"), "foo");
    EXPECT_TRUE(p.given("count"));
}

TEST(ArgParser, SpaceForm)
{
    ArgParser p = makeParser();
    const char *argv[] = {"prog", "--count", "7"};
    ASSERT_TRUE(p.parse(3, argv));
    EXPECT_EQ(p.getInt("count"), 7);
}

TEST(ArgParser, SwitchPresenceMeansTrue)
{
    ArgParser p = makeParser();
    const char *argv[] = {"prog", "--verbose"};
    ASSERT_TRUE(p.parse(2, argv));
    EXPECT_TRUE(p.getBool("verbose"));
}

TEST(ArgParser, SwitchExplicitValue)
{
    ArgParser p = makeParser();
    const char *argv[] = {"prog", "--verbose=false"};
    ASSERT_TRUE(p.parse(2, argv));
    EXPECT_FALSE(p.getBool("verbose"));
}

TEST(ArgParser, PositionalArguments)
{
    ArgParser p = makeParser();
    const char *argv[] = {"prog", "in.trace", "--count=1", "out.trace"};
    ASSERT_TRUE(p.parse(4, argv));
    ASSERT_EQ(p.positional().size(), 2u);
    EXPECT_EQ(p.positional()[0], "in.trace");
    EXPECT_EQ(p.positional()[1], "out.trace");
}

TEST(ArgParser, UnknownFlagIsFatal)
{
    ArgParser p = makeParser();
    const char *argv[] = {"prog", "--bogus=1"};
    EXPECT_THROW(p.parse(2, argv), FatalError);
}

TEST(ArgParser, MissingValueIsFatal)
{
    ArgParser p = makeParser();
    const char *argv[] = {"prog", "--count"};
    EXPECT_THROW(p.parse(2, argv), FatalError);
}

TEST(ArgParser, BadIntegerIsFatal)
{
    ArgParser p = makeParser();
    const char *argv[] = {"prog", "--count=abc"};
    ASSERT_TRUE(p.parse(2, argv));
    EXPECT_THROW(p.getInt("count"), FatalError);
}

TEST(ArgParser, TrailingJunkIsFatal)
{
    ArgParser p = makeParser();
    const char *argv[] = {"prog", "--count=12xyz"};
    ASSERT_TRUE(p.parse(2, argv));
    EXPECT_THROW(p.getInt("count"), FatalError);
}

TEST(ArgParser, HexIntegersAccepted)
{
    ArgParser p = makeParser();
    const char *argv[] = {"prog", "--count=0x10"};
    ASSERT_TRUE(p.parse(2, argv));
    EXPECT_EQ(p.getInt("count"), 16);
}

TEST(ArgParser, UintRejectsNegative)
{
    ArgParser p = makeParser();
    const char *argv[] = {"prog", "--count=-5"};
    ASSERT_TRUE(p.parse(2, argv));
    EXPECT_THROW(p.getUint("count"), FatalError);
}

TEST(ArgParser, HelpReturnsFalse)
{
    ArgParser p = makeParser();
    const char *argv[] = {"prog", "--help"};
    EXPECT_FALSE(p.parse(2, argv));
}

TEST(ArgParser, UsageMentionsFlags)
{
    ArgParser p = makeParser();
    std::string u = p.usage();
    EXPECT_NE(u.find("--count"), std::string::npos);
    EXPECT_NE(u.find("--verbose"), std::string::npos);
    EXPECT_NE(u.find("a number"), std::string::npos);
}

TEST(ArgParser, UnregisteredLookupPanics)
{
    ArgParser p = makeParser();
    const char *argv[] = {"prog"};
    ASSERT_TRUE(p.parse(1, argv));
    EXPECT_THROW(p.getString("nope"), PanicError);
}

} // namespace
} // namespace assoc
