/**
 * @file
 * LEB128 varint + zigzag tests: round trips across the full range,
 * exact encoded lengths, and — because these bytes arrive from
 * possibly corrupted trace files — the defensive decode contract:
 * never read past the bound, reject truncated and over-long
 * encodings with 0 instead of wrapping silently.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "util/rng.h"
#include "util/varint.h"

namespace assoc {
namespace {

TEST(Zigzag, MapsSmallMagnitudesToSmallNumbers)
{
    EXPECT_EQ(zigzagEncode32(0), 0u);
    EXPECT_EQ(zigzagEncode32(-1), 1u);
    EXPECT_EQ(zigzagEncode32(1), 2u);
    EXPECT_EQ(zigzagEncode32(-2), 3u);
    EXPECT_EQ(zigzagEncode32(2), 4u);
    EXPECT_EQ(zigzagEncode32(INT32_MAX), 0xFFFFFFFEu);
    EXPECT_EQ(zigzagEncode32(INT32_MIN), 0xFFFFFFFFu);
}

TEST(Zigzag, RoundTripsEverywhere)
{
    for (std::int32_t v : {0, 1, -1, 2, -2, 12345, -12345,
                           INT32_MAX, INT32_MIN, INT32_MAX - 1,
                           INT32_MIN + 1})
        EXPECT_EQ(zigzagDecode32(zigzagEncode32(v)), v) << v;
    Pcg32 rng(0x5A5A11u);
    for (int i = 0; i < 10000; ++i) {
        std::int32_t v = static_cast<std::int32_t>(rng.next());
        EXPECT_EQ(zigzagDecode32(zigzagEncode32(v)), v);
    }
}

TEST(Varint32, EncodedLengthsAreExact)
{
    std::uint8_t buf[kMaxVarint32Bytes];
    EXPECT_EQ(putVarint32(buf, 0), 1u);
    EXPECT_EQ(putVarint32(buf, 0x7F), 1u);
    EXPECT_EQ(putVarint32(buf, 0x80), 2u);
    EXPECT_EQ(putVarint32(buf, 0x3FFF), 2u);
    EXPECT_EQ(putVarint32(buf, 0x4000), 3u);
    EXPECT_EQ(putVarint32(buf, 0x1FFFFF), 3u);
    EXPECT_EQ(putVarint32(buf, 0x200000), 4u);
    EXPECT_EQ(putVarint32(buf, 0x0FFFFFFF), 4u);
    EXPECT_EQ(putVarint32(buf, 0x10000000), 5u);
    EXPECT_EQ(putVarint32(buf, 0xFFFFFFFFu), 5u);
}

TEST(Varint32, RoundTripsRandomValues)
{
    Pcg32 rng(0x7A717Au);
    std::uint8_t buf[kMaxVarint32Bytes];
    for (int i = 0; i < 10000; ++i) {
        // Bias toward small values (the common delta case) while
        // still exercising all five lengths.
        std::uint32_t v = rng.next() >> (rng.next() % 32);
        std::size_t n = putVarint32(buf, v);
        std::uint32_t back = 0;
        EXPECT_EQ(getVarint32(buf, n, back), n);
        EXPECT_EQ(back, v);
    }
}

TEST(Varint32, TruncatedInputIsRejected)
{
    std::uint8_t buf[kMaxVarint32Bytes];
    std::size_t n = putVarint32(buf, 0xFFFFFFFFu);
    ASSERT_EQ(n, 5u);
    std::uint32_t out = 0;
    for (std::size_t len = 0; len < n; ++len)
        EXPECT_EQ(getVarint32(buf, len, out), 0u)
            << "decoded from only " << len << " bytes";
    // Zero-length input cannot yield a value either.
    EXPECT_EQ(getVarint32(buf, 0, out), 0u);
}

TEST(Varint32, OverlongAndOverflowingEncodingsAreRejected)
{
    std::uint32_t out = 0;
    // Five continuation bytes: no terminator within the 32-bit max.
    const std::uint8_t runaway[6] = {0x80, 0x80, 0x80, 0x80,
                                     0x80, 0x01};
    EXPECT_EQ(getVarint32(runaway, 6, out), 0u);
    // A 5th byte carrying bits above bit 34 would overflow.
    const std::uint8_t overflow[5] = {0xFF, 0xFF, 0xFF, 0xFF, 0x7F};
    EXPECT_EQ(getVarint32(overflow, 5, out), 0u);
    // The largest legal 5-byte encoding still decodes.
    const std::uint8_t max[5] = {0xFF, 0xFF, 0xFF, 0xFF, 0x0F};
    EXPECT_EQ(getVarint32(max, 5, out), 5u);
    EXPECT_EQ(out, 0xFFFFFFFFu);
}

TEST(Varint32, DecoderNeverReadsPastTheBound)
{
    // Place a varint at the end of a buffer and hand the decoder
    // exactly its bytes; sanitizer builds catch any overrun.
    std::vector<std::uint8_t> tail(3);
    std::uint8_t tmp[kMaxVarint32Bytes];
    std::size_t n = putVarint32(tmp, 0x3FFF); // 2-byte encoding
    ASSERT_LE(n, tail.size());
    std::copy(tmp, tmp + n, tail.end() - static_cast<long>(n));
    std::uint32_t out = 0;
    EXPECT_EQ(getVarint32(tail.data() + (tail.size() - n), n, out), n);
    EXPECT_EQ(out, 0x3FFFu);
}

} // namespace
} // namespace assoc
