#include <gtest/gtest.h>

#include "util/histogram.h"

namespace assoc {
namespace {

TEST(Histogram, StartsEmpty)
{
    Histogram h(4);
    EXPECT_EQ(h.total(), 0u);
    EXPECT_EQ(h.overflow(), 0u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
    for (std::size_t i = 0; i < 4; ++i)
        EXPECT_EQ(h.count(i), 0u);
}

TEST(Histogram, CountsExactBuckets)
{
    Histogram h(4);
    h.record(0);
    h.record(1);
    h.record(1);
    h.record(3);
    EXPECT_EQ(h.count(0), 1u);
    EXPECT_EQ(h.count(1), 2u);
    EXPECT_EQ(h.count(2), 0u);
    EXPECT_EQ(h.count(3), 1u);
    EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, OverflowBucket)
{
    Histogram h(2);
    h.record(5);
    h.record(2);
    h.record(1);
    EXPECT_EQ(h.overflow(), 2u);
    EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, FractionsSumToOne)
{
    Histogram h(8);
    for (std::uint64_t v = 0; v < 8; ++v)
        for (std::uint64_t j = 0; j <= v; ++j)
            h.record(v);
    double sum = 0;
    for (std::size_t i = 0; i < 8; ++i)
        sum += h.fraction(i);
    EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(Histogram, MeanIncludesOverflow)
{
    Histogram h(2);
    h.record(0);
    h.record(10);
    EXPECT_DOUBLE_EQ(h.mean(), 5.0);
}

TEST(Histogram, ResetClearsCountsKeepsShape)
{
    Histogram h(3);
    h.record(1);
    h.record(7);
    h.reset();
    EXPECT_EQ(h.total(), 0u);
    EXPECT_EQ(h.overflow(), 0u);
    EXPECT_EQ(h.size(), 3u);
    EXPECT_EQ(h.count(1), 0u);
}

TEST(Histogram, OutOfRangeBucketThrows)
{
    Histogram h(2);
    EXPECT_THROW(h.count(2), std::out_of_range);
    EXPECT_THROW(h.fraction(5), std::out_of_range);
}

} // namespace
} // namespace assoc
