// Unit tests for atomic result-file writes (util/atomic_file.h):
// contents land complete, the temp never survives, existing files
// are replaced whole, and failures leave the previous version
// untouched.

#include "util/atomic_file.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <unistd.h>

#include <gtest/gtest.h>

namespace assoc {
namespace {

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

bool
exists(const std::string &path)
{
    std::ifstream in(path);
    return in.good();
}

class AtomicFileTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        path_ = ::testing::TempDir() + "atomic_file_test_" +
                ::testing::UnitTest::GetInstance()
                    ->current_test_info()
                    ->name();
        std::remove(path_.c_str());
    }

    void TearDown() override { std::remove(path_.c_str()); }

    std::string path_;
};

TEST_F(AtomicFileTest, WritesContentToFreshFile)
{
    Expected<void> ok = writeFileAtomic(
        path_, [](std::ostream &os) { os << "hello\nworld\n"; });
    ASSERT_TRUE(ok.ok()) << ok.error().text();
    EXPECT_EQ(slurp(path_), "hello\nworld\n");
}

TEST_F(AtomicFileTest, ReplacesExistingFileWhole)
{
    ASSERT_TRUE(writeFileAtomic(path_, [](std::ostream &os) {
                    os << "a much longer first version\n";
                }).ok());
    ASSERT_TRUE(writeFileAtomic(path_, [](std::ostream &os) {
                    os << "short\n";
                }).ok());
    EXPECT_EQ(slurp(path_), "short\n");
}

TEST_F(AtomicFileTest, LeavesNoTempBehind)
{
    ASSERT_TRUE(writeFileAtomic(path_, [](std::ostream &os) {
                    os << "x";
                }).ok());
    // The temp is "<path>.tmp.<pid>"; probing with our own pid is
    // exact since the writer ran in this process.
    std::string temp =
        path_ + ".tmp." + std::to_string(::getpid());
    EXPECT_FALSE(exists(temp));
}

TEST_F(AtomicFileTest, WriterExceptionLeavesOldVersionIntact)
{
    ASSERT_TRUE(writeFileAtomic(path_, [](std::ostream &os) {
                    os << "golden\n";
                }).ok());
    EXPECT_THROW(writeFileAtomic(path_,
                                 [](std::ostream &) -> void {
                                     throw std::runtime_error(
                                         "mid-write crash");
                                 }),
                 std::runtime_error);
    // The half-written temp is cleaned up; the target still holds
    // the previous version.
    EXPECT_EQ(slurp(path_), "golden\n");
    std::string temp =
        path_ + ".tmp." + std::to_string(::getpid());
    EXPECT_FALSE(exists(temp));
}

TEST_F(AtomicFileTest, UnwritableDirectoryReportsIoError)
{
    Expected<void> r = writeFileAtomic(
        "/nonexistent-dir-for-sure/out.json",
        [](std::ostream &os) { os << "x"; });
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().code(), ErrorCode::Io);
}

} // namespace
} // namespace assoc
