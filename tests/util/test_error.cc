#include <gtest/gtest.h>

#include <csignal>

#include "util/cancel.h"
#include "util/error.h"

namespace assoc {
namespace {

TEST(Error, DefaultIsOk)
{
    Error e;
    EXPECT_TRUE(e.ok());
    EXPECT_FALSE(e.failed());
    EXPECT_EQ(e.code(), ErrorCode::None);
    EXPECT_FALSE(e.transient());
}

TEST(Error, FactoriesSetTheCode)
{
    EXPECT_EQ(Error::usage("u").code(), ErrorCode::Usage);
    EXPECT_EQ(Error::data("d").code(), ErrorCode::Data);
    EXPECT_EQ(Error::io("i").code(), ErrorCode::Io);
    EXPECT_EQ(Error::cancelled("c").code(), ErrorCode::Cancelled);
    EXPECT_EQ(Error::internal("b").code(), ErrorCode::Internal);
}

TEST(Error, OnlyIoIsTransient)
{
    EXPECT_TRUE(Error::io("i").transient());
    EXPECT_FALSE(Error::usage("u").transient());
    EXPECT_FALSE(Error::data("d").transient());
    EXPECT_FALSE(Error::cancelled("c").transient());
    EXPECT_FALSE(Error::internal("b").transient());
}

TEST(Error, TextRendersCodeMessageAndContext)
{
    Error e = Error::data("bad record");
    e.withContext("reading line 7").withContext("streaming t.din");
    EXPECT_EQ(e.text(),
              "data error: bad record [while reading line 7; "
              "while streaming t.din]");
}

TEST(Error, TextWithoutContextIsJustCodeAndMessage)
{
    EXPECT_EQ(Error::io("disk on fire").text(),
              "io error: disk on fire");
}

TEST(Error, ContextIsInnermostFirst)
{
    Error e = Error::data("x");
    e.withContext("inner");
    e.withContext("outer");
    ASSERT_EQ(e.context().size(), 2u);
    EXPECT_EQ(e.context()[0], "inner");
    EXPECT_EQ(e.context()[1], "outer");
}

TEST(Error, ExitCodeConvention)
{
    EXPECT_EQ(exitCode(ErrorCode::None), 0);
    EXPECT_EQ(exitCode(ErrorCode::Usage), 1);
    EXPECT_EQ(exitCode(ErrorCode::Data), 2);
    EXPECT_EQ(exitCode(ErrorCode::Io), 2);
    EXPECT_EQ(exitCode(ErrorCode::Cancelled), 130);
    EXPECT_EQ(exitCode(ErrorCode::Overloaded), 5);
    EXPECT_EQ(exitCode(ErrorCode::Internal), 3);
}

TEST(Error, OverloadedIsItsOwnRetryableClass)
{
    Error e = Error::overloaded("tenant over quota");
    EXPECT_EQ(e.code(), ErrorCode::Overloaded);
    // Not "transient" in the Io sense — clients back off on the
    // code itself (util/backoff.h), not on transient().
    EXPECT_FALSE(e.transient());
    EXPECT_EQ(e.text(), "overloaded error: tenant over quota");
}

TEST(Error, CodeNames)
{
    EXPECT_STREQ(errorCodeName(ErrorCode::None), "ok");
    EXPECT_STREQ(errorCodeName(ErrorCode::Usage), "usage");
    EXPECT_STREQ(errorCodeName(ErrorCode::Data), "data");
    EXPECT_STREQ(errorCodeName(ErrorCode::Io), "io");
    EXPECT_STREQ(errorCodeName(ErrorCode::Cancelled), "cancelled");
    EXPECT_STREQ(errorCodeName(ErrorCode::Overloaded), "overloaded");
    EXPECT_STREQ(errorCodeName(ErrorCode::Internal), "internal");
}

TEST(ErrorException, IsAFatalErrorAndCarriesTheError)
{
    try {
        throwError(Error::data("boom").withContext("ctx"));
        FAIL() << "throwError returned";
    } catch (const FatalError &e) {
        // Legacy catch sites still work ...
        const auto *ee = dynamic_cast<const ErrorException *>(&e);
        ASSERT_NE(ee, nullptr);
        // ... and the structured error survives the trip.
        EXPECT_EQ(ee->error().code(), ErrorCode::Data);
        EXPECT_EQ(ee->error().message(), "boom");
        EXPECT_EQ(std::string(e.what()),
                  "data error: boom [while ctx]");
    }
}

TEST(Expected, HoldsAValue)
{
    Expected<int> v(42);
    ASSERT_TRUE(v.ok());
    EXPECT_TRUE(static_cast<bool>(v));
    EXPECT_EQ(v.value(), 42);
    EXPECT_EQ(v.take(), 42);
}

TEST(Expected, HoldsAnError)
{
    Expected<int> v(Error::usage("nope"));
    EXPECT_FALSE(v.ok());
    EXPECT_EQ(v.error().code(), ErrorCode::Usage);
    EXPECT_EQ(v.error().message(), "nope");
}

TEST(ErrorMode, ParsesAllSpellings)
{
    EXPECT_EQ(errorModeFromString("fail-fast").value(),
              ErrorMode::FailFast);
    EXPECT_EQ(errorModeFromString("failfast").value(),
              ErrorMode::FailFast);
    EXPECT_EQ(errorModeFromString("skip").value(), ErrorMode::Skip);
    EXPECT_EQ(errorModeFromString("strict").value(),
              ErrorMode::Strict);
    Expected<ErrorMode> bad = errorModeFromString("explode");
    ASSERT_FALSE(bad.ok());
    EXPECT_EQ(bad.error().code(), ErrorCode::Usage);
}

TEST(GuardedMain, MapsOutcomesToExitCodes)
{
    EXPECT_EQ(guardedMain("t", []() -> int { return 0; }), 0);
    EXPECT_EQ(guardedMain("t", []() -> int { return 7; }), 7);
    EXPECT_EQ(guardedMain("t",
                          []() -> int {
                              throwError(Error::data("d"));
                          }),
              2);
    EXPECT_EQ(guardedMain("t",
                          []() -> int {
                              throwError(Error::cancelled("c"));
                          }),
              130);
    EXPECT_EQ(guardedMain("t",
                          []() -> int {
                              fatal("old-style fatal");
                              return 0;
                          }),
              1);
    EXPECT_EQ(guardedMain("t",
                          []() -> int {
                              panic("bug");
                              return 0;
                          }),
              3);
    EXPECT_EQ(guardedMain("t",
                          []() -> int {
                              throw std::runtime_error("other");
                          }),
              3);
    EXPECT_EQ(guardedMain("t",
                          []() -> int {
                              throwError(
                                  Error::overloaded("shed"));
                          }),
              5);
}

TEST(GuardedMain, DeliveredSignalSetsTheShellExitCode)
{
    installSigintHandler();
    clearSigintForTests();
    std::raise(SIGTERM);
    // A drain-and-exit after SIGTERM unwinds as Cancelled; the
    // process must report 128+15 = 143 (130 stays for plain ^C).
    EXPECT_EQ(guardedMain("t",
                          []() -> int {
                              throwError(
                                  Error::cancelled("draining"));
                          }),
              128 + kSigtermSignal);
    clearSigintForTests();
    EXPECT_EQ(guardedMain("t",
                          []() -> int {
                              throwError(
                                  Error::cancelled("plain"));
                          }),
              130);
}

} // namespace
} // namespace assoc
