#include <gtest/gtest.h>

#include "util/stats.h"

namespace assoc {
namespace {

TEST(MeanAccum, EmptyMeanIsZero)
{
    MeanAccum m;
    EXPECT_DOUBLE_EQ(m.mean(), 0.0);
    EXPECT_EQ(m.count(), 0u);
}

TEST(MeanAccum, SimpleMean)
{
    MeanAccum m;
    m.record(1.0);
    m.record(2.0);
    m.record(6.0);
    EXPECT_DOUBLE_EQ(m.mean(), 3.0);
    EXPECT_EQ(m.count(), 3u);
    EXPECT_DOUBLE_EQ(m.sum(), 9.0);
}

TEST(MeanAccum, WeightedRecord)
{
    MeanAccum m;
    m.record(2.0, 3);
    m.record(10.0, 1);
    EXPECT_DOUBLE_EQ(m.mean(), 4.0);
    EXPECT_EQ(m.count(), 4u);
}

TEST(MeanAccum, MergeCombinesStreams)
{
    MeanAccum a, b;
    a.record(1.0);
    a.record(3.0);
    b.record(5.0);
    b.record(7.0);
    a.merge(b);
    EXPECT_DOUBLE_EQ(a.mean(), 4.0);
    EXPECT_EQ(a.count(), 4u);
}

TEST(MeanAccum, MergeWithEmptyIsIdentity)
{
    MeanAccum a, b;
    a.record(2.5);
    a.merge(b);
    EXPECT_DOUBLE_EQ(a.mean(), 2.5);
    EXPECT_EQ(a.count(), 1u);
}

TEST(MeanAccum, ResetClears)
{
    MeanAccum m;
    m.record(4.0);
    m.reset();
    EXPECT_EQ(m.count(), 0u);
    EXPECT_DOUBLE_EQ(m.mean(), 0.0);
}

TEST(MeanAccum, VarianceOfConstantIsZero)
{
    MeanAccum m;
    for (int i = 0; i < 10; ++i)
        m.record(3.0);
    EXPECT_DOUBLE_EQ(m.variance(), 0.0);
    EXPECT_DOUBLE_EQ(m.stddev(), 0.0);
}

TEST(MeanAccum, VarianceMatchesHandComputation)
{
    MeanAccum m;
    m.record(2.0);
    m.record(4.0);
    m.record(4.0);
    m.record(4.0);
    m.record(5.0);
    m.record(5.0);
    m.record(7.0);
    m.record(9.0);
    // The classic example: mean 5, population variance 4.
    EXPECT_DOUBLE_EQ(m.mean(), 5.0);
    EXPECT_DOUBLE_EQ(m.variance(), 4.0);
    EXPECT_DOUBLE_EQ(m.stddev(), 2.0);
}

TEST(MeanAccum, EmptyVarianceIsZero)
{
    MeanAccum m;
    EXPECT_DOUBLE_EQ(m.variance(), 0.0);
}

TEST(MeanAccum, MergePreservesVariance)
{
    MeanAccum a, b, whole;
    for (double v : {1.0, 2.0, 3.0}) {
        a.record(v);
        whole.record(v);
    }
    for (double v : {10.0, 11.0}) {
        b.record(v);
        whole.record(v);
    }
    a.merge(b);
    EXPECT_DOUBLE_EQ(a.variance(), whole.variance());
}

TEST(MeanAccum, WeightedRecordAffectsVariance)
{
    MeanAccum a, b;
    a.record(2.0, 3);
    a.record(8.0, 1);
    for (double v : {2.0, 2.0, 2.0, 8.0})
        b.record(v);
    EXPECT_DOUBLE_EQ(a.variance(), b.variance());
}

TEST(RatioAccum, EmptyRatioIsZero)
{
    RatioAccum r;
    EXPECT_DOUBLE_EQ(r.ratio(), 0.0);
}

TEST(RatioAccum, CountsHitsAndMisses)
{
    RatioAccum r;
    r.record(true);
    r.record(false);
    r.record(true);
    r.record(true);
    EXPECT_EQ(r.hits(), 3u);
    EXPECT_EQ(r.misses(), 1u);
    EXPECT_EQ(r.tries(), 4u);
    EXPECT_DOUBLE_EQ(r.ratio(), 0.75);
}

TEST(RatioAccum, ResetClears)
{
    RatioAccum r;
    r.record(true);
    r.reset();
    EXPECT_EQ(r.tries(), 0u);
    EXPECT_DOUBLE_EQ(r.ratio(), 0.0);
}

} // namespace
} // namespace assoc
