/**
 * @file
 * CRC32C known-answer and algebraic-property tests. The ftr trace
 * format trusts this checksum to catch corruption, so the
 * implementation is pinned to the published Castagnoli values and to
 * the streaming identity (piecewise == one-shot) the frame
 * verifier relies on.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "util/crc32c.h"
#include "util/rng.h"

namespace assoc {
namespace {

TEST(Crc32c, StandardTestVector)
{
    // The check value every CRC32C implementation must reproduce.
    const char *s = "123456789";
    EXPECT_EQ(crc32c(s, 9), 0xE3069283u);
}

TEST(Crc32c, PublishedKnownAnswers)
{
    // RFC 3720 appendix B.4 test patterns.
    std::vector<std::uint8_t> zeros(32, 0x00);
    EXPECT_EQ(crc32c(zeros.data(), zeros.size()), 0x8A9136AAu);
    std::vector<std::uint8_t> ones(32, 0xFF);
    EXPECT_EQ(crc32c(ones.data(), ones.size()), 0x62A8AB43u);
    std::vector<std::uint8_t> inc(32);
    for (std::size_t i = 0; i < inc.size(); ++i)
        inc[i] = static_cast<std::uint8_t>(i);
    EXPECT_EQ(crc32c(inc.data(), inc.size()), 0x46DD794Eu);
}

TEST(Crc32c, EmptyInputIsZero)
{
    EXPECT_EQ(crc32c(nullptr, 0), 0u);
    EXPECT_EQ(crc32c(0xDEADBEEFu, nullptr, 0), 0xDEADBEEFu);
}

TEST(Crc32c, StreamingMatchesOneShot)
{
    // Frame verification checksums header and payload piecewise;
    // any split must agree with the one-shot value.
    Pcg32 rng(0xC5C32Cu);
    std::vector<std::uint8_t> data(4096);
    for (std::uint8_t &b : data)
        b = static_cast<std::uint8_t>(rng.next());
    const std::uint32_t whole = crc32c(data.data(), data.size());
    for (std::size_t cut : {std::size_t(0), std::size_t(1),
                            std::size_t(7), std::size_t(4095),
                            std::size_t(4096)}) {
        std::uint32_t c = crc32c(data.data(), cut);
        c = crc32c(c, data.data() + cut, data.size() - cut);
        EXPECT_EQ(c, whole) << "split at " << cut;
    }
}

TEST(Crc32c, EverySingleBitFlipChangesTheSum)
{
    // The whole point of framing: a one-bit error never passes.
    std::vector<std::uint8_t> data(64);
    for (std::size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<std::uint8_t>(i * 37 + 11);
    const std::uint32_t clean = crc32c(data.data(), data.size());
    for (std::size_t byte = 0; byte < data.size(); ++byte) {
        for (int bit = 0; bit < 8; ++bit) {
            data[byte] ^= static_cast<std::uint8_t>(1u << bit);
            EXPECT_NE(crc32c(data.data(), data.size()), clean)
                << "flip at byte " << byte << " bit " << bit;
            data[byte] ^= static_cast<std::uint8_t>(1u << bit);
        }
    }
}

} // namespace
} // namespace assoc
