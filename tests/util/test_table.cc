#include <gtest/gtest.h>

#include <sstream>

#include "util/table.h"

namespace assoc {
namespace {

TEST(TextTable, NumFormatsDoubles)
{
    EXPECT_EQ(TextTable::num(1.2345, 2), "1.23");
    EXPECT_EQ(TextTable::num(1.2355, 3), "1.236");
    EXPECT_EQ(TextTable::num(2.0, 0), "2");
}

TEST(TextTable, NumFormatsIntegers)
{
    EXPECT_EQ(TextTable::num(std::uint64_t{42}), "42");
    EXPECT_EQ(TextTable::num(std::uint64_t{0}), "0");
}

TEST(TextTable, TextFormatAlignsColumns)
{
    TextTable t;
    t.setHeader({"a", "bb"});
    t.addRow({"xxx", "y"});
    std::string s = t.toString();
    // Header, rule, one data row.
    EXPECT_NE(s.find("a"), std::string::npos);
    EXPECT_NE(s.find("---"), std::string::npos);
    EXPECT_NE(s.find("xxx"), std::string::npos);
    // Columns align: "bb" and "y" start at the same offset.
    std::istringstream iss(s);
    std::string l1, l2, l3;
    std::getline(iss, l1);
    std::getline(iss, l2);
    std::getline(iss, l3);
    EXPECT_EQ(l1.find("bb"), l3.find("y"));
}

TEST(TextTable, CsvFormat)
{
    TextTable t;
    t.setHeader({"x", "y"});
    t.addRow({"1", "2"});
    t.addRow({"3", "4"});
    EXPECT_EQ(t.toString(TextTable::Format::Csv), "x,y\n1,2\n3,4\n");
}

TEST(TextTable, MarkdownFormat)
{
    TextTable t;
    t.setHeader({"x"});
    t.addRow({"1"});
    std::string s = t.toString(TextTable::Format::Markdown);
    EXPECT_EQ(s, "| x |\n|---|\n| 1 |\n");
}

TEST(TextTable, RaggedRowsArePadded)
{
    TextTable t;
    t.setHeader({"a", "b", "c"});
    t.addRow({"1"});
    EXPECT_EQ(t.toString(TextTable::Format::Csv), "a,b,c\n1,,\n");
}

TEST(TextTable, RulesOnlyAffectTextFormat)
{
    TextTable t;
    t.setHeader({"a"});
    t.addRow({"1"});
    t.addRule();
    t.addRow({"2"});
    EXPECT_EQ(t.rowCount(), 2u);
    EXPECT_EQ(t.toString(TextTable::Format::Csv), "a\n1\n2\n");
    std::string text = t.toString();
    // Two rules: one under the header, one added explicitly.
    std::size_t first = text.find("---");
    ASSERT_NE(first, std::string::npos);
    EXPECT_NE(text.find("---", first + 4), std::string::npos);
}

TEST(TextTable, EmptyTableRenders)
{
    TextTable t;
    EXPECT_EQ(t.toString(TextTable::Format::Csv), "");
    EXPECT_EQ(t.rowCount(), 0u);
}

TEST(TextTable, JsonFormatKeysRowsByHeader)
{
    TextTable t;
    t.setHeader({"Assoc", "Probes"});
    t.addRow({"4", "2.55"});
    t.addRow({"8", "3.10"});
    EXPECT_EQ(t.toString(TextTable::Format::Json),
              "[\n"
              "  {\"Assoc\": 4, \"Probes\": 2.55},\n"
              "  {\"Assoc\": 8, \"Probes\": 3.10}\n"
              "]\n");
}

TEST(TextTable, JsonFormatQuotesNonNumericCells)
{
    TextTable t;
    t.setHeader({"Config", "Best"});
    t.addRow({"16K-16 256K-32", "*2.55"});
    EXPECT_EQ(t.toString(TextTable::Format::Json),
              "[\n"
              "  {\"Config\": \"16K-16 256K-32\", "
              "\"Best\": \"*2.55\"}\n"
              "]\n");
}

TEST(TextTable, JsonFormatEscapesQuotesAndBackslashes)
{
    TextTable t;
    t.setHeader({"a\"b"});
    t.addRow({"x\\y"});
    EXPECT_EQ(t.toString(TextTable::Format::Json),
              "[\n  {\"a\\\"b\": \"x\\\\y\"}\n]\n");
}

TEST(TextTable, JsonFormatSynthesizesMissingHeaderKeys)
{
    TextTable t;
    t.addRow({"1", "two"});
    EXPECT_EQ(t.toString(TextTable::Format::Json),
              "[\n  {\"c0\": 1, \"c1\": \"two\"}\n]\n");
}

TEST(TextTable, JsonFormatSkipsRulesAndPadsRaggedRows)
{
    TextTable t;
    t.setHeader({"a", "b"});
    t.addRow({"1"});
    t.addRule();
    EXPECT_EQ(t.toString(TextTable::Format::Json),
              "[\n  {\"a\": 1, \"b\": \"\"}\n]\n");
}

} // namespace
} // namespace assoc
