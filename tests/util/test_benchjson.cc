#include <gtest/gtest.h>

#include "util/benchjson.h"

using namespace assoc;

namespace {

const char *kSample = R"({
  "context": {
    "date": "2026-08-05T00:00:00+00:00",
    "num_cpus": 8,
    "caches": [
      {"type": "Data", "level": 1, "size": 49152}
    ],
    "load_avg": [0.5, 0.25, 0.1]
  },
  "benchmarks": [
    {
      "name": "BM_CacheFindWay/4",
      "run_name": "BM_CacheFindWay/4",
      "run_type": "iteration",
      "iterations": 1000,
      "real_time": 15.5,
      "cpu_time": 15.4,
      "time_unit": "ns",
      "items_per_second": 6.5e7
    },
    {
      "name": "BM_EndToEndTrace",
      "run_type": "iteration",
      "real_time": 12.5,
      "cpu_time": 12.0,
      "time_unit": "ms"
    },
    {
      "name": "BM_CacheFindWay/4_mean",
      "run_type": "aggregate",
      "real_time": 15.6,
      "cpu_time": 15.5,
      "time_unit": "ns"
    }
  ]
})";

TEST(BenchJson, ParsesEntriesAndSkipsAggregates)
{
    std::vector<BenchEntry> entries;
    Error err = parseBenchJson(kSample, entries);
    ASSERT_TRUE(err.ok()) << err.text();
    ASSERT_EQ(entries.size(), 2u);
    EXPECT_EQ(entries[0].name, "BM_CacheFindWay/4");
    EXPECT_DOUBLE_EQ(entries[0].cpu_time, 15.4);
    EXPECT_EQ(entries[0].time_unit, "ns");
    EXPECT_EQ(entries[1].name, "BM_EndToEndTrace");
    EXPECT_EQ(entries[1].time_unit, "ms");
}

TEST(BenchJson, NormalizesTimeUnits)
{
    std::vector<BenchEntry> entries;
    ASSERT_TRUE(parseBenchJson(kSample, entries).ok());
    EXPECT_DOUBLE_EQ(benchTimeNs(entries[0], BenchMetric::CpuTime),
                     15.4);
    EXPECT_DOUBLE_EQ(benchTimeNs(entries[1], BenchMetric::CpuTime),
                     12.0 * 1e6);
    EXPECT_DOUBLE_EQ(benchTimeNs(entries[1], BenchMetric::RealTime),
                     12.5 * 1e6);
}

TEST(BenchJson, RejectsMalformedDocuments)
{
    std::vector<BenchEntry> entries;
    EXPECT_EQ(parseBenchJson("", entries).code(), ErrorCode::Data);
    EXPECT_EQ(parseBenchJson("[]", entries).code(), ErrorCode::Data);
    EXPECT_EQ(parseBenchJson("{\"context\": {}}", entries).code(),
              ErrorCode::Data); // no "benchmarks" array
    EXPECT_EQ(
        parseBenchJson("{\"benchmarks\": 3}", entries).code(),
        ErrorCode::Data);
    EXPECT_EQ(parseBenchJson("{\"benchmarks\": [{\"name\": ]}",
                             entries)
                  .code(),
              ErrorCode::Data);
}

TEST(BenchJson, ToleratesUnknownNestedFields)
{
    // A future benchmark library may nest arbitrary structures in
    // each entry; unknown values of any shape are skipped.
    std::vector<BenchEntry> entries;
    Error err = parseBenchJson(
        R"({"benchmarks": [
             {"name": "BM_X", "cpu_time": 2.0, "real_time": 3.0,
              "extra": {"deep": [1, {"k": null}, true]},
              "time_unit": "ns"}
           ]})",
        entries);
    ASSERT_TRUE(err.ok()) << err.text();
    ASSERT_EQ(entries.size(), 1u);
    EXPECT_DOUBLE_EQ(entries[0].cpu_time, 2.0);
}

TEST(BenchJson, CompareFlagsRegressionsAndNewBenchmarks)
{
    std::vector<BenchEntry> base{
        {"BM_A", "iteration", 10.0, 10.0, "ns"},
        {"BM_B", "iteration", 10.0, 10.0, "ns"},
        {"BM_Gone", "iteration", 5.0, 5.0, "ns"},
    };
    std::vector<BenchEntry> curr{
        {"BM_A", "iteration", 11.0, 11.0, "ns"},
        {"BM_B", "iteration", 25.0, 25.0, "ns"},
        {"BM_New", "iteration", 1.0, 1.0, "ns"},
    };
    BenchComparison cmp =
        compareBench(base, curr, BenchMetric::CpuTime);
    ASSERT_EQ(cmp.deltas.size(), 2u);
    EXPECT_DOUBLE_EQ(cmp.deltas[0].ratio, 1.1);
    EXPECT_DOUBLE_EQ(cmp.deltas[1].ratio, 2.5);
    EXPECT_EQ(cmp.worst_name, "BM_B");
    EXPECT_DOUBLE_EQ(cmp.worst_ratio, 2.5);
    ASSERT_EQ(cmp.missing.size(), 1u);
    EXPECT_EQ(cmp.missing[0], "BM_Gone");
    ASSERT_EQ(cmp.added.size(), 1u);
    EXPECT_EQ(cmp.added[0], "BM_New");
}

TEST(BenchJson, FilterKeepsOnlyMatchingNamesInOrder)
{
    std::vector<BenchEntry> entries{
        {"BM_TraditionalLookup/4", "iteration", 1.0, 1.0, "ns"},
        {"BM_CacheFindWay/4", "iteration", 2.0, 2.0, "ns"},
        {"BM_PartialLookup/16", "iteration", 3.0, 3.0, "ns"},
        {"BM_KernelEqMask_avx2/8", "iteration", 4.0, 4.0, "ns"},
    };
    std::vector<BenchEntry> lookups =
        filterBenchEntries(entries, "Lookup");
    ASSERT_EQ(lookups.size(), 2u);
    EXPECT_EQ(lookups[0].name, "BM_TraditionalLookup/4");
    EXPECT_EQ(lookups[1].name, "BM_PartialLookup/16");

    EXPECT_EQ(filterBenchEntries(entries, "").size(),
              entries.size());
    EXPECT_TRUE(filterBenchEntries(entries, "NoSuchName").empty());
}

TEST(BenchJson, FilteredCompareFeedsTheSpeedupGate)
{
    // bench_compare's --filter + --min-speedup path: compare only
    // the Lookup family and read each delta's speedup as 1/ratio.
    std::vector<BenchEntry> base{
        {"BM_PartialLookup/8", "iteration", 250.0, 250.0, "ns"},
        {"BM_CacheFillEvict", "iteration", 30.0, 30.0, "ns"},
    };
    std::vector<BenchEntry> curr{
        {"BM_PartialLookup/8", "iteration", 50.0, 50.0, "ns"},
        {"BM_CacheFillEvict", "iteration", 31.0, 31.0, "ns"},
    };
    BenchComparison cmp = compareBench(
        filterBenchEntries(base, "Lookup"),
        filterBenchEntries(curr, "Lookup"), BenchMetric::CpuTime);
    ASSERT_EQ(cmp.deltas.size(), 1u);
    EXPECT_EQ(cmp.deltas[0].name, "BM_PartialLookup/8");
    EXPECT_DOUBLE_EQ(cmp.deltas[0].ratio, 0.2);
    EXPECT_GE(1.0 / cmp.deltas[0].ratio, 2.0);
}

TEST(BenchJson, LoadReportsIoErrorForMissingFile)
{
    std::vector<BenchEntry> entries;
    Error err =
        loadBenchJson("/nonexistent/bench.json", entries);
    EXPECT_EQ(err.code(), ErrorCode::Io);
}

} // namespace
