#include <gtest/gtest.h>

#include "core/partial_lookup.h"
#include "core/swap_mru_lookup.h"
#include "core/wide_lookup.h"
#include "sim/config_parse.h"
#include "util/logging.h"

namespace assoc {
namespace sim {
namespace {

TEST(ParseSize, SuffixesAndPlainBytes)
{
    EXPECT_EQ(parseSize("4096"), 4096u);
    EXPECT_EQ(parseSize("16K"), 16384u);
    EXPECT_EQ(parseSize("16k"), 16384u);
    EXPECT_EQ(parseSize("1M"), 1048576u);
    EXPECT_EQ(parseSize("2m"), 2097152u);
}

TEST(ParseSize, RejectsJunk)
{
    EXPECT_THROW(parseSize(""), FatalError);
    EXPECT_THROW(parseSize("K"), FatalError);
    EXPECT_THROW(parseSize("12Q"), FatalError);
    EXPECT_THROW(parseSize("1.5K"), FatalError);
    EXPECT_THROW(parseSize("999999M"), FatalError);
}

TEST(ParseCacheSpec, PaperNotation)
{
    mem::CacheGeometry g = parseCacheSpec("256K-32:4");
    EXPECT_EQ(g.sizeBytes(), 262144u);
    EXPECT_EQ(g.blockBytes(), 32u);
    EXPECT_EQ(g.assoc(), 4u);

    mem::CacheGeometry dm = parseCacheSpec("16K-16");
    EXPECT_EQ(dm.assoc(), 1u);
    EXPECT_EQ(dm.name(), "16K-16");
}

TEST(ParseCacheSpec, RejectsMalformedSpecs)
{
    EXPECT_THROW(parseCacheSpec("256K"), FatalError);
    EXPECT_THROW(parseCacheSpec("256K-32:4:2"), FatalError);
    EXPECT_THROW(parseCacheSpec("256K-32-4"), FatalError);
    EXPECT_THROW(parseCacheSpec("abc-32"), FatalError);
    // Geometry validation still applies (non-pow2 associativity).
    EXPECT_THROW(parseCacheSpec("256K-32:3"), FatalError);
}

TEST(ParseCacheSpec, TruncatedAndEmptyFields)
{
    // Every malformed shape must land in fatal()'s documented
    // FatalError, never in UB or a bogus geometry.
    EXPECT_THROW(parseCacheSpec(""), FatalError);
    EXPECT_THROW(parseCacheSpec("256K-"), FatalError);
    EXPECT_THROW(parseCacheSpec("-32"), FatalError);
    EXPECT_THROW(parseCacheSpec("K-32:4"), FatalError);
    EXPECT_THROW(parseCacheSpec("256K-32:"), FatalError);
    EXPECT_THROW(parseCacheSpec(":4"), FatalError);
    EXPECT_THROW(parseCacheSpec("-"), FatalError);
}

TEST(ParseCacheSpec, ZeroAndOverflowSizes)
{
    EXPECT_THROW(parseCacheSpec("0-32:4"), FatalError);
    EXPECT_THROW(parseCacheSpec("256K-0:4"), FatalError);
    EXPECT_THROW(parseCacheSpec("256K-32:0"), FatalError);
    // 2^32 bytes and beyond cannot be a 32-bit geometry.
    EXPECT_THROW(parseCacheSpec("4294967296-32:4"), FatalError);
    EXPECT_THROW(parseCacheSpec("4194304K-32:4"), FatalError);
    EXPECT_THROW(parseCacheSpec("4096M-32:4"), FatalError);
    // Unknown unit suffix.
    EXPECT_THROW(parseCacheSpec("16G-32:4"), FatalError);
    // Blocks below the 4-byte minimum.
    EXPECT_THROW(parseCacheSpec("256K-2:4"), FatalError);
    // More ways than frames.
    EXPECT_THROW(parseCacheSpec("64-16:8"), FatalError);
}

TEST(ParseSchemeList, BasicNames)
{
    auto schemes =
        parseSchemeList("traditional,naive,mru,partial", 4, 16);
    ASSERT_EQ(schemes.size(), 4u);
    EXPECT_EQ(schemes[0].spec.kind, core::SchemeKind::Traditional);
    EXPECT_EQ(schemes[1].spec.kind, core::SchemeKind::Naive);
    EXPECT_EQ(schemes[2].spec.kind, core::SchemeKind::Mru);
    EXPECT_EQ(schemes[3].spec.kind, core::SchemeKind::Partial);
    // "partial" follows the paper rule at a = 4, t = 16.
    EXPECT_EQ(schemes[3].spec.partial_k, 4u);
    EXPECT_EQ(schemes[3].spec.partial_subsets, 1u);
}

TEST(ParseSchemeList, MruListLength)
{
    auto schemes = parseSchemeList("mru:2", 8, 16);
    ASSERT_EQ(schemes.size(), 1u);
    EXPECT_EQ(schemes[0].spec.mru_list_len, 2u);
}

TEST(ParseSchemeList, PartialOptions)
{
    auto schemes =
        parseSchemeList("partial:k=2;s=4;tr=improved", 8, 16);
    ASSERT_EQ(schemes.size(), 1u);
    EXPECT_EQ(schemes[0].spec.partial_k, 2u);
    EXPECT_EQ(schemes[0].spec.partial_subsets, 4u);
    EXPECT_EQ(schemes[0].spec.transform,
              core::TransformKind::Improved);
}

TEST(ParseSchemeList, ExtraStrategies)
{
    auto schemes =
        parseSchemeList("swapmru,widenaive:2,widemru:4", 8, 16);
    ASSERT_EQ(schemes.size(), 3u);
    EXPECT_NE(dynamic_cast<core::SwapMruLookup *>(
                  schemes[0].makeStrategy().get()),
              nullptr);
    auto wn = schemes[1].makeStrategy();
    auto *wide = dynamic_cast<core::WideNaiveLookup *>(wn.get());
    ASSERT_NE(wide, nullptr);
    EXPECT_EQ(wide->width(), 2u);
    auto wm = schemes[2].makeStrategy();
    auto *widem = dynamic_cast<core::WideMruLookup *>(wm.get());
    ASSERT_NE(widem, nullptr);
    EXPECT_EQ(widem->width(), 4u);
}

TEST(ParseSchemeList, WayMemoDefaultsAndOptions)
{
    // Bare "waymemo": per-block, 64 tagged entries, traditional
    // underlying (the header's documented defaults).
    auto schemes = parseSchemeList("waymemo,waypredict", 4, 16);
    ASSERT_EQ(schemes.size(), 2u);
    EXPECT_EQ(schemes[0].spec.kind, core::SchemeKind::WayMemo);
    EXPECT_EQ(schemes[0].spec.memo_entries, 64u);
    EXPECT_EQ(schemes[0].spec.memo_region_bits, 0u);
    EXPECT_TRUE(schemes[0].spec.memo_tagged);
    EXPECT_EQ(schemes[0].spec.memo_underlying,
              core::SchemeKind::Traditional);
    EXPECT_EQ(schemes[1].spec.kind, core::SchemeKind::WayPredict);

    auto full = parseSchemeList("waymemo:e=128;r=2;tag=0;u=mru",
                                4, 16);
    EXPECT_EQ(full[0].spec.memo_entries, 128u);
    EXPECT_EQ(full[0].spec.memo_region_bits, 2u);
    EXPECT_FALSE(full[0].spec.memo_tagged);
    EXPECT_EQ(full[0].spec.memo_underlying, core::SchemeKind::Mru);

    // A partial underlying pulls the paper's (k, s) parameters for
    // the given associativity and tag width.
    auto part = parseSchemeList("waymemo:u=partial", 4, 16);
    EXPECT_EQ(part[0].spec.memo_underlying,
              core::SchemeKind::Partial);
    EXPECT_EQ(part[0].spec.partial_k, 4u);
    EXPECT_EQ(part[0].spec.partial_subsets, 1u);
}

TEST(ParseSchemeList, WayMemoRejections)
{
    EXPECT_THROW(parseSchemeList("waymemo:q=1", 4, 16), FatalError);
    EXPECT_THROW(parseSchemeList("waymemo:tag=2", 4, 16), FatalError);
    EXPECT_THROW(parseSchemeList("waymemo:e", 4, 16), FatalError);
    // Memo-over-memo nesting is rejected at parse time.
    EXPECT_THROW(parseSchemeList("waymemo:u=waymemo", 4, 16),
                 FatalError);
    EXPECT_THROW(parseSchemeList("waymemo:u=waypredict", 4, 16),
                 FatalError);
}

TEST(ParseSchemeList, TagBitsPropagate)
{
    auto schemes = parseSchemeList("partial", 8, 32);
    EXPECT_EQ(schemes[0].spec.tag_bits, 32u);
    // 32-bit tags need only one subset at 8-way (Figure 6).
    EXPECT_EQ(schemes[0].spec.partial_subsets, 1u);
}

TEST(ParseSchemeList, Rejections)
{
    EXPECT_THROW(parseSchemeList("", 4, 16), FatalError);
    EXPECT_THROW(parseSchemeList("bogus", 4, 16), FatalError);
    EXPECT_THROW(parseSchemeList("widenaive", 4, 16), FatalError);
    EXPECT_THROW(parseSchemeList("partial:q=1", 4, 16), FatalError);
    EXPECT_THROW(parseSchemeList("partial:k", 4, 16), FatalError);
    EXPECT_THROW(parseSchemeList("mru:x", 4, 16), FatalError);
}

TEST(ParseReplPolicy, Names)
{
    EXPECT_EQ(parseReplPolicy("lru"), mem::ReplPolicy::Lru);
    EXPECT_EQ(parseReplPolicy("fifo"), mem::ReplPolicy::Fifo);
    EXPECT_EQ(parseReplPolicy("random"), mem::ReplPolicy::Random);
    EXPECT_THROW(parseReplPolicy("plru"), FatalError);
}

} // namespace
} // namespace sim
} // namespace assoc
