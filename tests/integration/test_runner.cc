/**
 * @file
 * Tests of the library-level experiment runner (sim/runner.h): the
 * API the bench harnesses and downstream users drive sweeps with.
 */

#include <gtest/gtest.h>

#include "sim/runner.h"
#include "trace/atum_like.h"
#include "trace/synthetic.h"

namespace assoc {
namespace sim {
namespace {

trace::AtumLikeConfig
smallTrace()
{
    trace::AtumLikeConfig cfg;
    cfg.segments = 2;
    cfg.refs_per_segment = 40000;
    return cfg;
}

TEST(Runner, DefaultSpecIsThePaperConfiguration)
{
    RunSpec spec;
    EXPECT_EQ(spec.hier.l1.name(), "16K-16");
    EXPECT_EQ(spec.hier.l2.name(), "256K-32 4-way");
    EXPECT_TRUE(spec.wb_optimization);
    EXPECT_DOUBLE_EQ(spec.coherency_rate, 0.0);
}

TEST(Runner, NamesAndProbesParallelSchemes)
{
    trace::AtumLikeGenerator gen(smallTrace());
    RunSpec spec;
    core::SchemeSpec naive, mru;
    naive.kind = core::SchemeKind::Naive;
    mru.kind = core::SchemeKind::Mru;
    spec.schemes = {naive, mru};
    RunOutput out = runTrace(gen, spec);
    ASSERT_EQ(out.names.size(), 2u);
    ASSERT_EQ(out.probes.size(), 2u);
    EXPECT_EQ(out.names[0], "Naive");
    EXPECT_EQ(out.names[1], "MRU");
    EXPECT_GT(out.probes[0].read_in_hits.count(), 0u);
}

TEST(Runner, NoSchemesIsFine)
{
    trace::AtumLikeGenerator gen(smallTrace());
    RunSpec spec;
    RunOutput out = runTrace(gen, spec);
    EXPECT_TRUE(out.names.empty());
    EXPECT_GT(out.stats.proc_refs, 0u);
}

TEST(Runner, DistancesOnlyWhenRequested)
{
    trace::AtumLikeGenerator gen(smallTrace());
    RunSpec spec;
    RunOutput out = runTrace(gen, spec);
    EXPECT_TRUE(out.f.empty());

    gen.reset();
    spec.with_distances = true;
    out = runTrace(gen, spec);
    ASSERT_EQ(out.f.size(), spec.hier.l2.assoc() + 1);
    double sum = 0;
    for (unsigned i = 1; i <= spec.hier.l2.assoc(); ++i)
        sum += out.f[i];
    EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(Runner, FastAndSlowPathsAgreeWithoutCoherency)
{
    // The occupancy-sampling path must not perturb the simulation.
    trace::AtumLikeGenerator gen(smallTrace());
    RunSpec spec;
    core::SchemeSpec naive;
    naive.kind = core::SchemeKind::Naive;
    spec.schemes = {naive};
    RunOutput fast = runTrace(gen, spec);

    gen.reset();
    spec.occupancy_sample_period = 5000;
    RunOutput slow = runTrace(gen, spec);

    EXPECT_EQ(fast.stats.read_ins, slow.stats.read_ins);
    EXPECT_DOUBLE_EQ(fast.probes[0].totalMean(),
                     slow.probes[0].totalMean());
    EXPECT_GT(slow.mean_occupancy, 0.0);
    EXPECT_LE(slow.mean_occupancy, 1.0);
}

TEST(Runner, CoherencyRatePerturbsTheCache)
{
    trace::AtumLikeGenerator gen(smallTrace());
    RunSpec spec;
    RunOutput clean = runTrace(gen, spec);

    gen.reset();
    spec.coherency_rate = 0.01;
    RunOutput noisy = runTrace(gen, spec);

    EXPECT_GT(noisy.coherency_invalidations, 0u);
    EXPECT_GT(noisy.stats.localMissRatio(),
              clean.stats.localMissRatio());
}

TEST(Runner, WorksWithAnyTraceSource)
{
    trace::LoopTrace loop(0, 32, 64, 50000);
    RunSpec spec;
    core::SchemeSpec trad;
    trad.kind = core::SchemeKind::Traditional;
    spec.schemes = {trad};
    RunOutput out = runTrace(loop, spec);
    EXPECT_EQ(out.stats.proc_refs, 50000u);
    // A 64-block loop fits the 16K L1 after the first lap.
    EXPECT_LT(out.stats.l1MissRatio(), 0.01);
}

TEST(Runner, CacheNameMatchesPaperNotation)
{
    EXPECT_EQ(cacheName(262144, 32), "256K-32");
    EXPECT_EQ(cacheName(4096, 16), "4K-16");
}

TEST(Runner, CacheNamePrintsSubKilobyteSizesInBytes)
{
    // 512 / 1024 would integer-divide to "0K"; bytes are spelled
    // out below 1 KiB instead.
    EXPECT_EQ(cacheName(512, 16), "512B-16");
    EXPECT_EQ(cacheName(256, 8), "256B-8");
    EXPECT_EQ(cacheName(1024, 16), "1K-16");
}

TEST(Runner, Table4ConfigsMatchThePaper)
{
    const auto &cfgs = table4Configs();
    ASSERT_EQ(cfgs.size(), 8u);
    EXPECT_EQ(cfgs[0].l1_bytes, 16384u);
    EXPECT_EQ(cfgs[0].l2_bytes, 262144u);
    EXPECT_EQ(cfgs[3].l2_block, 64u); // the 4K-16 256K-64 row
    EXPECT_EQ(cfgs[7].l2_bytes, 65536u);
}

} // namespace
} // namespace sim
} // namespace assoc
