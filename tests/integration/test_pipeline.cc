#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/analytic.h"
#include "core/probe_meter.h"
#include "core/scheme.h"
#include "mem/hierarchy.h"
#include "trace/atum_like.h"
#include "trace/bin_io.h"

namespace assoc {
namespace {

using core::MruDistanceMeter;
using core::ProbeMeter;
using core::SchemeKind;
using core::SchemeSpec;
using mem::CacheGeometry;
using mem::HierarchyConfig;
using mem::TwoLevelHierarchy;

trace::AtumLikeConfig
mediumTrace()
{
    trace::AtumLikeConfig cfg;
    cfg.segments = 4;
    cfg.refs_per_segment = 100000;
    return cfg;
}

/** Full pipeline: generator -> hierarchy -> meters, invariants. */
TEST(Pipeline, ConservationInvariants)
{
    trace::AtumLikeGenerator gen(mediumTrace());
    HierarchyConfig cfg{CacheGeometry(16384, 16, 1),
                        CacheGeometry(256 * 1024, 32, 4), true};
    TwoLevelHierarchy h(cfg);

    std::vector<std::unique_ptr<ProbeMeter>> meters;
    for (SchemeKind kind :
         {SchemeKind::Traditional, SchemeKind::Naive, SchemeKind::Mru}) {
        SchemeSpec spec;
        spec.kind = kind;
        meters.push_back(spec.makeMeter());
        h.addObserver(meters.back().get());
    }
    meters.push_back(SchemeSpec::paperPartial(4).makeMeter());
    h.addObserver(meters.back().get());

    h.run(gen);
    const mem::HierarchyStats &s = h.stats();

    EXPECT_EQ(s.proc_refs, 400000u);
    EXPECT_EQ(s.l1_hits + s.l1_misses, s.proc_refs);
    EXPECT_EQ(s.read_ins, s.l1_misses);
    EXPECT_EQ(s.read_in_hits + s.read_in_misses, s.read_ins);
    EXPECT_LE(s.write_backs, s.read_ins);
    EXPECT_LE(s.globalMissRatio(), s.l1MissRatio());

    for (const auto &m : meters) {
        const core::ProbeStats &ps = m->stats();
        // Every level-two request was priced exactly once.
        EXPECT_EQ(ps.read_in_hits.count() + ps.read_in_misses.count() +
                      ps.write_backs.count(),
                  s.read_ins + s.write_backs)
            << m->name();
    }
}

TEST(Pipeline, ProbeBoundsPerScheme)
{
    trace::AtumLikeGenerator gen(mediumTrace());
    const unsigned a = 8;
    HierarchyConfig cfg{CacheGeometry(16384, 16, 1),
                        CacheGeometry(256 * 1024, 32, a), true};
    TwoLevelHierarchy h(cfg);

    SchemeSpec trad, naive, mru;
    trad.kind = SchemeKind::Traditional;
    naive.kind = SchemeKind::Naive;
    mru.kind = SchemeKind::Mru;
    SchemeSpec partial = SchemeSpec::paperPartial(a);

    auto mt = trad.makeMeter();
    auto mn = naive.makeMeter();
    auto mm = mru.makeMeter();
    auto mp = partial.makeMeter();
    for (auto *m : {mt.get(), mn.get(), mm.get(), mp.get()})
        h.addObserver(m);
    h.run(gen);

    // Traditional: exactly one probe everywhere.
    EXPECT_DOUBLE_EQ(mt->stats().read_in_hits.mean(), 1.0);
    EXPECT_DOUBLE_EQ(mt->stats().read_in_misses.mean(), 1.0);

    // Naive: hits in [1, a], misses exactly a.
    EXPECT_GE(mn->stats().read_in_hits.mean(), 1.0);
    EXPECT_LE(mn->stats().read_in_hits.mean(), a);
    EXPECT_DOUBLE_EQ(mn->stats().read_in_misses.mean(), a);

    // MRU: hits in [2, a+1], misses exactly a+1.
    EXPECT_GE(mm->stats().read_in_hits.mean(), 2.0);
    EXPECT_LE(mm->stats().read_in_hits.mean(), a + 1.0);
    EXPECT_DOUBLE_EQ(mm->stats().read_in_misses.mean(), a + 1.0);

    // Partial: a hit costs at least 2 (a step-1 probe plus the
    // matching full compare) and a miss at least s; both cost at
    // most s + a (every tag fully compared).
    unsigned s = partial.partial_subsets;
    EXPECT_GE(mp->stats().read_in_hits.mean(), 2.0);
    EXPECT_LE(mp->stats().read_in_hits.mean(), s + a + 0.0);
    EXPECT_GE(mp->stats().read_in_misses.mean(), static_cast<double>(s));
    EXPECT_LE(mp->stats().read_in_misses.mean(), s + a + 0.0);
}

TEST(Pipeline, WriteBackOptimizationSavesExactlyWriteBackProbes)
{
    trace::AtumLikeGenerator gen(mediumTrace());
    HierarchyConfig cfg{CacheGeometry(16384, 16, 1),
                        CacheGeometry(256 * 1024, 32, 4), true};
    TwoLevelHierarchy h(cfg);
    SchemeSpec naive;
    naive.kind = SchemeKind::Naive;
    auto with_opt = naive.makeMeter(true);
    auto without = naive.makeMeter(false);
    h.addObserver(with_opt.get());
    h.addObserver(without.get());
    h.run(gen);

    // Same stream, so read-in numbers are identical...
    EXPECT_DOUBLE_EQ(with_opt->stats().read_in_hits.mean(),
                     without->stats().read_in_hits.mean());
    EXPECT_DOUBLE_EQ(with_opt->stats().read_in_misses.mean(),
                     without->stats().read_in_misses.mean());
    // ...and the optimized write-backs cost zero instead of > 1.
    EXPECT_DOUBLE_EQ(with_opt->stats().write_backs.mean(), 0.0);
    EXPECT_GT(without->stats().write_backs.mean(), 1.0);
    EXPECT_LT(with_opt->stats().totalMean(),
              without->stats().totalMean());
}

TEST(Pipeline, MruDistancesFormAProbabilityDistribution)
{
    trace::AtumLikeGenerator gen(mediumTrace());
    const unsigned a = 8;
    HierarchyConfig cfg{CacheGeometry(16384, 16, 1),
                        CacheGeometry(256 * 1024, 32, a), true};
    TwoLevelHierarchy h(cfg);
    MruDistanceMeter dist(a);
    h.addObserver(&dist);
    h.run(gen);

    ASSERT_GT(dist.distances().total(), 0u);
    double sum = 0.0;
    for (unsigned i = 1; i <= a; ++i)
        sum += dist.f(i);
    EXPECT_NEAR(sum, 1.0, 1e-12);
    EXPECT_EQ(dist.distances().count(0), 0u);
    EXPECT_EQ(dist.distances().overflow(), 0u);
    // MRU hit count equals the simulator's read-in hit count.
    EXPECT_EQ(dist.distances().total(), h.stats().read_in_hits);
}

TEST(Pipeline, MeasuredMruHitsMatchDistanceDistribution)
{
    // Cross-module consistency: the MRU meter's hit probes must
    // equal the analytic formula evaluated on the measured f_i.
    trace::AtumLikeGenerator gen(mediumTrace());
    const unsigned a = 4;
    HierarchyConfig cfg{CacheGeometry(16384, 16, 1),
                        CacheGeometry(256 * 1024, 32, a), true};
    TwoLevelHierarchy h(cfg);
    SchemeSpec mru;
    mru.kind = SchemeKind::Mru;
    auto meter = mru.makeMeter();
    MruDistanceMeter dist(a);
    h.addObserver(meter.get());
    h.addObserver(&dist);
    h.run(gen);

    std::vector<double> f(a + 1, 0.0);
    for (unsigned i = 1; i <= a; ++i)
        f[i] = dist.f(i);
    double predicted = core::analytic::mruHit(f);
    EXPECT_NEAR(meter->stats().read_in_hits.mean(), predicted, 1e-9);
}

TEST(Pipeline, TraceFileRoundTripGivesIdenticalResults)
{
    // Generator -> binary file -> reader must price identically.
    trace::AtumLikeConfig tcfg;
    tcfg.segments = 2;
    tcfg.refs_per_segment = 30000;
    trace::AtumLikeGenerator gen(tcfg);

    std::string path = ::testing::TempDir() + "pipeline_trace.bin";
    trace::writeBin(gen, path);
    trace::BinTraceSource file(path);

    HierarchyConfig cfg{CacheGeometry(16384, 16, 1),
                        CacheGeometry(256 * 1024, 32, 4), true};

    auto run = [&](trace::TraceSource &src) {
        TwoLevelHierarchy h(cfg);
        SchemeSpec naive;
        naive.kind = SchemeKind::Naive;
        auto m = naive.makeMeter();
        h.addObserver(m.get());
        h.run(src);
        return std::make_pair(h.stats().localMissRatio(),
                              m->stats().totalMean());
    };

    auto from_gen = run(gen);
    auto from_file = run(file);
    EXPECT_DOUBLE_EQ(from_gen.first, from_file.first);
    EXPECT_DOUBLE_EQ(from_gen.second, from_file.second);
    std::remove(path.c_str());
}

TEST(Pipeline, ReplayIsDeterministic)
{
    trace::AtumLikeConfig tcfg;
    tcfg.segments = 2;
    tcfg.refs_per_segment = 30000;

    auto run = [&]() {
        trace::AtumLikeGenerator gen(tcfg);
        HierarchyConfig cfg{CacheGeometry(4096, 16, 1),
                            CacheGeometry(65536, 32, 8), true};
        TwoLevelHierarchy h(cfg);
        auto m = SchemeSpec::paperPartial(8).makeMeter();
        h.addObserver(m.get());
        h.run(gen);
        return m->stats().totalMean();
    };
    EXPECT_DOUBLE_EQ(run(), run());
}

} // namespace
} // namespace assoc
