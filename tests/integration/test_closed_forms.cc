/**
 * @file
 * Closed-form validation: on independent uniform references the
 * whole pipeline (generator -> hierarchy -> meters) must reproduce
 * exactly derivable statistics. This pins the meters' accounting to
 * mathematics rather than to other simulator output.
 *
 * Setup: 1-frame L1 (16B block), fully-associative 8-frame L2
 * (one set, 16B blocks), uniform iid references over 64 blocks.
 * Consequences (derivable by symmetry of LRU under iid uniform):
 *
 *  - The previous reference's block is always the L2 MRU block, and
 *    it is exactly the L1 content, so a read-in is uniform over the
 *    63 *other* blocks.
 *  - Read-in hit ratio = 7/63 (7 cached non-MRU blocks).
 *  - Given a hit, the MRU distance is uniform over {2..8}: f_1 = 0,
 *    f_2..f_8 = 1/7, so MRU hit probes = 1 + 5 = 6.
 *  - The hit way is uniform over the 8 physical frames, so naive
 *    hit probes = 4.5.
 */

#include <gtest/gtest.h>

#include "core/probe_meter.h"
#include "core/scheme.h"
#include "mem/hierarchy.h"
#include "trace/synthetic.h"

namespace assoc {
namespace {

using core::MruDistanceMeter;
using core::SchemeKind;
using core::SchemeSpec;
using mem::CacheGeometry;
using mem::HierarchyConfig;
using mem::TwoLevelHierarchy;

struct Fixture
{
    HierarchyConfig cfg{CacheGeometry(16, 16, 1),
                        CacheGeometry(8 * 16, 16, 8), true};
    TwoLevelHierarchy hier{cfg};
    std::unique_ptr<core::ProbeMeter> trad, naive, mru;
    MruDistanceMeter dist{8};

    Fixture()
    {
        SchemeSpec t, n, m;
        t.kind = SchemeKind::Traditional;
        n.kind = SchemeKind::Naive;
        m.kind = SchemeKind::Mru;
        t.tag_bits = n.tag_bits = m.tag_bits = 32;
        trad = t.makeMeter();
        naive = n.makeMeter();
        mru = m.makeMeter();
        hier.addObserver(trad.get());
        hier.addObserver(naive.get());
        hier.addObserver(mru.get());
        hier.addObserver(&dist);
    }

    void
    run(std::uint64_t refs, std::uint64_t seed = 21)
    {
        trace::UniformRandomTrace t(0, 16, 64, refs, seed);
        hier.run(t);
    }
};

TEST(ClosedForms, ReadInHitRatioIsSevenSixtyThirds)
{
    Fixture f;
    f.run(400000);
    double ri = static_cast<double>(f.hier.stats().read_ins);
    double hr = f.hier.stats().read_in_hits / ri;
    EXPECT_NEAR(hr, 7.0 / 63.0, 0.005);
}

TEST(ClosedForms, L1FiltersExactlyConsecutiveRepeats)
{
    Fixture f;
    f.run(400000);
    // P(L1 hit) = P(same block as previous ref) = 1/64.
    EXPECT_NEAR(f.hier.stats().l1MissRatio(), 63.0 / 64.0, 0.005);
}

TEST(ClosedForms, MruDistanceIsUniformOverTwoToEight)
{
    Fixture f;
    f.run(400000);
    EXPECT_DOUBLE_EQ(f.dist.f(1), 0.0);
    for (unsigned i = 2; i <= 8; ++i)
        EXPECT_NEAR(f.dist.f(i), 1.0 / 7.0, 0.02) << "i=" << i;
}

TEST(ClosedForms, MruHitProbesAreSix)
{
    Fixture f;
    f.run(400000);
    EXPECT_NEAR(f.mru->stats().read_in_hits.mean(), 6.0, 0.06);
    EXPECT_DOUBLE_EQ(f.mru->stats().read_in_misses.mean(), 9.0);
}

TEST(ClosedForms, NaiveHitProbesAreFourPointFive)
{
    Fixture f;
    f.run(400000);
    EXPECT_NEAR(f.naive->stats().read_in_hits.mean(), 4.5, 0.06);
    EXPECT_DOUBLE_EQ(f.naive->stats().read_in_misses.mean(), 8.0);
}

TEST(ClosedForms, TraditionalIsAlwaysOne)
{
    Fixture f;
    f.run(100000);
    EXPECT_DOUBLE_EQ(f.trad->stats().read_in_hits.mean(), 1.0);
    EXPECT_DOUBLE_EQ(f.trad->stats().read_in_misses.mean(), 1.0);
}

TEST(ClosedForms, NoWriteBacksFromAReadOnlyStream)
{
    Fixture f;
    f.run(50000);
    EXPECT_EQ(f.hier.stats().write_backs, 0u);
}

} // namespace
} // namespace assoc
