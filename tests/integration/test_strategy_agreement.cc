/**
 * @file
 * Fuzz-style property test: every lookup strategy must agree with
 * the traditional (parallel) lookup on *what* it finds — same
 * hit/miss verdict and same way — whenever tags are alias-free.
 * They may only differ in how many probes they spend. Runs over
 * thousands of random set states at several associativities.
 */

#include <gtest/gtest.h>

#include <memory>
#include <utility>
#include <vector>

#include "core/lookup.h"
#include "core/mru_lookup.h"
#include "core/partial_lookup.h"
#include "core/scheme.h"
#include "core/swap_mru_lookup.h"
#include "core/wide_lookup.h"
#include "util/bitops.h"
#include "util/rng.h"

namespace assoc {
namespace core {
namespace {

struct RandomSet
{
    std::vector<std::uint32_t> tags;
    std::vector<std::uint8_t> valid;
    std::vector<std::uint8_t> order;
    std::uint32_t incoming;
    int true_way; // -1 when the incoming tag is absent

    RandomSet(unsigned a, Pcg32 &rng, unsigned tag_bits)
        : tags(a), valid(a), order(a)
    {
        std::uint32_t mask =
            static_cast<std::uint32_t>(maskBits(tag_bits));
        // Distinct valid tags (alias-free by construction).
        for (unsigned w = 0; w < a; ++w) {
            bool dup;
            do {
                tags[w] = rng.next() & mask;
                dup = false;
                for (unsigned v = 0; v < w; ++v)
                    dup |= tags[v] == tags[w];
            } while (dup);
            valid[w] = rng.chance(0.85) ? 1 : 0;
        }
        // Random recency permutation (Fisher-Yates).
        for (unsigned w = 0; w < a; ++w)
            order[w] = static_cast<std::uint8_t>(w);
        for (unsigned w = a - 1; w > 0; --w)
            std::swap(order[w], order[rng.below(w + 1)]);

        if (rng.chance(0.7)) {
            unsigned w = rng.below(a);
            incoming = tags[w];
            true_way = valid[w] ? static_cast<int>(w) : -1;
        } else {
            do {
                incoming = rng.next() & mask;
                true_way = -1;
                for (unsigned w = 0; w < a; ++w)
                    if (tags[w] == incoming && valid[w])
                        true_way = static_cast<int>(w);
            } while (true_way >= 0);
        }
    }

    LookupInput
    input() const
    {
        LookupInput in;
        in.assoc = static_cast<unsigned>(tags.size());
        in.stored_tags = tags.data();
        in.valid = valid.data();
        in.mru_order = order.data();
        in.incoming_tag = incoming;
        return in;
    }
};

class StrategyAgreement : public ::testing::TestWithParam<unsigned>
{
  protected:
    std::vector<std::unique_ptr<LookupStrategy>>
    allStrategies(unsigned a) const
    {
        std::vector<std::unique_ptr<LookupStrategy>> out;
        out.push_back(std::make_unique<TraditionalLookup>());
        out.push_back(std::make_unique<NaiveLookup>());
        out.push_back(std::make_unique<MruLookup>());
        out.push_back(std::make_unique<MruLookup>(2));
        out.push_back(std::make_unique<SwapMruLookup>());
        out.push_back(std::make_unique<WideNaiveLookup>(2));
        out.push_back(std::make_unique<WideMruLookup>(2));
        for (TransformKind tr :
             {TransformKind::None, TransformKind::XorLow,
              TransformKind::Improved, TransformKind::Swap}) {
            SchemeSpec spec = SchemeSpec::paperPartial(a, 16);
            PartialConfig cfg;
            cfg.tag_bits = spec.tag_bits;
            cfg.field_bits = spec.partial_k;
            cfg.subsets = spec.partial_subsets;
            cfg.transform = tr;
            out.push_back(std::make_unique<PartialLookup>(cfg));
        }
        return out;
    }
};

TEST_P(StrategyAgreement, AllSchemesAgreeOnHitAndWay)
{
    const unsigned a = GetParam();
    Pcg32 rng(0xA9CE + a);
    auto strategies = allStrategies(a);
    for (int trial = 0; trial < 3000; ++trial) {
        RandomSet set(a, rng, 16);
        LookupInput in = set.input();
        for (const auto &strat : strategies) {
            LookupResult r = strat->lookup(in);
            ASSERT_EQ(r.hit, set.true_way >= 0)
                << strat->name() << " trial " << trial;
            if (r.hit) {
                ASSERT_EQ(r.way, set.true_way)
                    << strat->name() << " trial " << trial;
            }
        }
    }
}

TEST_P(StrategyAgreement, ProbeBoundsHoldOnRandomStates)
{
    const unsigned a = GetParam();
    Pcg32 rng(0xB0B + a);
    auto strategies = allStrategies(a);
    for (int trial = 0; trial < 3000; ++trial) {
        RandomSet set(a, rng, 16);
        LookupInput in = set.input();
        for (const auto &strat : strategies) {
            LookupResult r = strat->lookup(in);
            ASSERT_GE(r.probes, 1u) << strat->name();
            // No scheme may ever exceed one list read plus one
            // step-1 probe per subset plus a full compares.
            ASSERT_LE(r.probes, 1 + a + a) << strat->name();
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Assoc, StrategyAgreement,
                         ::testing::Values(2u, 4u, 8u, 16u),
                         [](const ::testing::TestParamInfo<unsigned>
                                &info) {
                             return "a" +
                                    std::to_string(info.param);
                         });

} // namespace
} // namespace core
} // namespace assoc
