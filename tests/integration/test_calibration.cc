/**
 * @file
 * Calibration tests: the synthetic ATUM-like workload must land in
 * the neighbourhood of the paper's Table 3 / Table 4 statistics,
 * otherwise every reproduced figure silently drifts. Bounds are
 * deliberately loose bands around the paper's values.
 *
 * Paper targets (Table 3): level-one miss ratios 0.1181 (4K-16),
 * 0.0657 (16K-16), 0.0513 (16K-32). Write-backs are ~21% of
 * level-two requests (Table 4).
 */

#include <gtest/gtest.h>

#include "mem/hierarchy.h"
#include "trace/atum_like.h"

namespace assoc {
namespace {

using mem::CacheGeometry;
using mem::HierarchyConfig;
using mem::TwoLevelHierarchy;

/** Shortened trace (8 of 23 segments) keeps test time low; miss
 *  ratios are within noise of the full trace. */
trace::AtumLikeConfig
calibrationTrace()
{
    trace::AtumLikeConfig cfg;
    cfg.segments = 8;
    return cfg;
}

mem::HierarchyStats
runL1(std::uint32_t l1_bytes, std::uint32_t l1_block)
{
    trace::AtumLikeGenerator gen(calibrationTrace());
    HierarchyConfig cfg{CacheGeometry(l1_bytes, l1_block, 1),
                        CacheGeometry(256 * 1024, 32, 4), true};
    TwoLevelHierarchy h(cfg);
    h.run(gen);
    return h.stats();
}

TEST(Calibration, L1MissRatio4K16NearPaper)
{
    double mr = runL1(4096, 16).l1MissRatio();
    EXPECT_GT(mr, 0.08);
    EXPECT_LT(mr, 0.16);
}

TEST(Calibration, L1MissRatio16K16NearPaper)
{
    double mr = runL1(16384, 16).l1MissRatio();
    EXPECT_GT(mr, 0.045);
    EXPECT_LT(mr, 0.10);
}

TEST(Calibration, L1MissRatio16K32NearPaper)
{
    double mr = runL1(16384, 32).l1MissRatio();
    EXPECT_GT(mr, 0.030);
    EXPECT_LT(mr, 0.075);
}

TEST(Calibration, L1MissRatiosOrderedLikeTable3)
{
    double mr_4k16 = runL1(4096, 16).l1MissRatio();
    double mr_16k16 = runL1(16384, 16).l1MissRatio();
    double mr_16k32 = runL1(16384, 32).l1MissRatio();
    EXPECT_GT(mr_4k16, mr_16k16);
    EXPECT_GT(mr_16k16, mr_16k32);
}

TEST(Calibration, WriteBackFractionNearTwentyPercent)
{
    mem::HierarchyStats s = runL1(16384, 16);
    EXPECT_GT(s.writeBackFraction(), 0.12);
    EXPECT_LT(s.writeBackFraction(), 0.33);
}

TEST(Calibration, LocalMissRatioInPaperBand)
{
    // Table 4, 4-way, 16K-16 / 256K-32: local miss ratio 0.1721.
    mem::HierarchyStats s = runL1(16384, 16);
    EXPECT_GT(s.localMissRatio(), 0.08);
    EXPECT_LT(s.localMissRatio(), 0.30);
}

TEST(Calibration, GlobalMissRatioInPaperBand)
{
    // Table 4: global miss ratio 0.0143 for 16K-16 / 256K-32.
    mem::HierarchyStats s = runL1(16384, 16);
    EXPECT_GT(s.globalMissRatio(), 0.005);
    EXPECT_LT(s.globalMissRatio(), 0.04);
}

TEST(Calibration, LocalMissRatioFallsWithLargerL2)
{
    trace::AtumLikeConfig tcfg = calibrationTrace();
    auto local = [&](std::uint32_t l2_bytes) {
        trace::AtumLikeGenerator gen(tcfg);
        HierarchyConfig cfg{CacheGeometry(4096, 16, 1),
                            CacheGeometry(l2_bytes, 32, 4), true};
        TwoLevelHierarchy h(cfg);
        h.run(gen);
        return h.stats().localMissRatio();
    };
    double small = local(64 * 1024);
    double large = local(256 * 1024);
    EXPECT_GT(small, large);
}

TEST(Calibration, AssociativityImprovesL2MissRatio)
{
    // The reason the paper wants cheap associativity at all: 4-way
    // beats direct-mapped on the level-two local miss ratio.
    trace::AtumLikeConfig tcfg = calibrationTrace();
    auto local = [&](std::uint32_t assoc) {
        trace::AtumLikeGenerator gen(tcfg);
        HierarchyConfig cfg{CacheGeometry(16384, 16, 1),
                            CacheGeometry(256 * 1024, 32, assoc),
                            true};
        TwoLevelHierarchy h(cfg);
        h.run(gen);
        return h.stats().localMissRatio();
    };
    double dm = local(1);
    double four = local(4);
    EXPECT_GT(dm, four);
    // Diminishing returns beyond 4-way (the paper: "8 and 16-way
    // did not improve the miss ratios substantially over 4-way").
    double sixteen = local(16);
    EXPECT_GT(four - sixteen, -0.005); // 16-way not much worse
    EXPECT_LT(four - sixteen, 0.05);   // ...and not a huge win
}

TEST(Calibration, HintAccuracyNearPerfectWhenL2IsLarge)
{
    // With a 64:1 size ratio, inclusion violations are rare, so
    // write-back hints are almost always correct — the basis of
    // the write-back optimization.
    mem::HierarchyStats s = runL1(4096, 16);
    EXPECT_GT(s.hintAccuracy(), 0.99);
}

} // namespace
} // namespace assoc
