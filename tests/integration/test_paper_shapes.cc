/**
 * @file
 * Shape tests: the qualitative results of the paper's evaluation
 * must hold on the synthetic workload. These pin down who wins,
 * by roughly what factor, and where crossovers fall — the things
 * EXPERIMENTS.md reports — without requiring the paper's absolute
 * numbers.
 */

#include <gtest/gtest.h>

#include <memory>

#include "core/probe_meter.h"
#include "core/scheme.h"
#include "mem/hierarchy.h"
#include "trace/atum_like.h"

namespace assoc {
namespace {

using core::MruDistanceMeter;
using core::ProbeMeter;
using core::SchemeKind;
using core::SchemeSpec;
using core::TransformKind;
using mem::CacheGeometry;
using mem::HierarchyConfig;
using mem::TwoLevelHierarchy;

struct SchemeResults
{
    core::ProbeStats trad, naive, mru, partial;
    mem::HierarchyStats hier;
    std::vector<double> f; ///< f[1..a]: MRU distance distribution
};

/** One Figure 3 style run: all four schemes on one configuration. */
SchemeResults
runAll(unsigned assoc, unsigned segments = 8,
       std::uint32_t l1_bytes = 16384, std::uint32_t l1_block = 16,
       std::uint32_t l2_bytes = 256 * 1024,
       std::uint32_t l2_block = 32, unsigned tag_bits = 16)
{
    trace::AtumLikeConfig tcfg;
    tcfg.segments = segments;
    trace::AtumLikeGenerator gen(tcfg);

    HierarchyConfig cfg{CacheGeometry(l1_bytes, l1_block, 1),
                        CacheGeometry(l2_bytes, l2_block, assoc),
                        true};
    TwoLevelHierarchy h(cfg);

    SchemeSpec trad, naive, mru;
    trad.kind = SchemeKind::Traditional;
    naive.kind = SchemeKind::Naive;
    mru.kind = SchemeKind::Mru;
    SchemeSpec partial = SchemeSpec::paperPartial(assoc, tag_bits);

    auto mt = trad.makeMeter();
    auto mn = naive.makeMeter();
    auto mm = mru.makeMeter();
    auto mp = partial.makeMeter();
    MruDistanceMeter dist(assoc);
    h.addObserver(mt.get());
    h.addObserver(mn.get());
    h.addObserver(mm.get());
    h.addObserver(mp.get());
    h.addObserver(&dist);
    h.run(gen);

    SchemeResults r;
    r.trad = mt->stats();
    r.naive = mn->stats();
    r.mru = mm->stats();
    r.partial = mp->stats();
    r.hier = h.stats();
    r.f.assign(assoc + 1, 0.0);
    for (unsigned i = 1; i <= assoc; ++i)
        r.f[i] = dist.f(i);
    return r;
}

TEST(PaperShapes, Figure3SchemeOrderingAtFourWay)
{
    SchemeResults r = runAll(4);
    // Traditional is the floor; partial is the best serial scheme
    // in total; naive and MRU are close at 4-way.
    EXPECT_LT(r.trad.totalMean(), r.partial.totalMean());
    EXPECT_LT(r.partial.totalMean(), r.mru.totalMean());
    EXPECT_LT(r.partial.totalMean(), r.naive.totalMean());
}

TEST(PaperShapes, Figure3NaiveDegradesFastestWithAssociativity)
{
    SchemeResults r8 = runAll(8);
    SchemeResults r16 = runAll(16);
    // At 8-way and beyond, naive is the worst serial scheme and
    // MRU/partial clearly beat it (Figure 3 / Table 4).
    EXPECT_GT(r8.naive.totalMean(), r8.mru.totalMean());
    EXPECT_GT(r8.naive.totalMean(), r8.partial.totalMean());
    EXPECT_GT(r16.naive.totalMean(), r16.mru.totalMean());
    EXPECT_GT(r16.naive.totalMean(), r16.partial.totalMean());
    // Naive grows roughly linearly: doubling associativity roughly
    // doubles its total probes (within a generous band).
    double growth = r16.naive.totalMean() / r8.naive.totalMean();
    EXPECT_GT(growth, 1.5);
    EXPECT_LT(growth, 2.5);
}

TEST(PaperShapes, Figure4PartialDominatesOnMisses)
{
    for (unsigned a : {4u, 8u, 16u}) {
        SchemeResults r = runAll(a, 6);
        // Misses: partial << naive (a) < MRU (a+1).
        EXPECT_LT(r.partial.read_in_misses.mean(),
                  r.naive.read_in_misses.mean())
            << "a=" << a;
        EXPECT_DOUBLE_EQ(r.naive.read_in_misses.mean(), a);
        EXPECT_DOUBLE_EQ(r.mru.read_in_misses.mean(), a + 1.0);
        // The factor is large: at least 1.5x fewer probes.
        EXPECT_LT(r.partial.read_in_misses.mean() * 1.5,
                  r.mru.read_in_misses.mean())
            << "a=" << a;
    }
}

TEST(PaperShapes, Figure4MruAndPartialCloseOnHits)
{
    SchemeResults r = runAll(8, 6);
    double mru = r.mru.read_in_hits.mean();
    double part = r.partial.read_in_hits.mean();
    double naive = r.naive.read_in_hits.mean();
    // Hits: MRU and partial are close; naive considerably worse.
    EXPECT_LT(std::abs(mru - part), 0.8);
    EXPECT_GT(naive, mru + 0.8);
    EXPECT_GT(naive, part + 0.8);
}

TEST(PaperShapes, Figure5DistanceDistributionDecays)
{
    // f_1 > f_2 > ... and f_1 falls as associativity grows
    // (75% / 60% / 36% in the paper's right graph).
    SchemeResults r4 = runAll(4, 6);
    SchemeResults r8 = runAll(8, 6);
    SchemeResults r16 = runAll(16, 6);
    EXPECT_GT(r4.f[1], r4.f[2]);
    EXPECT_GT(r4.f[2], r4.f[3]);
    EXPECT_GT(r8.f[1], r8.f[2]);
    EXPECT_GT(r4.f[1], r8.f[1]);
    EXPECT_GT(r8.f[1], r16.f[1]);
    // Bands around the paper's values.
    EXPECT_GT(r4.f[1], 0.55);
    EXPECT_LT(r4.f[1], 0.90);
    EXPECT_GT(r16.f[1], 0.20);
    EXPECT_LT(r16.f[1], 0.60);
}

TEST(PaperShapes, Figure5ReducedMruListsApproachFullList)
{
    // A reduced list of a/4 entries performs close to the full
    // list; a 1-entry list is measurably worse at high assoc.
    trace::AtumLikeConfig tcfg;
    tcfg.segments = 6;
    trace::AtumLikeGenerator gen(tcfg);
    HierarchyConfig cfg{CacheGeometry(16384, 16, 1),
                        CacheGeometry(256 * 1024, 32, 16), true};
    TwoLevelHierarchy h(cfg);

    auto makeMru = [](unsigned len) {
        SchemeSpec spec;
        spec.kind = SchemeKind::Mru;
        spec.mru_list_len = len;
        return spec.makeMeter();
    };
    auto full = makeMru(0), four = makeMru(4), one = makeMru(1);
    for (auto *m : {full.get(), four.get(), one.get()})
        h.addObserver(m);
    h.run(gen);

    double h_full = full->stats().read_in_hits.mean();
    double h_four = four->stats().read_in_hits.mean();
    double h_one = one->stats().read_in_hits.mean();
    EXPECT_LE(h_full, h_four);
    EXPECT_LE(h_four, h_one);
    // 4 of 16 entries already get within ~20% of the full list...
    EXPECT_LT(h_four, 1.2 * h_full);
    // ...while 1 entry is clearly worse than 4.
    EXPECT_GT(h_one, h_four + 0.3);
}

TEST(PaperShapes, Figure6TransformOrdering)
{
    // Read-in hit probes: none >= xor >= improved >= theory-ish.
    trace::AtumLikeConfig tcfg;
    tcfg.segments = 6;
    trace::AtumLikeGenerator gen(tcfg);
    const unsigned a = 8;
    HierarchyConfig cfg{CacheGeometry(16384, 16, 1),
                        CacheGeometry(256 * 1024, 32, a), true};
    TwoLevelHierarchy h(cfg);

    auto makePartial = [&](TransformKind tr) {
        SchemeSpec spec = SchemeSpec::paperPartial(a);
        spec.transform = tr;
        return spec.makeMeter();
    };
    auto none = makePartial(TransformKind::None);
    auto xorlow = makePartial(TransformKind::XorLow);
    auto improved = makePartial(TransformKind::Improved);
    auto swap = makePartial(TransformKind::Swap);
    for (auto *m : {none.get(), xorlow.get(), improved.get(),
                    swap.get()})
        h.addObserver(m);
    h.run(gen);

    double p_none = none->stats().read_in_hits.mean();
    double p_xor = xorlow->stats().read_in_hits.mean();
    double p_imp = improved->stats().read_in_hits.mean();
    double p_swap = swap->stats().read_in_hits.mean();
    EXPECT_GT(p_none, p_xor);
    EXPECT_GE(p_xor + 0.05, p_imp); // improved <= xor (plus noise)
    // Swap is near the theory floor too.
    EXPECT_LT(p_swap, p_none);
}

TEST(PaperShapes, Figure6WiderTagsHelpPartialOnly)
{
    SchemeResults r16 = runAll(8, 6, 16384, 16, 256 * 1024, 32, 16);
    SchemeResults r32 = runAll(8, 6, 16384, 16, 256 * 1024, 32, 32);
    // Partial improves with 32-bit tags (wider compares, fewer
    // subsets)...
    EXPECT_LT(r32.partial.read_in_hits.mean(),
              r16.partial.read_in_hits.mean());
    // ...while naive and MRU don't care about tag width.
    EXPECT_NEAR(r32.naive.read_in_hits.mean(),
                r16.naive.read_in_hits.mean(), 1e-9);
    EXPECT_NEAR(r32.mru.read_in_hits.mean(),
                r16.mru.read_in_hits.mean(), 1e-9);
}

TEST(PaperShapes, Table4MruWinsWithBigBlocksAndSmallL1)
{
    // The paper's key exception: with a 4K-16 L1 and a 256K-64 L2
    // (large block ratio, large size ratio) the MRU scheme beats
    // partial in total probes.
    SchemeResults r = runAll(8, 8, 4096, 16, 256 * 1024, 64);
    EXPECT_LT(r.mru.totalMean(), r.naive.totalMean());
    // MRU at least competitive with partial here (within 15%),
    // unlike the 16K-16/256K-16 corner where partial wins clearly.
    EXPECT_LT(r.mru.totalMean(), 1.15 * r.partial.totalMean());

    SchemeResults far = runAll(8, 8, 16384, 16, 256 * 1024, 16);
    EXPECT_LT(far.partial.totalMean(), far.mru.totalMean());
}

TEST(PaperShapes, Table4GlobalMissRatiosBarelyDependOnAssoc)
{
    SchemeResults r4 = runAll(4, 6);
    SchemeResults r16 = runAll(16, 6);
    EXPECT_NEAR(r4.hier.globalMissRatio(),
                r16.hier.globalMissRatio(), 0.01);
}

} // namespace
} // namespace assoc
