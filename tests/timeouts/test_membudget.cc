// Unit tests for MemBudget / MemCharge: charge-release balance,
// limits, parent chaining and unwind, RAII and move semantics, and
// concurrent charging from many threads (util/cancel.h).

#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "util/cancel.h"

namespace assoc {
namespace {

TEST(MemBudget, UnlimitedBudgetOnlyAccounts)
{
    MemBudget b; // limit 0 = unlimited
    EXPECT_TRUE(b.tryCharge(1ull << 40, "huge").ok());
    EXPECT_EQ(b.used(), 1ull << 40);
    b.release(1ull << 40);
    EXPECT_EQ(b.used(), 0u);
    EXPECT_EQ(b.peak(), 1ull << 40);
}

TEST(MemBudget, LimitIsEnforcedExactly)
{
    MemBudget b(100);
    EXPECT_TRUE(b.tryCharge(100, "all of it").ok());
    Expected<void> over = b.tryCharge(1, "one more");
    ASSERT_FALSE(over.ok());
    EXPECT_EQ(over.error().code(), ErrorCode::Budget);
    // Nothing was charged by the failure.
    EXPECT_EQ(b.used(), 100u);
    b.release(100);
    EXPECT_TRUE(b.tryCharge(1, "fits again").ok());
}

TEST(MemBudget, ErrorNamesTheAllocationSite)
{
    MemBudget b(1024);
    Expected<void> r = b.tryCharge(4096, "din trace line buffer");
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.error().message().find("din trace line buffer"),
              std::string::npos);
}

TEST(MemBudget, ChildChargesPropagateToParent)
{
    MemBudget parent(1000);
    MemBudget child(1000, &parent);
    EXPECT_TRUE(child.tryCharge(400, "x").ok());
    EXPECT_EQ(child.used(), 400u);
    EXPECT_EQ(parent.used(), 400u);
    child.release(400);
    EXPECT_EQ(child.used(), 0u);
    EXPECT_EQ(parent.used(), 0u);
}

TEST(MemBudget, ChildFailureUnwindsTheParentCharge)
{
    MemBudget parent(10000);
    MemBudget child(100, &parent);
    Expected<void> r = child.tryCharge(500, "too much for the child");
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(parent.used(), 0u) << "parent kept a phantom charge";
    EXPECT_EQ(child.used(), 0u);
}

TEST(MemBudget, ParentLimitCapsTheChild)
{
    MemBudget parent(100);
    MemBudget child(1000, &parent); // generous child, stingy parent
    Expected<void> r = child.tryCharge(500, "x");
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().code(), ErrorCode::Budget);
    EXPECT_EQ(child.used(), 0u);
    EXPECT_EQ(parent.used(), 0u);
}

TEST(MemCharge, ReleasesOnDestruction)
{
    MemBudget b(1000);
    {
        Expected<MemCharge> c = MemCharge::charge(&b, 600, "scoped");
        ASSERT_TRUE(c.ok());
        EXPECT_EQ(c.value().bytes(), 600u);
        EXPECT_EQ(b.used(), 600u);
    }
    EXPECT_EQ(b.used(), 0u);
    EXPECT_EQ(b.peak(), 600u);
}

TEST(MemCharge, NullBudgetAlwaysSucceeds)
{
    Expected<MemCharge> c =
        MemCharge::charge(nullptr, 1ull << 50, "anything");
    ASSERT_TRUE(c.ok());
    EXPECT_EQ(c.value().bytes(), 0u);
}

TEST(MemCharge, FailedChargeChargesNothing)
{
    MemBudget b(10);
    Expected<MemCharge> c = MemCharge::charge(&b, 100, "no");
    ASSERT_FALSE(c.ok());
    EXPECT_EQ(b.used(), 0u);
}

TEST(MemCharge, MoveTransfersOwnership)
{
    MemBudget b(1000);
    MemCharge outer;
    {
        Expected<MemCharge> c = MemCharge::charge(&b, 300, "moved");
        ASSERT_TRUE(c.ok());
        outer = c.take();
    } // the moved-from temporary must not release
    EXPECT_EQ(b.used(), 300u);
    EXPECT_EQ(outer.bytes(), 300u);

    MemCharge stolen(std::move(outer));
    EXPECT_EQ(outer.bytes(), 0u);
    EXPECT_EQ(b.used(), 300u);
    stolen.release();
    EXPECT_EQ(b.used(), 0u);
    stolen.release(); // idempotent
    EXPECT_EQ(b.used(), 0u);
}

TEST(MemCharge, MoveAssignReleasesThePreviousCharge)
{
    MemBudget b(1000);
    Expected<MemCharge> first = MemCharge::charge(&b, 200, "a");
    Expected<MemCharge> second = MemCharge::charge(&b, 300, "b");
    ASSERT_TRUE(first.ok());
    ASSERT_TRUE(second.ok());
    EXPECT_EQ(b.used(), 500u);
    MemCharge keep = first.take();
    keep = second.take(); // drops the 200, keeps the 300
    EXPECT_EQ(b.used(), 300u);
}

TEST(MemBudget, ConcurrentChargesBalanceAndRespectTheLimit)
{
    // N threads hammer one budget; every successful charge must be
    // matched by its release, the limit must never be exceeded
    // while held, and the final used() must return to zero.
    constexpr unsigned kThreads = 8;
    constexpr unsigned kIters = 2000;
    constexpr std::uint64_t kChunk = 64;
    MemBudget b(kThreads * kChunk / 2); // contended: half fit

    std::vector<std::thread> workers;
    std::vector<std::uint64_t> wins(kThreads, 0);
    for (unsigned t = 0; t < kThreads; ++t) {
        workers.emplace_back([&b, &wins, t] {
            for (unsigned i = 0; i < kIters; ++i) {
                Expected<MemCharge> c =
                    MemCharge::charge(&b, kChunk, "worker");
                if (c.ok())
                    ++wins[t];
                // guard releases at scope exit
            }
        });
    }
    for (std::thread &w : workers)
        w.join();

    EXPECT_EQ(b.used(), 0u) << "charges and releases out of balance";
    EXPECT_LE(b.peak(), b.limit());
    std::uint64_t total = 0;
    for (std::uint64_t w : wins)
        total += w;
    EXPECT_GT(total, 0u) << "no thread ever got a charge through";
}

TEST(MemBudget, ConcurrentChildChargesBalanceInTheParent)
{
    MemBudget parent(1ull << 20);
    constexpr unsigned kThreads = 8;
    std::vector<std::thread> workers;
    for (unsigned t = 0; t < kThreads; ++t) {
        workers.emplace_back([&parent] {
            MemBudget child(1ull << 16, &parent);
            for (unsigned i = 0; i < 1000; ++i) {
                Expected<MemCharge> c =
                    MemCharge::charge(&child, 128, "child worker");
                EXPECT_TRUE(c.ok());
            }
        });
    }
    for (std::thread &w : workers)
        w.join();
    EXPECT_EQ(parent.used(), 0u);
    EXPECT_GT(parent.peak(), 0u);
}

} // namespace
} // namespace assoc
