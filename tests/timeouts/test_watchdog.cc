// Unit tests for the Watchdog deadline-enforcement thread: arming,
// deadline misses tripping tokens, stall reports, grace-period
// escalation, and disarm idempotence (exec/thread_pool.h).

#include <chrono>
#include <thread>

#include <gtest/gtest.h>

#include "exec/thread_pool.h"

namespace assoc {
namespace exec {
namespace {

constexpr std::uint64_t kMs = 1000 * 1000;

Watchdog::Options
quiet()
{
    Watchdog::Options o;
    o.sample_ns = 1 * kMs;
    o.log = false;
    return o;
}

/** Spin until @p pred or ~2s; false on timeout. */
template <typename Pred>
bool
within(Pred pred)
{
    for (int i = 0; i < 2000; ++i) {
        if (pred())
            return true;
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return false;
}

TEST(Watchdog, IdleWatchdogDoesNothing)
{
    Watchdog dog(quiet());
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    EXPECT_EQ(dog.armedCount(), 0u);
    EXPECT_TRUE(dog.reports().empty());
}

TEST(Watchdog, NeverDeadlineIsHeartbeatOnly)
{
    Watchdog dog(quiet());
    CancelToken token;
    dog.arm(0, &token, Deadline::never(), 0x1234, "attempt 1",
            nullptr);
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_FALSE(token.cancelled());
    EXPECT_TRUE(dog.reports().empty());
    dog.disarm(0);
    EXPECT_EQ(dog.armedCount(), 0u);
}

TEST(Watchdog, DeadlineMissCancelsTokenAndFilesAReport)
{
    Watchdog dog(quiet());
    CancelToken token;
    MemBudget budget;
    ASSERT_TRUE(budget.tryCharge(4096, "x").ok());
    token.checkpoint(); // one heartbeat for the report to pick up
    dog.arm(7, &token, Deadline::after(5 * kMs), 0xabcdef, "attempt 2",
            &budget);

    ASSERT_TRUE(within([&] { return token.signalled(); }))
        << "watchdog never tripped the token";
    EXPECT_EQ(token.reason(), CancelToken::Reason::TimedOut);

    std::vector<StallReport> reports = dog.reports();
    ASSERT_FALSE(reports.empty());
    const StallReport &r = reports.front();
    EXPECT_EQ(r.job, 7u);
    EXPECT_EQ(r.spec_hash, 0xabcdefu);
    EXPECT_EQ(r.phase, "attempt 2");
    EXPECT_EQ(r.misses, 1u);
    EXPECT_GE(r.heartbeats, 1u);
    EXPECT_EQ(r.bytes_charged, 4096u);
    EXPECT_GT(r.elapsed_ns, 0u);
    dog.disarm(7);
}

TEST(Watchdog, GracePeriodMissEscalates)
{
    Watchdog::Options o = quiet();
    o.grace_ns = 10 * kMs;
    Watchdog dog(o);
    CancelToken token;
    // Arm and never disarm: models a wedged job that ignores the
    // cancelled token.
    dog.arm(3, &token, Deadline::after(2 * kMs), 0x99, "attempt 1",
            nullptr);

    ASSERT_TRUE(within([&] { return dog.reports().size() >= 2; }))
        << "no escalation report";
    std::vector<StallReport> reports = dog.reports();
    EXPECT_EQ(reports[0].misses, 1u);
    EXPECT_EQ(reports[1].misses, 2u);
    EXPECT_EQ(reports[1].job, 3u);

    // Escalation is terminal: no third report.
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    EXPECT_EQ(dog.reports().size(), 2u);
    dog.disarm(3);
}

TEST(Watchdog, DisarmBeforeTheDeadlineLeavesTheTokenAlone)
{
    Watchdog dog(quiet());
    CancelToken token;
    dog.arm(1, &token, Deadline::after(500 * kMs), 0x5, "attempt 1",
            nullptr);
    EXPECT_EQ(dog.armedCount(), 1u);
    dog.disarm(1);
    EXPECT_EQ(dog.armedCount(), 0u);
    dog.disarm(1); // idempotent
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_FALSE(token.cancelled());
    EXPECT_TRUE(dog.reports().empty());
}

TEST(Watchdog, WatchesSeveralJobsIndependently)
{
    Watchdog dog(quiet());
    CancelToken doomed, healthy;
    dog.arm(0, &doomed, Deadline::after(5 * kMs), 0xd00, "attempt 1",
            nullptr);
    dog.arm(1, &healthy, Deadline::after(3600ull * 1000 * 1000 * kMs),
            0xea1, "attempt 1", nullptr);

    ASSERT_TRUE(within([&] { return doomed.signalled(); }));
    EXPECT_FALSE(healthy.cancelled());
    std::vector<StallReport> reports = dog.reports();
    ASSERT_EQ(reports.size(), 1u);
    EXPECT_EQ(reports[0].job, 0u);
    dog.disarm(0);
    dog.disarm(1);
}

TEST(Watchdog, DestructionJoinsWithoutTrippingTokens)
{
    CancelToken token;
    {
        Watchdog dog(quiet());
        dog.arm(0, &token, Deadline::after(3600ull * 1000 * 1000 * kMs),
                0x1, "attempt 1", nullptr);
        // Destroyed while armed: must join cleanly, not cancel.
    }
    EXPECT_FALSE(token.cancelled());
}

} // namespace
} // namespace exec
} // namespace assoc
