// Unit tests for the cancellation primitives: Deadline expiry math,
// CancelToken reasons and chaining, SIGINT latching, and the
// duration / byte-size flag parsers (util/cancel.h).

#include "util/cancel.h"

#include <csignal>

#include <gtest/gtest.h>

namespace assoc {
namespace {

TEST(Deadline, DefaultNeverExpires)
{
    Deadline d;
    EXPECT_TRUE(d.isNever());
    EXPECT_FALSE(d.expired());
    EXPECT_EQ(d.remainingNs(), INT64_MAX);
    EXPECT_TRUE(Deadline::never().isNever());
}

TEST(Deadline, AfterZeroIsAlreadyExpired)
{
    Deadline d = Deadline::after(0);
    EXPECT_FALSE(d.isNever());
    EXPECT_TRUE(d.expired());
    EXPECT_LE(d.remainingNs(), 0);
}

TEST(Deadline, FarFutureIsNotExpired)
{
    Deadline d = Deadline::after(3600ull * 1000 * 1000 * 1000);
    EXPECT_FALSE(d.isNever());
    EXPECT_FALSE(d.expired());
    EXPECT_GT(d.remainingNs(), 0);
}

TEST(Deadline, EarlierPrefersTheSoonerAndNeverLoses)
{
    Deadline never;
    Deadline soon = Deadline::after(1000);
    Deadline later = Deadline::after(1000ull * 1000 * 1000 * 1000);
    EXPECT_EQ(Deadline::earlier(soon, later).expiry(), soon.expiry());
    EXPECT_EQ(Deadline::earlier(later, soon).expiry(), soon.expiry());
    EXPECT_EQ(Deadline::earlier(never, soon).expiry(), soon.expiry());
    EXPECT_TRUE(Deadline::earlier(never, never).isNever());
}

TEST(CancelToken, FreshTokenRuns)
{
    CancelToken t;
    EXPECT_EQ(t.reason(), CancelToken::Reason::None);
    EXPECT_FALSE(t.cancelled());
    EXPECT_FALSE(t.signalled());
    Expected<void> go = t.checkpoint();
    EXPECT_TRUE(go.ok());
    EXPECT_EQ(t.heartbeats(), 1u);
}

TEST(CancelToken, CancelDeliversCancelled)
{
    CancelToken t;
    t.cancel();
    EXPECT_EQ(t.reason(), CancelToken::Reason::Cancelled);
    EXPECT_TRUE(t.cancelled());
    EXPECT_TRUE(t.signalled());
    Expected<void> go = t.checkpoint();
    ASSERT_FALSE(go.ok());
    EXPECT_EQ(go.error().code(), ErrorCode::Cancelled);
}

TEST(CancelToken, TimeoutDeliversTimeout)
{
    CancelToken t;
    t.cancelTimeout();
    EXPECT_EQ(t.reason(), CancelToken::Reason::TimedOut);
    EXPECT_TRUE(t.signalled());
    Expected<void> go = t.checkpoint();
    ASSERT_FALSE(go.ok());
    EXPECT_EQ(go.error().code(), ErrorCode::Timeout);
}

TEST(CancelToken, FirstDeliveredReasonWins)
{
    CancelToken t;
    t.cancel();
    t.cancelTimeout(); // must not overwrite the delivered cancel
    EXPECT_EQ(t.reason(), CancelToken::Reason::Cancelled);

    CancelToken u;
    u.cancelTimeout();
    u.cancel();
    EXPECT_EQ(u.reason(), CancelToken::Reason::TimedOut);
}

TEST(CancelToken, ExpiredDeadlineReportsTimeoutButNotSignalled)
{
    CancelToken t;
    t.setDeadline(Deadline::after(0));
    // cancelled() consults the clock; signalled() is delivery-only
    // (what wedged, non-checkpointing code polls).
    EXPECT_EQ(t.reason(), CancelToken::Reason::TimedOut);
    EXPECT_TRUE(t.cancelled());
    EXPECT_FALSE(t.signalled());
    Expected<void> go = t.checkpoint();
    ASSERT_FALSE(go.ok());
    EXPECT_EQ(go.error().code(), ErrorCode::Timeout);
}

TEST(CancelToken, ParentTripsChild)
{
    CancelToken parent, child;
    child.setParent(&parent);
    EXPECT_FALSE(child.cancelled());
    parent.cancel();
    EXPECT_EQ(child.reason(), CancelToken::Reason::Cancelled);
    EXPECT_TRUE(child.signalled());
}

TEST(CancelToken, ParentDeadlineTripsChildAsTimeout)
{
    CancelToken parent, child;
    parent.setDeadline(Deadline::after(0));
    child.setParent(&parent);
    EXPECT_EQ(child.reason(), CancelToken::Reason::TimedOut);
    EXPECT_FALSE(child.signalled()); // clock, not a delivery
}

TEST(CancelToken, OwnReasonOutranksParent)
{
    CancelToken parent, child;
    child.setParent(&parent);
    child.cancelTimeout();
    parent.cancel();
    EXPECT_EQ(child.reason(), CancelToken::Reason::TimedOut);
}

TEST(CancelToken, SigintLatchesWhenWatching)
{
    installSigintHandler();
    clearSigintForTests();
    CancelToken watching, ignoring;
    watching.watchSigint();
    EXPECT_FALSE(watching.cancelled());

    std::raise(SIGINT);
    EXPECT_TRUE(CancelToken::sigintSeen());
    EXPECT_EQ(watching.reason(), CancelToken::Reason::Cancelled);
    EXPECT_TRUE(watching.signalled());
    EXPECT_FALSE(ignoring.cancelled());

    Expected<void> go = watching.checkpoint();
    ASSERT_FALSE(go.ok());
    EXPECT_EQ(go.error().code(), ErrorCode::Cancelled);
    EXPECT_NE(go.error().message().find("SIGINT"), std::string::npos);
    clearSigintForTests();
}

TEST(CancelToken, SigtermLatchesLikeSigint)
{
    installSigintHandler();
    clearSigintForTests();
    CancelToken watching;
    watching.watchSigint(); // watches both shutdown signals

    std::raise(SIGTERM);
    EXPECT_TRUE(CancelToken::sigintSeen());
    EXPECT_EQ(deliveredShutdownSignal(), kSigtermSignal);
    EXPECT_EQ(watching.reason(), CancelToken::Reason::Cancelled);

    Expected<void> go = watching.checkpoint();
    ASSERT_FALSE(go.ok());
    EXPECT_EQ(go.error().code(), ErrorCode::Cancelled);
    EXPECT_NE(go.error().message().find("SIGTERM"),
              std::string::npos);
    clearSigintForTests();
}

TEST(CancelToken, FirstDeliveredSignalWins)
{
    installSigintHandler();
    clearSigintForTests();
    std::raise(SIGINT);
    std::raise(SIGTERM);
    // ^C landed first: the latch (and the eventual exit code)
    // reports the interrupt the user saw, not the later SIGTERM.
    EXPECT_EQ(deliveredShutdownSignal(), SIGINT);
    clearSigintForTests();
    EXPECT_EQ(deliveredShutdownSignal(), 0);
}

TEST(ParseDuration, AcceptsEveryUnit)
{
    EXPECT_EQ(parseDuration("5ns").value(), 5u);
    EXPECT_EQ(parseDuration("7us").value(), 7000u);
    EXPECT_EQ(parseDuration("30ms").value(), 30ull * 1000 * 1000);
    EXPECT_EQ(parseDuration("2s").value(), 2ull * 1000 * 1000 * 1000);
    EXPECT_EQ(parseDuration("5m").value(),
              300ull * 1000 * 1000 * 1000);
    EXPECT_EQ(parseDuration("0s").value(), 0u);
}

TEST(ParseDuration, RejectsJunk)
{
    for (const char *bad :
         {"", "5", "s", "-1s", "1.5s", "5 s", "5sec", "1h", "x5ms"}) {
        Expected<std::uint64_t> r = parseDuration(bad);
        EXPECT_FALSE(r.ok()) << "accepted '" << bad << "'";
        if (!r.ok()) {
            EXPECT_EQ(r.error().code(), ErrorCode::Usage) << bad;
        }
    }
}

TEST(ParseDuration, RejectsOverflow)
{
    EXPECT_FALSE(parseDuration("99999999999999999999ns").ok());
    EXPECT_FALSE(parseDuration("18446744073709551615m").ok());
}

TEST(ParseByteSize, AcceptsSuffixes)
{
    EXPECT_EQ(parseByteSize("0").value(), 0u);
    EXPECT_EQ(parseByteSize("123").value(), 123u);
    EXPECT_EQ(parseByteSize("2K").value(), 2048u);
    EXPECT_EQ(parseByteSize("2KiB").value(), 2048u);
    EXPECT_EQ(parseByteSize("3M").value(), 3ull << 20);
    EXPECT_EQ(parseByteSize("1G").value(), 1ull << 30);
    EXPECT_EQ(parseByteSize("512B").value(), 512u);
}

TEST(ParseByteSize, RejectsJunk)
{
    for (const char *bad : {"", "K", "-1K", "1.5M", "5 K", "5T"}) {
        Expected<std::uint64_t> r = parseByteSize(bad);
        EXPECT_FALSE(r.ok()) << "accepted '" << bad << "'";
    }
    EXPECT_FALSE(parseByteSize("99999999999999999999").ok());
    EXPECT_FALSE(parseByteSize("18446744073709551615K").ok());
}

TEST(Format, DurationAndBytesAreCompact)
{
    EXPECT_EQ(formatDuration(500), "500ns");
    EXPECT_EQ(formatBytes(512), "512B");
    // Exact renderings above; larger values just need the unit.
    EXPECT_NE(formatDuration(1500ull * 1000 * 1000).find("s"),
              std::string::npos);
    EXPECT_NE(formatBytes(3ull << 20).find("MiB"), std::string::npos);
}

} // namespace
} // namespace assoc
