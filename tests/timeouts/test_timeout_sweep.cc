// Integration tests for the runaway-work defenses end to end:
// hang-injected sweeps cut loose by the watchdog with bit-identical
// siblings and byte-identical resume, sweep deadlines leaving gap
// rows, SIGINT racing the journal drain, memory budgets, slow jobs
// that must survive, and checkpointed-loop determinism.

#include <csignal>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>

#include <gtest/gtest.h>

#include "exec/fault.h"
#include "exec/journal.h"
#include "exec/report.h"
#include "exec/sweep.h"
#include "sim/runner.h"
#include "trace/atum_like.h"
#include "trace/din_io.h"

namespace assoc {
namespace exec {
namespace {

constexpr std::uint64_t kMs = 1000 * 1000;

trace::AtumLikeConfig
smallTrace()
{
    trace::AtumLikeConfig cfg;
    cfg.seed = 99;
    cfg.segments = 1;
    cfg.refs_per_segment = 2000;
    cfg.processes = 2;
    cfg.switch_mean = 50;
    return cfg;
}

std::vector<sim::RunSpec>
threeSpecs()
{
    std::vector<sim::RunSpec> specs;
    for (unsigned a : {2u, 4u, 8u}) {
        sim::RunSpec spec;
        spec.hier = {mem::CacheGeometry(4096, 16, 1),
                     mem::CacheGeometry(65536, 32, a), true};
        core::SchemeSpec s;
        s.kind = core::SchemeKind::Naive;
        spec.schemes.push_back(s);
        spec.schemes.push_back(core::SchemeSpec::paperPartial(a));
        specs.push_back(spec);
    }
    return specs;
}

/** Clean serial outputs for bit-comparison. */
std::vector<std::string>
golden(const std::vector<sim::RunSpec> &specs,
       const trace::AtumLikeConfig &tcfg)
{
    SweepOptions opt;
    opt.jobs = 1;
    std::vector<sim::RunOutput> outs =
        runSweep(specs, atumTraceFactory(tcfg), opt);
    std::vector<std::string> enc;
    for (const sim::RunOutput &o : outs)
        enc.push_back(encodeRunOutput(o));
    return enc;
}

std::string
scratchPath(const std::string &name)
{
    return ::testing::TempDir() + "timeout_sweep_" + name;
}

TEST(TimeoutSweep, HangIsKilledSiblingsSurviveAndResumeIsExact)
{
    trace::AtumLikeConfig tcfg = smallTrace();
    std::vector<sim::RunSpec> specs = threeSpecs();
    std::vector<std::string> want = golden(specs, tcfg);
    std::string journal = scratchPath("hang.journal");
    std::remove(journal.c_str());
    std::uint64_t hash = hashSpecs(specs, tcfg.seed);

    FaultPlan plan;
    plan.runaway = RunawayKind::Hang;
    plan.runaway_job = 1;
    plan.runaway_at = 500;
    FaultInjector inject(plan);

    SweepOptions opt;
    opt.jobs = 2;
    opt.max_retries = 0;
    opt.inject = &inject;
    opt.job_timeout_ns = 30 * kMs;
    opt.watchdog.sample_ns = 1 * kMs;
    opt.watchdog.log = false;
    opt.journal_path = journal;
    opt.spec_hash = hash;
    SweepResult run =
        runSweepChecked(specs, atumTraceFactory(tcfg), opt);

    ASSERT_EQ(run.jobs.size(), 3u);
    EXPECT_EQ(run.jobs[1].status, JobStatus::TimedOut);
    EXPECT_EQ(run.jobs[1].error.code(), ErrorCode::Timeout);
    EXPECT_NE(run.jobs[1].error.text().find("job spec hash"),
              std::string::npos);
    EXPECT_EQ(run.timedOut(), 1u);
    EXPECT_FALSE(run.interrupted);
    ASSERT_FALSE(run.stalls.empty());
    EXPECT_EQ(run.stalls[0].job, 1u);
    for (std::size_t i : {std::size_t(0), std::size_t(2)}) {
        ASSERT_TRUE(run.jobs[i].ok()) << run.jobs[i].error.text();
        EXPECT_EQ(encodeRunOutput(run.jobs[i].output), want[i]);
    }

    // Resume without the injector completes the killed slot; the
    // merged journal-backed result is byte-identical to golden.
    SweepOptions opt2;
    opt2.jobs = 1;
    opt2.resume_path = journal;
    opt2.spec_hash = hash;
    SweepResult second =
        runSweepChecked(specs, atumTraceFactory(tcfg), opt2);
    EXPECT_EQ(second.resumed, 2u);
    for (std::size_t i = 0; i < 3; ++i) {
        ASSERT_TRUE(second.jobs[i].ok());
        EXPECT_EQ(encodeRunOutput(second.jobs[i].output), want[i]);
    }
    std::remove(journal.c_str());
}

TEST(TimeoutSweep, TimedOutJobIsRetriedUnderMaxRetries)
{
    trace::AtumLikeConfig tcfg = smallTrace();
    std::vector<sim::RunSpec> specs = threeSpecs();

    FaultPlan plan;
    plan.runaway = RunawayKind::Hang;
    plan.runaway_job = 0;
    plan.runaway_at = 100;
    FaultInjector inject(plan);

    SweepOptions opt;
    opt.jobs = 1;
    opt.max_retries = 1; // hang every attempt: both get a timeslice
    opt.inject = &inject;
    opt.job_timeout_ns = 20 * kMs;
    opt.watchdog.sample_ns = 1 * kMs;
    opt.watchdog.log = false;
    SweepResult run =
        runSweepChecked(specs, atumTraceFactory(tcfg), opt);

    EXPECT_EQ(run.jobs[0].status, JobStatus::TimedOut);
    EXPECT_EQ(run.jobs[0].attempts, 2u)
        << "a timeout must be retried like a transient failure";
    EXPECT_TRUE(run.jobs[1].ok());
    EXPECT_TRUE(run.jobs[2].ok());
}

TEST(TimeoutSweep, ExpiredSweepDeadlineMarksEveryJobTimedOut)
{
    trace::AtumLikeConfig tcfg = smallTrace();
    std::vector<sim::RunSpec> specs = threeSpecs();

    SweepOptions opt;
    opt.jobs = 1;
    opt.sweep_deadline_ns = 1; // expired before the first job runs
    opt.watchdog.log = false;
    SweepResult run =
        runSweepChecked(specs, atumTraceFactory(tcfg), opt);

    EXPECT_EQ(run.timedOut(), 3u);
    EXPECT_FALSE(run.interrupted)
        << "a deadline is not an interrupt (exit 4, not 130)";
    for (const JobResult &j : run.jobs) {
        EXPECT_EQ(j.status, JobStatus::TimedOut);
        EXPECT_NE(j.error.text().find("sweep deadline"),
                  std::string::npos)
            << j.error.text();
    }
}

TEST(TimeoutSweep, JsonReportCarriesGapRowsAndTimeoutCounts)
{
    trace::AtumLikeConfig tcfg = smallTrace();
    std::vector<sim::RunSpec> specs = threeSpecs();

    SweepOptions opt;
    opt.jobs = 1;
    opt.sweep_deadline_ns = 1;
    opt.watchdog.log = false;
    SweepResult run =
        runSweepChecked(specs, atumTraceFactory(tcfg), opt);

    std::ostringstream os;
    writeSweepJson(os, specs, run);
    const std::string json = os.str();
    EXPECT_NE(json.find("\"status\": \"timed-out\""),
              std::string::npos);
    EXPECT_NE(json.find("\"timed_out\": 3"), std::string::npos);
    EXPECT_NE(json.find("\"over_budget\": 0"), std::string::npos);
    EXPECT_NE(json.find("\"error\""), std::string::npos);
    EXPECT_EQ(json.find("\"hits_mean\""), std::string::npos)
        << "gap rows must not carry statistics";
}

TEST(TimeoutSweep, OverBudgetJobFailsOnceSiblingsSurvive)
{
    trace::AtumLikeConfig tcfg = smallTrace();
    std::vector<sim::RunSpec> specs = threeSpecs();
    std::vector<std::string> want = golden(specs, tcfg);

    FaultPlan plan;
    plan.runaway = RunawayKind::Oom;
    plan.runaway_job = 2;
    plan.runaway_at = 300;
    plan.oom_bytes = 64ull << 20;
    FaultInjector inject(plan);

    SweepOptions opt;
    opt.jobs = 2;
    opt.max_retries = 3; // must not be spent: budgets are deterministic
    opt.inject = &inject;
    opt.job_mem_budget = 4ull << 20;
    SweepResult run =
        runSweepChecked(specs, atumTraceFactory(tcfg), opt);

    EXPECT_EQ(run.jobs[2].status, JobStatus::OverBudget);
    EXPECT_EQ(run.jobs[2].error.code(), ErrorCode::Budget);
    EXPECT_EQ(run.jobs[2].attempts, 1u);
    EXPECT_EQ(run.overBudget(), 1u);
    EXPECT_EQ(run.resourceKilled(), 1u);
    for (std::size_t i : {std::size_t(0), std::size_t(1)}) {
        ASSERT_TRUE(run.jobs[i].ok());
        EXPECT_EQ(encodeRunOutput(run.jobs[i].output), want[i]);
    }
}

TEST(TimeoutSweep, SlowJobIsNotKilled)
{
    trace::AtumLikeConfig tcfg = smallTrace();
    std::vector<sim::RunSpec> specs = threeSpecs();
    std::vector<std::string> want = golden(specs, tcfg);

    FaultPlan plan;
    plan.seed = 7;
    plan.runaway = RunawayKind::Slow;
    plan.runaway_job = 0;
    plan.runaway_at = 0;
    plan.slow_every = 64;
    plan.slow_ns = 20000;
    FaultInjector inject(plan);

    SweepOptions opt;
    opt.jobs = 2;
    opt.inject = &inject;
    opt.job_timeout_ns = 10ull * 1000 * kMs; // generous 10s
    opt.watchdog.log = false;
    SweepResult run =
        runSweepChecked(specs, atumTraceFactory(tcfg), opt);

    for (std::size_t i = 0; i < 3; ++i) {
        ASSERT_TRUE(run.jobs[i].ok()) << run.jobs[i].error.text();
        EXPECT_EQ(run.jobs[i].attempts, 1u);
        EXPECT_EQ(encodeRunOutput(run.jobs[i].output), want[i]);
    }
    EXPECT_TRUE(run.stalls.empty());
}

TEST(TimeoutSweep, CheckpointedLoopMatchesTheFastPath)
{
    // Arming a token (and thus leaving the fast path) must not
    // change a single bit of the output, at any checkpoint cadence.
    trace::AtumLikeConfig tcfg = smallTrace();
    sim::RunSpec spec = threeSpecs()[1];

    trace::AtumLikeGenerator plain(tcfg);
    std::string fast = encodeRunOutput(sim::runTrace(plain, spec));

    CancelToken token; // never trips
    for (std::uint64_t every : {1ull, 7ull, 4096ull}) {
        sim::RunSpec guarded = spec;
        guarded.cancel = &token;
        guarded.checkpoint_every = every;
        trace::AtumLikeGenerator gen(tcfg);
        EXPECT_EQ(encodeRunOutput(sim::runTrace(gen, guarded)), fast)
            << "checkpoint_every=" << every;
    }
}

TEST(TimeoutSweep, CancelledTokenStopsTheRunnerPromptly)
{
    trace::AtumLikeConfig tcfg = smallTrace();
    sim::RunSpec spec = threeSpecs()[0];
    CancelToken token;
    token.cancel();
    spec.cancel = &token;
    spec.checkpoint_every = 64;
    trace::AtumLikeGenerator gen(tcfg);
    try {
        sim::runTrace(gen, spec);
        FAIL() << "cancelled run did not throw";
    } catch (const ErrorException &e) {
        EXPECT_EQ(e.error().code(), ErrorCode::Cancelled);
    }
}

TEST(TimeoutSweep, SigintDuringHangDrainsTheJournalCleanly)
{
    // Satellite regression: a SIGINT delivered while a hang-injected
    // job is wedged (and the watchdog is in its grace period) must
    // release the job, drain the sweep, and leave a readable journal
    // — the drain takes the journal mutex, so the final close cannot
    // race an in-flight append.
    trace::AtumLikeConfig tcfg = smallTrace();
    std::vector<sim::RunSpec> specs = threeSpecs();
    std::string journal = scratchPath("sigint.journal");
    std::remove(journal.c_str());
    std::uint64_t hash = hashSpecs(specs, tcfg.seed);

    installSigintHandler();
    clearSigintForTests();
    CancelToken outer;
    outer.watchSigint();

    FaultPlan plan;
    plan.runaway = RunawayKind::Hang;
    plan.runaway_job = 0;
    plan.runaway_at = 200;
    FaultInjector inject(plan);

    SweepOptions opt;
    opt.jobs = 2;
    opt.max_retries = 0;
    opt.inject = &inject;
    opt.cancel = &outer;
    // Long job timeout: SIGINT, not the watchdog, must do the release.
    opt.job_timeout_ns = 10ull * 1000 * kMs;
    opt.watchdog.log = false;
    opt.journal_path = journal;
    opt.spec_hash = hash;

    std::thread interrupter([] {
        std::this_thread::sleep_for(std::chrono::milliseconds(30));
        std::raise(SIGINT);
    });
    SweepResult run =
        runSweepChecked(specs, atumTraceFactory(tcfg), opt);
    interrupter.join();

    // The wedged job was released by the SIGINT and reports
    // Cancelled; the sweep records the interrupt.
    EXPECT_EQ(run.jobs[0].status, JobStatus::Cancelled);
    EXPECT_TRUE(run.interrupted);

    // The journal survived the drain: readable, correct hash, and
    // every entry it holds decodes bit-exactly.
    Expected<JournalData> data = readJournal(journal);
    ASSERT_TRUE(data.ok()) << data.error().text();
    EXPECT_EQ(data.value().spec_hash, hash);
    EXPECT_EQ(data.value().dropped_lines, 0u);
    clearSigintForTests();
    std::remove(journal.c_str());
}

TEST(TimeoutSweep, DinReaderHonorsCancelAndBudget)
{
    // The trace readers poll the token between records and charge
    // their line buffers, so a doomed read stops in bounded time.
    std::string path = scratchPath("reader.din");
    {
        std::ofstream os(path);
        for (int i = 0; i < 2000; ++i)
            os << "0 " << std::hex << (i * 16) << std::dec << " 0\n";
    }

    trace::DinTraceSource src(path);
    CancelToken token;
    token.cancelTimeout();
    src.setCancelToken(&token);
    trace::MemRef r;
    std::uint64_t streamed = 0;
    while (src.next(r))
        ++streamed;
    EXPECT_LT(streamed, 2000u) << "tripped token did not stop the read";
    ASSERT_TRUE(src.failed());
    EXPECT_EQ(src.error().code(), ErrorCode::Timeout);

    // A tiny budget rejects the line buffer as soon as it grows.
    trace::DinTraceSource tight(path);
    MemBudget budget(8);
    tight.setMemBudget(&budget);
    streamed = 0;
    while (tight.next(r))
        ++streamed;
    ASSERT_TRUE(tight.failed());
    EXPECT_EQ(tight.error().code(), ErrorCode::Budget);
    std::remove(path.c_str());
}

} // namespace
} // namespace exec
} // namespace assoc
